//! Rolling time-window counters: a ring of per-second epoch buckets.
//!
//! [`Windows`] holds [`WINDOW_SLOTS`] one-second buckets, each stamped
//! with the epoch (whole seconds of [`Clock`] time) it currently counts.
//! Recording computes the current epoch, rotates the target bucket if its
//! stamp is stale (one rotator zeroes the lanes; the swap on the stamp
//! elects it), then increments the lane. Summing a trailing window of
//! `W ≤ WINDOW_SLOTS` seconds adds up every bucket whose stamp lies in
//! `(now-W, now]` — including the in-progress second.
//!
//! Concurrency contract: recording is wait-free (two atomic ops plus the
//! rare rotation) and never blocks or locks. During a rotation race a
//! handful of increments may land in the epoch bucket just before it is
//! zeroed and be lost with it; windowed *rates* tolerate that by design.
//! The deterministic behaviours — rotation, trailing sums, slot reuse
//! after the ring wraps — are pinned by [`ManualClock`] tests; exact
//! conservation lives with the lifetime counters, not the windows.
//!
//! [`ManualClock`]: crate::clock::ManualClock

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::Clock;

/// Ring size in seconds; the longest supported trailing window.
pub const WINDOW_SLOTS: usize = 64;

/// Stamp value meaning "never used".
const NEVER: u64 = u64::MAX;

struct Slot {
    epoch: AtomicU64,
    lanes: Vec<AtomicU64>,
}

/// A multi-lane ring of per-second counters.
pub struct Windows {
    clock: Arc<dyn Clock>,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for Windows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Windows")
            .field("lanes", &self.lanes())
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl Windows {
    /// A ring counting `lanes` independent event classes against `clock`.
    pub fn new(lanes: usize, clock: Arc<dyn Clock>) -> Windows {
        assert!(lanes > 0, "a Windows needs at least one lane");
        Windows {
            clock,
            slots: (0..WINDOW_SLOTS)
                .map(|_| Slot {
                    epoch: AtomicU64::new(NEVER),
                    lanes: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
        }
    }

    pub fn lanes(&self) -> usize {
        self.slots[0].lanes.len()
    }

    /// Count one event on `lane` at the clock's current second.
    pub fn record(&self, lane: usize) {
        self.record_n(lane, 1);
    }

    /// Count `n` events on `lane` at the clock's current second in one
    /// increment. Used by weighted budgets (e.g. match-unit quotas)
    /// where a single admission charges many units at once.
    pub fn record_n(&self, lane: usize, n: u64) {
        let epoch = self.clock.now_micros() / 1_000_000;
        let slot = &self.slots[(epoch as usize) % WINDOW_SLOTS];
        if slot.epoch.load(Ordering::Acquire) != epoch {
            // Elect one rotator: the swap returns the stale stamp to
            // exactly one thread, which zeroes the lanes for the new
            // second. Losers fall through and count into the fresh bucket.
            if slot.epoch.swap(epoch, Ordering::AcqRel) != epoch {
                for lane in &slot.lanes {
                    lane.store(0, Ordering::Release);
                }
            }
        }
        slot.lanes[lane].fetch_add(n, Ordering::Relaxed);
    }

    /// Sum every lane over the trailing `window_secs` seconds (stamps in
    /// `(now-window, now]`). `window_secs` is clamped to the ring size.
    pub fn sums(&self, window_secs: u64) -> Vec<u64> {
        let window = window_secs.clamp(1, WINDOW_SLOTS as u64);
        let now = self.clock.now_micros() / 1_000_000;
        let mut out = vec![0u64; self.lanes()];
        for slot in &self.slots {
            let e = slot.epoch.load(Ordering::Acquire);
            if e != NEVER && e <= now && now - e < window {
                for (o, lane) in out.iter_mut().zip(&slot.lanes) {
                    *o += lane.load(Ordering::Relaxed);
                }
            }
        }
        out
    }

    /// The standard trailing snapshot: sums over 1 s, 10 s and 60 s.
    pub fn snapshot(&self) -> WindowSnapshot {
        WindowSnapshot {
            s1: self.sums(1),
            s10: self.sums(10),
            s60: self.sums(60),
        }
    }
}

/// Per-lane trailing sums over the three standard windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    pub s1: Vec<u64>,
    pub s10: Vec<u64>,
    pub s60: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn windows(lanes: usize) -> (Arc<ManualClock>, Windows) {
        let clock = Arc::new(ManualClock::new());
        let w = Windows::new(lanes, Arc::clone(&clock) as Arc<dyn Clock>);
        (clock, w)
    }

    #[test]
    fn sums_cover_exactly_the_trailing_window() {
        let (clock, w) = windows(2);
        w.record(0); // second 0
        w.record(0);
        w.record(1);
        clock.advance_secs(5);
        w.record(0); // second 5
        assert_eq!(w.sums(1), [1, 0], "last 1s sees only second 5");
        assert_eq!(w.sums(10), [3, 1], "last 10s sees seconds 0 and 5");
        clock.advance_secs(5);
        // Now at second 10: second 0 (distance 10) just fell out of the
        // 10s window, second 5 (distance 5) is still in.
        assert_eq!(w.sums(10), [1, 0]);
        assert_eq!(w.sums(60), [3, 1]);
        clock.advance_secs(55);
        assert_eq!(w.sums(60), [0, 0], "everything aged out at second 65");
    }

    #[test]
    fn bucket_rotation_zeroes_reused_slots() {
        let (clock, w) = windows(1);
        // Fill second 3's slot, then come back to the same slot one full
        // ring later (second 3 + 64): the stale count must not survive.
        clock.advance_secs(3);
        for _ in 0..7 {
            w.record(0);
        }
        assert_eq!(w.sums(1), [7]);
        clock.advance_secs(WINDOW_SLOTS as u64);
        w.record(0); // same slot index, new epoch: rotates and zeroes
        assert_eq!(w.sums(1), [1], "rotation must clear the recycled slot");
        assert_eq!(
            w.sums(60),
            [1],
            "the 60s window must not resurrect counts from a lap ago"
        );
    }

    #[test]
    fn stale_slots_never_pollute_sums_without_rotation() {
        let (clock, w) = windows(1);
        w.record(0); // second 0
                     // Jump two full laps without recording: the slot still carries
                     // epoch 0, and every window must ignore it by stamp, not by slot.
        clock.advance_secs(2 * WINDOW_SLOTS as u64);
        assert_eq!(w.sums(60), [0]);
        assert_eq!(w.sums(1), [0]);
    }

    #[test]
    fn in_progress_second_counts_immediately() {
        let (clock, w) = windows(1);
        clock.advance_secs(100);
        w.record(0);
        w.record(0);
        assert_eq!(w.sums(1), [2]);
        // 999999µs later it is still the same second...
        clock.advance_micros(999_999);
        assert_eq!(w.sums(1), [2]);
        // ...and one more microsecond rolls it out of the 1s window.
        clock.advance_micros(1);
        assert_eq!(w.sums(1), [0]);
        assert_eq!(w.sums(10), [2]);
    }

    #[test]
    fn window_is_clamped_to_the_ring() {
        let (clock, w) = windows(1);
        w.record(0);
        clock.advance_secs(1);
        assert_eq!(w.sums(0), w.sums(1), "zero-width clamps up to 1s");
        assert_eq!(
            w.sums(10_000),
            w.sums(WINDOW_SLOTS as u64),
            "oversized windows clamp to the ring"
        );
    }

    #[test]
    fn record_n_charges_many_units_into_one_second() {
        let (clock, w) = windows(2);
        w.record_n(0, 40);
        w.record(0);
        w.record_n(1, 0); // zero-unit charge is a no-op on the sums
        assert_eq!(w.sums(1), [41, 0]);
        clock.advance_secs(1);
        w.record_n(0, 9);
        assert_eq!(w.sums(1), [9, 0], "weighted counts rotate like unit ones");
        assert_eq!(w.sums(10), [50, 0]);
    }

    #[test]
    fn snapshot_bundles_the_three_standard_windows() {
        let (clock, w) = windows(2);
        w.record(0);
        clock.advance_secs(2);
        w.record(1);
        let s = w.snapshot();
        assert_eq!(s.s1, [0, 1]);
        assert_eq!(s.s10, [1, 1]);
        assert_eq!(s.s60, [1, 1]);
    }
}
