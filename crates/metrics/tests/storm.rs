//! Concurrency storms for the lock-free telemetry primitives.
//!
//! These pin the accounting contracts under real contention:
//! * `Histo`: every recorded value is counted exactly once — recorded ==
//!   observed totals, sum exact.
//! * `EventRing`: `retained + dropped == appended` exactly at quiescence,
//!   drop-oldest keeps the newest events.
//! * `Windows`: lifetime totals are not the windows' contract, but sums on
//!   a frozen clock see every increment.
//!
//! Sizes shrink under miri (`cfg(miri)`) so the interpreter finishes while
//! still exercising every atomic path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use gql_metrics::{Clock, Event, EventKind, EventRing, Histo, KeyedHistos, ManualClock, Windows};

#[cfg(miri)]
const THREADS: usize = 3;
#[cfg(not(miri))]
const THREADS: usize = 8;

#[cfg(miri)]
const PER_THREAD: u64 = 40;
#[cfg(not(miri))]
const PER_THREAD: u64 = 20_000;

#[test]
fn histo_storm_counts_every_record_exactly_once() {
    let histo = Arc::new(Histo::new());
    let expected_sum = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let histo = Arc::clone(&histo);
        let expected_sum = Arc::clone(&expected_sum);
        handles.push(thread::spawn(move || {
            // Deterministic per-thread value stream spanning many octaves.
            let mut v = (t as u64) * 7 + 1;
            for _ in 0..PER_THREAD {
                v = v
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let sample = v >> 34; // ~30-bit latencies
                histo.record(sample);
                expected_sum.fetch_add(sample, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(histo.count(), total, "no record lost or double-counted");
    assert_eq!(histo.sum(), expected_sum.load(Ordering::Relaxed));
    let snap = histo.snapshot();
    assert_eq!(snap.count, total, "bucket sum equals record count");
    assert_eq!(snap.counts.iter().sum::<u64>(), total);
    assert!(snap.p50() <= snap.p95() && snap.p95() <= snap.p99());
}

#[test]
fn keyed_histo_storm_routes_every_record_to_its_key() {
    let keyed: Arc<KeyedHistos<usize>> = Arc::new(KeyedHistos::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let keyed = Arc::clone(&keyed);
        handles.push(thread::spawn(move || {
            let key = t % 3;
            let handle = keyed.get(&key); // cached-handle hot path
            for i in 0..PER_THREAD {
                if i % 2 == 0 {
                    handle.record(i);
                } else {
                    keyed.record(&key, i); // map-lookup path
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = keyed.snapshots().iter().map(|(_, s)| s.count).sum();
    assert_eq!(total, THREADS as u64 * PER_THREAD);
    assert_eq!(keyed.merged().count, total);
    assert!(keyed.len() <= 3);
}

#[test]
fn event_ring_storm_accounting_is_exact_at_quiescence() {
    // Capacity far below the append volume forces constant drop-oldest.
    let ring = Arc::new(EventRing::new(64));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let ring = Arc::clone(&ring);
        handles.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                ring.record(Event {
                    request_id: (t as u64) << 32 | i,
                    kind: EventKind::Reply,
                    t_micros: i,
                    code: t as u32,
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (events, stats) = ring.snapshot();
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(stats.appended, total, "every append took a ticket");
    assert_eq!(
        stats.retained + stats.dropped,
        stats.appended,
        "conservation: retained + dropped == appended"
    );
    assert_eq!(events.len() as u64, stats.retained);
    assert!(stats.retained <= ring.capacity() as u64);
    assert!(
        stats.lost_races <= stats.dropped,
        "race losses are a subset of drops"
    );
    // At quiescence no slot is torn, so the only unreadable slots are ones
    // whose ticket was raced; retained is capacity minus those.
    assert!(stats.retained + stats.lost_races >= ring.capacity() as u64);
}

#[test]
fn event_ring_no_overflow_storm_retains_everything() {
    // Capacity >= total appends: nothing may be dropped except races, and
    // with each thread touching disjoint slots-in-time the retained set
    // must contain every thread's full stream.
    let cap = THREADS * PER_THREAD as usize;
    let ring = Arc::new(EventRing::new(cap));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let ring = Arc::clone(&ring);
        handles.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                ring.record(Event {
                    request_id: (t as u64) << 32 | i,
                    kind: EventKind::Admit,
                    t_micros: i,
                    code: 0,
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (events, stats) = ring.snapshot();
    assert_eq!(stats.appended, cap as u64);
    assert_eq!(stats.dropped, 0, "ring never filled, nothing dropped");
    assert_eq!(stats.lost_races, 0, "tickets map to distinct slots");
    assert_eq!(events.len(), cap);
    // Every thread's events all present.
    for t in 0..THREADS {
        let mine = events
            .iter()
            .filter(|e| e.request_id >> 32 == t as u64)
            .count();
        assert_eq!(mine as u64, PER_THREAD);
    }
}

#[test]
fn windows_storm_on_a_frozen_clock_loses_nothing() {
    // With the clock frozen there is no rotation race: every increment
    // lands in the current second and the trailing sums must be exact.
    let clock = Arc::new(ManualClock::at_micros(5_000_000));
    let w = Arc::new(Windows::new(2, Arc::clone(&clock) as Arc<dyn Clock>));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let w = Arc::clone(&w);
        handles.push(thread::spawn(move || {
            for _ in 0..PER_THREAD {
                w.record(t % 2);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let per_lane: Vec<u64> = (0..2)
        .map(|lane| (0..THREADS).filter(|t| t % 2 == lane).count() as u64 * PER_THREAD)
        .collect();
    assert_eq!(w.sums(1), per_lane);
    assert_eq!(w.sums(60), per_lane);
}
