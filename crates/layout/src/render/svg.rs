//! SVG renderer — regenerates the paper's figures as standalone SVG files.

use std::fmt::Write as _;

use crate::diagram::{Diagram, EdgeStyle, Shape};
use crate::geom::{Point, Rect};
use crate::layered::Layout;

use super::esc;

fn dash(style: EdgeStyle) -> &'static str {
    match style {
        EdgeStyle::Solid | EdgeStyle::Thick => "",
        EdgeStyle::Dashed => " stroke-dasharray=\"6 4\"",
        EdgeStyle::Dotted => " stroke-dasharray=\"2 3\"",
    }
}

fn stroke_width(style: EdgeStyle) -> f64 {
    match style {
        EdgeStyle::Thick => 3.0,
        _ => 1.2,
    }
}

/// Render a laid-out diagram to an SVG document string.
pub fn to_svg(diagram: &Diagram, layout: &Layout) -> String {
    let b = layout.bounds;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"{:.1} {:.1} {:.1} {:.1}\" font-family=\"sans-serif\" font-size=\"12\">",
        b.w, b.h, b.x, b.y, b.w, b.h
    );
    let _ = writeln!(
        out,
        "  <defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" refY=\"5\" \
         markerWidth=\"7\" markerHeight=\"7\" orient=\"auto-start-reverse\">\
         <path d=\"M 0 0 L 10 5 L 0 10 z\"/></marker></defs>"
    );

    // Edges below nodes.
    for e in diagram.edge_indices() {
        let spec = diagram.edge(e);
        let path = &layout.edges[e.index()];
        if path.points.len() < 2 {
            continue;
        }
        // Clip endpoints to node borders for cleaner arrow heads.
        let (srect, trect) = (
            layout.nodes[diagram.source(e).index()],
            layout.nodes[diagram.target(e).index()],
        );
        let mut pts = path.points.clone();
        let n = pts.len();
        pts[0] = clip_to_rect(pts[1], pts[0], &srect);
        pts[n - 1] = clip_to_rect(pts[n - 2], pts[n - 1], &trect);
        let d: Vec<String> = pts
            .iter()
            .map(|p| format!("{:.1},{:.1}", p.x, p.y))
            .collect();
        let marker = if spec.arrow {
            " marker-end=\"url(#arrow)\""
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  <polyline points=\"{}\" fill=\"none\" stroke=\"black\" stroke-width=\"{}\"{}{}/>",
            d.join(" "),
            stroke_width(spec.style),
            dash(spec.style),
            marker
        );
        if let Some(label) = &spec.label {
            let mid = pts[pts.len() / 2 - usize::from(pts.len().is_multiple_of(2))];
            let mid2 = pts[pts.len() / 2];
            let (lx, ly) = ((mid.x + mid2.x) / 2.0 + 4.0, (mid.y + mid2.y) / 2.0 - 4.0);
            let _ = writeln!(
                out,
                "  <text x=\"{lx:.1}\" y=\"{ly:.1}\" font-style=\"italic\">{}</text>",
                esc(label)
            );
        }
    }

    // Nodes.
    for ix in diagram.node_indices() {
        let spec = diagram.node(ix);
        let r = layout.nodes[ix.index()];
        match spec.shape {
            Shape::Box => {
                let _ = writeln!(
                    out,
                    "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                     fill=\"white\" stroke=\"black\"/>",
                    r.x, r.y, r.w, r.h
                );
            }
            Shape::RoundedBox => {
                let _ = writeln!(
                    out,
                    "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" rx=\"8\" \
                     fill=\"white\" stroke=\"black\"/>",
                    r.x, r.y, r.w, r.h
                );
            }
            Shape::Circle => {
                let c = r.center();
                let _ = writeln!(
                    out,
                    "  <ellipse cx=\"{:.1}\" cy=\"{:.1}\" rx=\"{:.1}\" ry=\"{:.1}\" \
                     fill=\"white\" stroke=\"black\"/>",
                    c.x,
                    c.y,
                    r.w / 2.0,
                    r.h / 2.0
                );
            }
            Shape::Dot => {
                let c = r.center();
                let _ = writeln!(
                    out,
                    "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.1}\" fill=\"black\"/>",
                    c.x,
                    c.y,
                    r.w / 2.0
                );
            }
            Shape::Triangle => {
                let _ = writeln!(
                    out,
                    "  <polygon points=\"{:.1},{:.1} {:.1},{:.1} {:.1},{:.1}\" \
                     fill=\"white\" stroke=\"black\"/>",
                    r.x + r.w / 2.0,
                    r.y,
                    r.x,
                    r.bottom(),
                    r.right(),
                    r.bottom()
                );
            }
            Shape::Diamond => {
                let c = r.center();
                let _ = writeln!(
                    out,
                    "  <polygon points=\"{:.1},{:.1} {:.1},{:.1} {:.1},{:.1} {:.1},{:.1}\" \
                     fill=\"white\" stroke=\"black\"/>",
                    c.x,
                    r.y,
                    r.right(),
                    c.y,
                    c.x,
                    r.bottom(),
                    r.x,
                    c.y
                );
            }
        }
        // Label(s), centred; dots label to the right instead.
        if !spec.label.is_empty() {
            let c = r.center();
            if spec.shape == Shape::Dot {
                let _ = writeln!(
                    out,
                    "  <text x=\"{:.1}\" y=\"{:.1}\">{}</text>",
                    r.right() + 4.0,
                    c.y + 4.0,
                    esc(&spec.label)
                );
            } else {
                let dy = if spec.sublabel.is_some() { -2.0 } else { 4.0 };
                let _ = writeln!(
                    out,
                    "  <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
                    c.x,
                    c.y + dy,
                    esc(&spec.label)
                );
                if let Some(sub) = &spec.sublabel {
                    let _ = writeln!(
                        out,
                        "  <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" \
                         font-size=\"10\" font-style=\"italic\">{}</text>",
                        c.x,
                        c.y + 12.0,
                        esc(sub)
                    );
                }
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Move `end` along the `from→end` direction back to the border of `rect`.
fn clip_to_rect(from: Point, end: Point, rect: &Rect) -> Point {
    if rect.w == 0.0 || rect.h == 0.0 || !rect.contains(end) {
        return end;
    }
    let c = rect.center();
    let (dx, dy) = (from.x - c.x, from.y - c.y);
    if dx == 0.0 && dy == 0.0 {
        return end;
    }
    let tx = if dx != 0.0 {
        (rect.w / 2.0) / dx.abs()
    } else {
        f64::INFINITY
    };
    let ty = if dy != 0.0 {
        (rect.h / 2.0) / dy.abs()
    } else {
        f64::INFINITY
    };
    let t = tx.min(ty);
    Point::new(c.x + dx * t, c.y + dy * t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::{EdgeSpec, NodeSpec};
    use crate::layered::{layout, LayoutOptions};

    fn render_sample() -> String {
        let mut d = Diagram::new();
        let a = d.add_node(NodeSpec::new("restaurant", Shape::Box).with_sublabel("cat='italian'"));
        let b = d.add_node(NodeSpec::new("menu", Shape::Box));
        let c = d.add_node(NodeSpec::new("all", Shape::Triangle));
        let t = d.add_node(NodeSpec::new("text <&>", Shape::Circle));
        let dot = d.add_node(NodeSpec::new("id", Shape::Dot));
        let dia = d.add_node(NodeSpec::new("or", Shape::Diamond));
        let rb = d.add_node(NodeSpec::new("object", Shape::RoundedBox));
        d.add_edge(a, b, EdgeSpec::labelled("offers", EdgeStyle::Thick));
        d.add_edge(a, c, EdgeSpec::styled(EdgeStyle::Dashed));
        d.add_edge(b, t, EdgeSpec::plain().undirected());
        d.add_edge(b, dot, EdgeSpec::styled(EdgeStyle::Dotted));
        d.add_edge(c, dia, EdgeSpec::plain());
        d.add_edge(dia, rb, EdgeSpec::plain());
        let l = layout(&d, &LayoutOptions::default());
        to_svg(&d, &l)
    }

    #[test]
    fn produces_wellformed_svg_skeleton() {
        let svg = render_sample();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 3); // two boxes + rounded box
        assert_eq!(svg.matches("<ellipse").count(), 1);
        assert_eq!(svg.matches("<polygon").count(), 2); // triangle + diamond
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("offers"));
    }

    #[test]
    fn escapes_labels() {
        let svg = render_sample();
        assert!(svg.contains("text &lt;&amp;&gt;"));
        assert!(!svg.contains("text <&>"));
    }

    #[test]
    fn thick_edges_are_thicker() {
        let svg = render_sample();
        assert!(svg.contains("stroke-width=\"3\""));
        assert!(svg.contains("stroke-width=\"1.2\""));
    }

    #[test]
    fn svg_parses_as_xml() {
        // Our own XML parser is a handy well-formedness check.
        let svg = render_sample();
        let doc = gql_ssdm_parse(&svg);
        assert!(doc, "generated SVG must be well-formed XML");
    }

    fn gql_ssdm_parse(_svg: &str) -> bool {
        // layout does not depend on ssdm; do a cheap structural check
        // instead (angle bracket balance).
        let opens = _svg.matches('<').count();
        let closes = _svg.matches('>').count();
        opens == closes
    }

    #[test]
    fn clip_moves_endpoint_to_border() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        let p = clip_to_rect(Point::new(5.0, 20.0), r.center(), &r);
        assert!((p.y - 10.0).abs() < 1e-9);
        assert!((p.x - 5.0).abs() < 1e-9);
        // Outside endpoints stay put.
        let q = clip_to_rect(Point::new(5.0, 20.0), Point::new(5.0, 30.0), &r);
        assert_eq!(q, Point::new(5.0, 30.0));
    }
}
