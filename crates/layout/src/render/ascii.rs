//! ASCII renderer — coarse terminal view of a laid-out diagram.
//!
//! Used by the examples and the harness to show query diagrams without an
//! image viewer: nodes become bracketed labels on a character grid, edges
//! become `|`, `-`, `\`, `/` runs drawn with Bresenham stepping.

use crate::diagram::{Diagram, Shape};
use crate::layered::Layout;

const SCALE_X: f64 = 0.14;
const SCALE_Y: f64 = 0.09;

/// Render a laid-out diagram to a multi-line ASCII string.
pub fn to_ascii(diagram: &Diagram, layout: &Layout) -> String {
    if diagram.node_count() == 0 {
        return String::new();
    }
    let b = layout.bounds;
    let width = ((b.w * SCALE_X).ceil() as usize + 2).max(4);
    let height = ((b.h * SCALE_Y).ceil() as usize + 1).max(2);
    let mut grid = vec![vec![' '; width]; height];

    let to_cell = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x - b.x) * SCALE_X) as usize;
        let cy = ((y - b.y) * SCALE_Y) as usize;
        (cx.min(width - 1), cy.min(height - 1))
    };

    // Edges first so nodes overwrite them.
    for e in diagram.edge_indices() {
        let path = &layout.edges[e.index()];
        for w in path.points.windows(2) {
            let (x0, y0) = to_cell(w[0].x, w[0].y);
            let (x1, y1) = to_cell(w[1].x, w[1].y);
            draw_line(&mut grid, x0 as i64, y0 as i64, x1 as i64, y1 as i64);
        }
    }

    // Nodes as "[label]"-style markers centred on their rectangle.
    for ix in diagram.node_indices() {
        let spec = diagram.node(ix);
        let r = layout.nodes[ix.index()];
        let c = r.center();
        let (cx, cy) = to_cell(c.x, c.y);
        let (open, close) = match spec.shape {
            Shape::Box | Shape::RoundedBox => ('[', ']'),
            Shape::Circle => ('(', ')'),
            Shape::Dot => ('*', '*'),
            Shape::Triangle => ('^', '^'),
            Shape::Diamond => ('<', '>'),
        };
        let text: String = format!("{open}{}{close}", spec.label);
        let start = cx.saturating_sub(text.chars().count() / 2);
        for (i, ch) in text.chars().enumerate() {
            if start + i < width {
                grid[cy][start + i] = ch;
            }
        }
    }

    let mut out = String::new();
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    // Drop trailing blank lines.
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

fn draw_line(grid: &mut [Vec<char>], x0: i64, y0: i64, x1: i64, y1: i64) {
    let dx = (x1 - x0).abs();
    let dy = (y1 - y0).abs();
    let glyph = if dy == 0 {
        '-'
    } else if dx == 0 {
        '|'
    } else if (x1 > x0) == (y1 > y0) {
        '\\'
    } else {
        '/'
    };
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let (mut x, mut y) = (x0, y0);
    let mut err = dx - dy;
    loop {
        if y >= 0 && (y as usize) < grid.len() && x >= 0 && (x as usize) < grid[0].len() {
            let cell = &mut grid[y as usize][x as usize];
            if *cell == ' ' {
                *cell = glyph;
            }
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 > -dy {
            err -= dy;
            x += sx;
        }
        if e2 < dx {
            err += dx;
            y += sy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::{EdgeSpec, NodeSpec};
    use crate::layered::{layout, LayoutOptions};

    #[test]
    fn renders_labels_and_connectors() {
        let mut d = Diagram::new();
        let a = d.add_node(NodeSpec::new("bib", Shape::Box));
        let b = d.add_node(NodeSpec::new("book", Shape::Box));
        d.add_edge(a, b, EdgeSpec::plain());
        let l = layout(&d, &LayoutOptions::default());
        let text = to_ascii(&d, &l);
        assert!(text.contains("[bib]"), "{text}");
        assert!(text.contains("[book]"), "{text}");
        assert!(
            text.contains('|') || text.contains('\\') || text.contains('/'),
            "{text}"
        );
    }

    #[test]
    fn shape_brackets() {
        let mut d = Diagram::new();
        d.add_node(NodeSpec::new("t", Shape::Circle));
        d.add_node(NodeSpec::new("agg", Shape::Triangle));
        d.add_node(NodeSpec::new("c", Shape::Diamond));
        let l = layout(&d, &LayoutOptions::default());
        let text = to_ascii(&d, &l);
        assert!(text.contains("(t)"));
        assert!(text.contains("^agg^"));
        assert!(text.contains("<c>"));
    }

    #[test]
    fn empty_diagram_renders_empty() {
        let d = Diagram::new();
        let l = layout(&d, &LayoutOptions::default());
        assert_eq!(to_ascii(&d, &l), "");
    }

    #[test]
    fn no_panics_on_dense_graph() {
        let mut d = Diagram::new();
        let nodes: Vec<_> = (0..12)
            .map(|i| d.add_node(NodeSpec::new(format!("n{i}"), Shape::Box)))
            .collect();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                if (i + j) % 3 == 0 {
                    d.add_edge(nodes[i], nodes[j], EdgeSpec::plain());
                }
            }
        }
        let l = layout(&d, &LayoutOptions::default());
        let text = to_ascii(&d, &l);
        assert!(!text.is_empty());
    }
}
