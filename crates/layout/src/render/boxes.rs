//! SVG rendering for nested-box (containment) layouts — the document
//! metaphor view used by the Xing and VXT systems the survey covers.

use std::fmt::Write as _;

use crate::containment::BoxLayout;

/// Render a nested-box layout to an SVG document string. Deeper boxes get
/// progressively lighter fills so nesting reads at a glance.
pub fn boxes_to_svg(layout: &BoxLayout) -> String {
    let b = layout.bounds.inflate(6.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"{:.1} {:.1} {:.1} {:.1}\" font-family=\"sans-serif\" font-size=\"11\">",
        b.w, b.h, b.x, b.y, b.w, b.h
    );
    for (rect, label, depth) in &layout.rects {
        let shade = 244u8.saturating_sub((*depth as u8).saturating_mul(6));
        let _ = writeln!(
            out,
            "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" rx=\"4\" \
             fill=\"rgb({shade},{shade},{shade})\" stroke=\"black\" stroke-width=\"0.8\"/>",
            rect.x, rect.y, rect.w, rect.h
        );
        let _ = writeln!(
            out,
            "  <text x=\"{:.1}\" y=\"{:.1}\" font-weight=\"bold\">{}</text>",
            rect.x + 4.0,
            rect.y + 13.0,
            super::esc(label)
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{nested, BoxNode, BoxOptions};

    fn sample() -> BoxLayout {
        let tree = BoxNode::with_children(
            "product",
            vec![
                BoxNode::leaf("name: cabbage"),
                BoxNode::with_children(
                    "price",
                    vec![BoxNode::leaf("unit: piece"), BoxNode::leaf("value: 0.59")],
                ),
            ],
        );
        nested(&tree, &BoxOptions::default())
    }

    #[test]
    fn renders_every_box_and_label() {
        let svg = boxes_to_svg(&sample());
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("name: cabbage"));
        assert!(svg.contains("value: 0.59"));
    }

    #[test]
    fn deeper_boxes_are_lighter() {
        let svg = boxes_to_svg(&sample());
        // depth 0 fill appears before depth 2 fill; the shades differ.
        assert!(svg.contains("rgb(244,244,244)"));
        assert!(svg.contains("rgb(232,232,232)"));
    }

    #[test]
    fn escapes_labels() {
        let layout = nested(&BoxNode::leaf("a < b & c"), &BoxOptions::default());
        let svg = boxes_to_svg(&layout);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }
}
