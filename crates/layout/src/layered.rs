//! Sugiyama-style layered layout.
//!
//! Pipeline: (1) break cycles by reversing back edges found on a DFS;
//! (2) assign layers by longest path; (3) replace layer-spanning edges by
//! chains of virtual nodes; (4) reduce crossings by iterated barycenter or
//! median sweeps (experiment **T4** ablates the two); (5) assign x
//! coordinates by neighbour averaging with collision resolution.
//!
//! The output maps every original node to a [`Rect`] and every original
//! edge to a polyline routed through its virtual nodes.

use gql_vgraph::{Graph, NodeIx};

use crate::diagram::{Diagram, NodeSpec};
use crate::geom::{Point, Rect};

/// Crossing-reduction heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingHeuristic {
    /// Average of neighbour positions.
    Barycenter,
    /// Median of neighbour positions.
    Median,
    /// No reordering — the naive baseline layout of experiment T4.
    None,
}

/// Layout parameters.
#[derive(Debug, Clone, Copy)]
pub struct LayoutOptions {
    pub ordering: OrderingHeuristic,
    /// Number of down/up sweep pairs.
    pub sweeps: usize,
    /// Vertical distance between layer baselines.
    pub layer_gap: f64,
    /// Horizontal gap between node boxes in a layer.
    pub node_gap: f64,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            ordering: OrderingHeuristic::Barycenter,
            sweeps: 4,
            layer_gap: 70.0,
            node_gap: 24.0,
        }
    }
}

/// Routed edge: a polyline from source to target border-to-border.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePath {
    pub points: Vec<Point>,
}

/// The computed layout.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Rectangle per original node (indexed by `NodeIx::index()`).
    pub nodes: Vec<Rect>,
    /// Polyline per original edge (indexed by `EdgeIx::index()`).
    pub edges: Vec<EdgePath>,
    /// Bounding box of the whole drawing.
    pub bounds: Rect,
    /// Layer of each original node.
    pub layers: Vec<usize>,
}

/// Internal node: original or virtual (edge bend point).
#[derive(Clone, Copy, PartialEq)]
enum INode {
    Real(NodeIx),
    Virtual,
}

/// Compute a layered layout for a diagram.
#[allow(clippy::needless_range_loop)] // split borrows of `order[l]` vs `pos` need indexing
pub fn layout(diagram: &Diagram, opts: &LayoutOptions) -> Layout {
    let n = diagram.node_count();
    if n == 0 {
        return Layout {
            nodes: Vec::new(),
            edges: Vec::new(),
            bounds: Rect::default(),
            layers: Vec::new(),
        };
    }

    // 1. Cycle breaking: DFS, mark back edges as reversed.
    let reversed = find_back_edges(diagram);

    // 2. Layering (longest path over the acyclic orientation).
    let layers = assign_layers(diagram, &reversed);
    let max_layer = layers.iter().copied().max().unwrap_or(0);

    // 3. Build the proper layered graph with virtual nodes.
    // inodes: per internal node its kind and layer.
    let mut inodes: Vec<(INode, usize)> = diagram
        .node_indices()
        .map(|ix| (INode::Real(ix), layers[ix.index()]))
        .collect();
    // segments between internal nodes (directed downwards).
    let mut segments: Vec<(usize, usize)> = Vec::new();
    // For each original edge, the chain of internal node indices from source
    // to target (inclusive).
    let mut edge_chains: Vec<Vec<usize>> = Vec::with_capacity(diagram.edge_count());
    for e in diagram.edge_indices() {
        let (s, t) = diagram.endpoints(e);
        let (mut a, mut b) = (s.index(), t.index());
        if reversed[e.index()] {
            std::mem::swap(&mut a, &mut b);
        }
        let (la, lb) = (inodes[a].1, inodes[b].1);
        let mut chain = vec![a];
        if lb > la + 1 {
            let mut prev = a;
            for l in la + 1..lb {
                let v = inodes.len();
                inodes.push((INode::Virtual, l));
                segments.push((prev, v));
                chain.push(v);
                prev = v;
            }
            segments.push((prev, b));
        } else {
            segments.push((a, b));
        }
        chain.push(b);
        if reversed[e.index()] {
            chain.reverse();
        }
        edge_chains.push(chain);
    }

    // Per-layer node lists with stable initial order (insertion order).
    let mut order: Vec<Vec<usize>> = vec![Vec::new(); max_layer + 1];
    for (i, &(_, l)) in inodes.iter().enumerate() {
        order[l].push(i);
    }

    // Adjacency over internal nodes (down = successors in lower layers).
    let mut down: Vec<Vec<usize>> = vec![Vec::new(); inodes.len()];
    let mut up: Vec<Vec<usize>> = vec![Vec::new(); inodes.len()];
    for &(a, b) in &segments {
        down[a].push(b);
        up[b].push(a);
    }

    // 4. Crossing reduction sweeps.
    if opts.ordering != OrderingHeuristic::None {
        let mut pos = positions_of(&order, inodes.len());
        for _ in 0..opts.sweeps {
            // Downward sweep: order layer l by neighbours in layer l-1.
            for l in 1..=max_layer {
                reorder_layer(&mut order[l], &up, &pos, opts.ordering);
                refresh_positions(&order[l], &mut pos);
            }
            // Upward sweep.
            for l in (0..max_layer).rev() {
                reorder_layer(&mut order[l], &down, &pos, opts.ordering);
                refresh_positions(&order[l], &mut pos);
            }
        }
    }

    // 5. Coordinate assignment.
    let sizes: Vec<(f64, f64)> = inodes
        .iter()
        .map(|&(kind, _)| match kind {
            INode::Real(ix) => node_size(diagram.node(ix)),
            INode::Virtual => (1.0, 1.0),
        })
        .collect();

    let mut x = vec![0.0f64; inodes.len()];
    // Initial left-to-right packing per layer.
    for row in &order {
        let mut cursor = 0.0;
        for &i in row {
            x[i] = cursor + sizes[i].0 / 2.0;
            cursor += sizes[i].0 + opts.node_gap;
        }
    }
    // Relaxation: pull towards the mean of neighbours, then restore minimum
    // separation preserving order.
    for _ in 0..8 {
        for row in &order {
            for &i in row {
                let mut acc = 0.0;
                let mut cnt = 0usize;
                for &m in up[i].iter().chain(down[i].iter()) {
                    acc += x[m];
                    cnt += 1;
                }
                if cnt > 0 {
                    x[i] = (x[i] + acc / cnt as f64) / 2.0;
                }
            }
            resolve_overlaps(row, &mut x, &sizes, opts.node_gap);
        }
    }

    // Shift to non-negative coordinates.
    let min_x = inodes
        .iter()
        .enumerate()
        .map(|(i, _)| x[i] - sizes[i].0 / 2.0)
        .fold(f64::INFINITY, f64::min);
    let shift = if min_x.is_finite() {
        -min_x + 10.0
    } else {
        10.0
    };

    let layer_y = |l: usize| 10.0 + l as f64 * opts.layer_gap;
    let mut node_rects = vec![Rect::default(); n];
    let mut ipoints = vec![Point::default(); inodes.len()];
    for (i, &(kind, l)) in inodes.iter().enumerate() {
        let cx = x[i] + shift;
        let (w, h) = sizes[i];
        let cy = layer_y(l) + h / 2.0;
        ipoints[i] = Point::new(cx, cy);
        if let INode::Real(ix) = kind {
            node_rects[ix.index()] = Rect::new(cx - w / 2.0, layer_y(l), w, h);
        }
    }

    let edges: Vec<EdgePath> = edge_chains
        .iter()
        .map(|chain| EdgePath {
            points: chain.iter().map(|&i| ipoints[i]).collect(),
        })
        .collect();

    let mut bounds = node_rects.first().copied().unwrap_or_default();
    for r in &node_rects {
        bounds = bounds.union(r);
    }
    for e in &edges {
        for p in &e.points {
            bounds = bounds.union(&Rect::new(p.x, p.y, 0.0, 0.0));
        }
    }
    bounds = bounds.inflate(10.0);

    Layout {
        nodes: node_rects,
        edges,
        bounds,
        layers,
    }
}

fn node_size(spec: &NodeSpec) -> (f64, f64) {
    spec.size()
}

fn positions_of(order: &[Vec<usize>], n: usize) -> Vec<usize> {
    let mut pos = vec![0usize; n];
    for row in order {
        for (p, &i) in row.iter().enumerate() {
            pos[i] = p;
        }
    }
    pos
}

fn refresh_positions(row: &[usize], pos: &mut [usize]) {
    for (p, &i) in row.iter().enumerate() {
        pos[i] = p;
    }
}

fn reorder_layer(
    row: &mut [usize],
    neighbours: &[Vec<usize>],
    pos: &[usize],
    heuristic: OrderingHeuristic,
) {
    let mut keyed: Vec<(f64, usize, usize)> = row
        .iter()
        .map(|&i| {
            let ns = &neighbours[i];
            let key = if ns.is_empty() {
                pos[i] as f64 // keep isolated nodes where they are
            } else {
                match heuristic {
                    OrderingHeuristic::Barycenter => {
                        ns.iter().map(|&m| pos[m] as f64).sum::<f64>() / ns.len() as f64
                    }
                    OrderingHeuristic::Median => {
                        let mut ps: Vec<usize> = ns.iter().map(|&m| pos[m]).collect();
                        ps.sort_unstable();
                        ps[ps.len() / 2] as f64
                    }
                    OrderingHeuristic::None => pos[i] as f64,
                }
            };
            (key, pos[i], i)
        })
        .collect();
    keyed.sort_by(|a, b| a.partial_cmp(b).expect("finite keys"));
    for (slot, (_, _, i)) in keyed.into_iter().enumerate() {
        row[slot] = i;
    }
}

/// Push overlapping nodes apart left-to-right, preserving order.
fn resolve_overlaps(row: &[usize], x: &mut [f64], sizes: &[(f64, f64)], gap: f64) {
    for w in 1..row.len() {
        let (prev, cur) = (row[w - 1], row[w]);
        let min_x = x[prev] + sizes[prev].0 / 2.0 + gap + sizes[cur].0 / 2.0;
        if x[cur] < min_x {
            x[cur] = min_x;
        }
    }
}

/// DFS-based back-edge detection; returns per-edge "treat as reversed".
fn find_back_edges<N, E>(g: &Graph<N, E>) -> Vec<bool> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; g.node_count()];
    let mut reversed = vec![false; g.edge_count()];
    for root in g.node_indices() {
        if color[root.index()] != Color::White {
            continue;
        }
        // Iterative DFS keeping an edge iterator index per frame.
        let mut stack: Vec<(NodeIx, usize)> = vec![(root, 0)];
        color[root.index()] = Color::Grey;
        while let Some(frame) = stack.len().checked_sub(1) {
            let (v, ei) = stack[frame];
            let out: Vec<gql_vgraph::EdgeIx> = g.out_edges(v).collect();
            if ei < out.len() {
                let e = out[ei];
                stack[frame].1 += 1;
                let w = g.target(e);
                match color[w.index()] {
                    Color::White => {
                        color[w.index()] = Color::Grey;
                        stack.push((w, 0));
                    }
                    Color::Grey => reversed[e.index()] = true, // back edge
                    Color::Black => {}
                }
            } else {
                color[v.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    reversed
}

/// Longest-path layering over the acyclic orientation.
fn assign_layers<N, E>(g: &Graph<N, E>, reversed: &[bool]) -> Vec<usize> {
    // Build oriented adjacency.
    let n = g.node_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for e in g.edge_indices() {
        let (s, t) = g.endpoints(e);
        let (a, b) = if reversed[e.index()] {
            (t.index(), s.index())
        } else {
            (s.index(), t.index())
        };
        if a == b {
            continue; // self-loops do not affect layering
        }
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut layer = vec![0usize; n];
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &w in &adj[v] {
            layer[w] = layer[w].max(layer[v] + 1);
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    layer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::{EdgeSpec, NodeSpec, Shape};
    use crate::metrics;

    fn spec(l: &str) -> NodeSpec {
        NodeSpec::new(l, Shape::Box)
    }

    #[test]
    fn chain_layout_is_vertical() {
        let mut d = Diagram::new();
        let a = d.add_node(spec("a"));
        let b = d.add_node(spec("b"));
        let c = d.add_node(spec("c"));
        d.add_edge(a, b, EdgeSpec::plain());
        d.add_edge(b, c, EdgeSpec::plain());
        let l = layout(&d, &LayoutOptions::default());
        assert_eq!(l.layers, vec![0, 1, 2]);
        assert!(l.nodes[0].y < l.nodes[1].y && l.nodes[1].y < l.nodes[2].y);
        assert_eq!(l.edges.len(), 2);
    }

    #[test]
    fn siblings_do_not_overlap() {
        let mut d = Diagram::new();
        let root = d.add_node(spec("root"));
        let kids: Vec<_> = (0..6)
            .map(|i| d.add_node(spec(&format!("child-{i}"))))
            .collect();
        for &k in &kids {
            d.add_edge(root, k, EdgeSpec::plain());
        }
        let l = layout(&d, &LayoutOptions::default());
        for i in 0..kids.len() {
            for j in i + 1..kids.len() {
                let (a, b) = (l.nodes[kids[i].index()], l.nodes[kids[j].index()]);
                assert!(!a.intersects(&b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn long_edges_get_bend_points() {
        let mut d = Diagram::new();
        let a = d.add_node(spec("a"));
        let b = d.add_node(spec("b"));
        let c = d.add_node(spec("c"));
        d.add_edge(a, b, EdgeSpec::plain());
        d.add_edge(b, c, EdgeSpec::plain());
        let e_long = d.add_edge(a, c, EdgeSpec::plain()); // spans 2 layers
        let l = layout(&d, &LayoutOptions::default());
        assert_eq!(l.edges[e_long.index()].points.len(), 3);
    }

    #[test]
    fn cycles_are_handled() {
        let mut d = Diagram::new();
        let a = d.add_node(spec("a"));
        let b = d.add_node(spec("b"));
        d.add_edge(a, b, EdgeSpec::plain());
        d.add_edge(b, a, EdgeSpec::plain());
        let l = layout(&d, &LayoutOptions::default());
        assert_eq!(l.nodes.len(), 2);
        assert_ne!(l.layers[0], l.layers[1]);
    }

    #[test]
    fn self_loop_does_not_panic() {
        let mut d = Diagram::new();
        let a = d.add_node(spec("a"));
        d.add_edge(a, a, EdgeSpec::plain());
        let l = layout(&d, &LayoutOptions::default());
        assert_eq!(l.nodes.len(), 1);
    }

    #[test]
    fn empty_diagram() {
        let d = Diagram::new();
        let l = layout(&d, &LayoutOptions::default());
        assert!(l.nodes.is_empty());
        assert!(l.edges.is_empty());
    }

    #[test]
    fn barycenter_reduces_crossings_on_bipartite_tangle() {
        // K-shaped tangle: upper u0..u3 connect to lower in reversed order;
        // the identity order has C(4,2)=6 crossings, optimum is 0 after
        // flipping one side.
        let mut d = Diagram::new();
        let src = d.add_node(spec("s"));
        let uppers: Vec<_> = (0..4).map(|i| d.add_node(spec(&format!("u{i}")))).collect();
        let lowers: Vec<_> = (0..4).map(|i| d.add_node(spec(&format!("l{i}")))).collect();
        for &u in &uppers {
            d.add_edge(src, u, EdgeSpec::plain());
        }
        for (i, &u) in uppers.iter().enumerate() {
            d.add_edge(u, lowers[3 - i], EdgeSpec::plain());
        }
        let naive = layout(
            &d,
            &LayoutOptions {
                ordering: OrderingHeuristic::None,
                ..Default::default()
            },
        );
        let tuned = layout(&d, &LayoutOptions::default());
        let c_naive = metrics::crossings(&naive);
        let c_tuned = metrics::crossings(&tuned);
        assert!(c_tuned <= c_naive, "tuned {c_tuned} vs naive {c_naive}");
        assert_eq!(c_tuned, 0);
    }

    #[test]
    fn median_heuristic_also_works() {
        let mut d = Diagram::new();
        let a = d.add_node(spec("a"));
        let kids: Vec<_> = (0..5).map(|i| d.add_node(spec(&format!("k{i}")))).collect();
        for &k in &kids {
            d.add_edge(a, k, EdgeSpec::plain());
        }
        let l = layout(
            &d,
            &LayoutOptions {
                ordering: OrderingHeuristic::Median,
                ..Default::default()
            },
        );
        assert_eq!(metrics::crossings(&l), 0);
    }

    #[test]
    fn bounds_cover_everything() {
        let mut d = Diagram::new();
        let a = d.add_node(spec("alpha"));
        let b = d.add_node(spec("beta"));
        d.add_edge(a, b, EdgeSpec::plain());
        let l = layout(&d, &LayoutOptions::default());
        for r in &l.nodes {
            assert!(l.bounds.x <= r.x && l.bounds.right() >= r.right());
            assert!(l.bounds.y <= r.y && l.bounds.bottom() >= r.bottom());
        }
    }

    #[test]
    fn deterministic() {
        let mut d = Diagram::new();
        let nodes: Vec<_> = (0..10)
            .map(|i| d.add_node(spec(&format!("n{i}"))))
            .collect();
        for i in 0..9 {
            d.add_edge(nodes[i % 3], nodes[i + 1], EdgeSpec::plain());
        }
        let l1 = layout(&d, &LayoutOptions::default());
        let l2 = layout(&d, &LayoutOptions::default());
        assert_eq!(l1.nodes, l2.nodes);
    }
}
