//! Plane geometry primitives for layout and rendering.

/// A point in diagram coordinates (x grows right, y grows down).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned rectangle given by its top-left corner and size.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    pub x: f64,
    pub y: f64,
    pub w: f64,
    pub h: f64,
}

impl Rect {
    pub const fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Rect { x, y, w, h }
    }

    pub fn center(&self) -> Point {
        Point::new(self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    pub fn bottom(&self) -> f64 {
        self.y + self.h
    }

    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x && p.x <= self.right() && p.y >= self.y && p.y <= self.bottom()
    }

    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let r = self.right().max(other.right());
        let b = self.bottom().max(other.bottom());
        Rect::new(x, y, r - x, b - y)
    }

    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Grow on all sides by `margin`.
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect::new(
            self.x - margin,
            self.y - margin,
            self.w + 2.0 * margin,
            self.h + 2.0 * margin,
        )
    }
}

/// Whether segments `a1–a2` and `b1–b2` properly cross (shared endpoints do
/// not count — diagram edges meeting at a node are not a crossing).
pub fn segments_cross(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    const EPS: f64 = 1e-9;
    let close = |p: Point, q: Point| (p.x - q.x).abs() < EPS && (p.y - q.y).abs() < EPS;
    if close(a1, b1) || close(a1, b2) || close(a2, b1) || close(a2, b2) {
        return false;
    }
    let d = |p: Point, q: Point, r: Point| (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x);
    let d1 = d(b1, b2, a1);
    let d2 = d(b1, b2, a2);
    let d3 = d(a1, a2, b1);
    let d4 = d(a1, a2, b2);
    (d1 * d2 < -EPS) && (d3 * d4 < -EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basics() {
        let r = Rect::new(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.center(), Point::new(3.0, 5.0));
        assert_eq!(r.right(), 5.0);
        assert_eq!(r.bottom(), 8.0);
        assert_eq!(r.area(), 24.0);
        assert!(r.contains(Point::new(3.0, 5.0)));
        assert!(!r.contains(Point::new(0.0, 0.0)));
    }

    #[test]
    fn union_and_intersection() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        let c = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!(u, Rect::new(0.0, 0.0, 6.0, 6.0));
    }

    #[test]
    fn inflate() {
        let r = Rect::new(2.0, 2.0, 2.0, 2.0).inflate(1.0);
        assert_eq!(r, Rect::new(1.0, 1.0, 4.0, 4.0));
    }

    #[test]
    fn crossing_detection() {
        let p = Point::new;
        // X-shaped crossing.
        assert!(segments_cross(p(0., 0.), p(2., 2.), p(0., 2.), p(2., 0.)));
        // Parallel.
        assert!(!segments_cross(p(0., 0.), p(2., 0.), p(0., 1.), p(2., 1.)));
        // Shared endpoint — not a crossing.
        assert!(!segments_cross(p(0., 0.), p(2., 2.), p(0., 0.), p(2., 0.)));
        // T-touch (endpoint on segment interior) — not a proper crossing.
        assert!(!segments_cross(p(0., 0.), p(2., 0.), p(1., 0.), p(1., 2.)));
    }

    #[test]
    fn distance() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }
}
