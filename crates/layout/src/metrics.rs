//! Diagram readability metrics (experiment **T4**).
//!
//! The classic aesthetic criteria for graph drawings: edge crossings, total
//! edge length, drawing area and aspect ratio. The harness reports these for
//! the Q1–Q10 diagrams under tuned and naive layouts.

use crate::geom::segments_cross;
use crate::layered::Layout;

/// Number of proper pairwise crossings between edge segments.
pub fn crossings(layout: &Layout) -> usize {
    let mut segs = Vec::new();
    for (ei, e) in layout.edges.iter().enumerate() {
        for w in e.points.windows(2) {
            segs.push((ei, w[0], w[1]));
        }
    }
    let mut count = 0;
    for i in 0..segs.len() {
        for j in i + 1..segs.len() {
            // Segments of the same edge never count (they share bends).
            if segs[i].0 == segs[j].0 {
                continue;
            }
            if segments_cross(segs[i].1, segs[i].2, segs[j].1, segs[j].2) {
                count += 1;
            }
        }
    }
    count
}

/// Sum of polyline lengths over all edges.
pub fn total_edge_length(layout: &Layout) -> f64 {
    layout
        .edges
        .iter()
        .map(|e| {
            e.points
                .windows(2)
                .map(|w| w[0].distance(w[1]))
                .sum::<f64>()
        })
        .sum()
}

/// Area of the drawing's bounding box.
pub fn area(layout: &Layout) -> f64 {
    layout.bounds.area()
}

/// Width / height ratio of the drawing (0 for empty drawings).
pub fn aspect_ratio(layout: &Layout) -> f64 {
    if layout.bounds.h == 0.0 {
        0.0
    } else {
        layout.bounds.w / layout.bounds.h
    }
}

/// Bundle of all metrics, convenient for tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Readability {
    pub crossings: usize,
    pub total_edge_length: f64,
    pub area: f64,
    pub aspect_ratio: f64,
}

/// Compute every metric at once.
pub fn readability(layout: &Layout) -> Readability {
    Readability {
        crossings: crossings(layout),
        total_edge_length: total_edge_length(layout),
        area: area(layout),
        aspect_ratio: aspect_ratio(layout),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::{Diagram, EdgeSpec, NodeSpec, Shape};
    use crate::layered::{layout, LayoutOptions};

    #[test]
    fn straight_chain_has_no_crossings() {
        let mut d = Diagram::new();
        let a = d.add_node(NodeSpec::new("a", Shape::Box));
        let b = d.add_node(NodeSpec::new("b", Shape::Box));
        d.add_edge(a, b, EdgeSpec::plain());
        let l = layout(&d, &LayoutOptions::default());
        let m = readability(&l);
        assert_eq!(m.crossings, 0);
        assert!(m.total_edge_length > 0.0);
        assert!(m.area > 0.0);
        assert!(m.aspect_ratio > 0.0);
    }

    #[test]
    fn edge_length_is_at_least_layer_gap_distance() {
        let mut d = Diagram::new();
        let a = d.add_node(NodeSpec::new("a", Shape::Box));
        let b = d.add_node(NodeSpec::new("b", Shape::Box));
        d.add_edge(a, b, EdgeSpec::plain());
        let opts = LayoutOptions::default();
        let l = layout(&d, &opts);
        // Centre-to-centre distance spans one layer gap.
        assert!(total_edge_length(&l) >= opts.layer_gap - 30.0);
    }

    #[test]
    fn empty_layout_metrics() {
        let d = Diagram::new();
        let l = layout(&d, &LayoutOptions::default());
        assert_eq!(crossings(&l), 0);
        assert_eq!(total_edge_length(&l), 0.0);
        assert_eq!(aspect_ratio(&l), 0.0);
    }
}
