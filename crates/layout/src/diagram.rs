//! The renderer-facing diagram model.
//!
//! Language crates translate their query ASTs into a [`Diagram`]: a
//! [`gql_vgraph::Graph`] whose node payloads say *what to draw* (shape,
//! label) and whose edge payloads say *how to draw the connection* (style,
//! label). The shapes cover the visual vocabulary of both languages as the
//! paper draws them:
//!
//! | Shape | XML-GL / WG-Log meaning |
//! |---|---|
//! | `Box` | element / entity node |
//! | `RoundedBox` | WG-Log complex object |
//! | `Circle` | text-content node (hollow circle) |
//! | `Dot` | attribute (filled circle) |
//! | `Triangle` | aggregation ("collect all matched") |
//! | `Diamond` | condition / operator node |

use gql_vgraph::Graph;

/// Node shapes of the visual vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    Box,
    RoundedBox,
    Circle,
    Dot,
    Triangle,
    Diamond,
}

/// How an edge is stroked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeStyle {
    /// Thin solid — XML-GL containment / WG-Log query part.
    Solid,
    /// Thick solid — WG-Log construction part.
    Thick,
    /// Dashed — GraphLog regular path expressions / optional structure.
    Dashed,
    /// Dotted — binding edges between the query and construction sides.
    Dotted,
}

/// What to draw for a node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    pub label: String,
    pub shape: Shape,
    /// Extra annotation drawn under the label (e.g. a predicate).
    pub sublabel: Option<String>,
}

impl NodeSpec {
    pub fn new(label: impl Into<String>, shape: Shape) -> Self {
        NodeSpec {
            label: label.into(),
            shape,
            sublabel: None,
        }
    }

    pub fn with_sublabel(mut self, sub: impl Into<String>) -> Self {
        self.sublabel = Some(sub.into());
        self
    }

    /// Preferred box size in diagram units, derived from the label length —
    /// the layout engine spaces nodes by these sizes.
    pub fn size(&self) -> (f64, f64) {
        let label_len = self
            .label
            .chars()
            .count()
            .max(self.sublabel.as_ref().map_or(0, |s| s.chars().count()));
        let w = (label_len as f64 * 8.0 + 16.0).max(30.0);
        let h = if self.sublabel.is_some() { 40.0 } else { 26.0 };
        match self.shape {
            Shape::Dot => (10.0, 10.0),
            Shape::Circle => (w.max(30.0), 30.0),
            Shape::Triangle | Shape::Diamond => (w.max(36.0), 32.0),
            _ => (w, h),
        }
    }
}

/// What to draw for an edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSpec {
    pub label: Option<String>,
    pub style: EdgeStyle,
    /// Draw an arrow head at the target end.
    pub arrow: bool,
}

impl EdgeSpec {
    pub fn plain() -> Self {
        EdgeSpec {
            label: None,
            style: EdgeStyle::Solid,
            arrow: true,
        }
    }

    pub fn styled(style: EdgeStyle) -> Self {
        EdgeSpec {
            label: None,
            style,
            arrow: true,
        }
    }

    pub fn labelled(label: impl Into<String>, style: EdgeStyle) -> Self {
        EdgeSpec {
            label: Some(label.into()),
            style,
            arrow: true,
        }
    }

    pub fn undirected(mut self) -> Self {
        self.arrow = false;
        self
    }
}

/// A complete diagram: graph + drawing specifications.
pub type Diagram = Graph<NodeSpec, EdgeSpec>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_size_grows_with_label() {
        let small = NodeSpec::new("a", Shape::Box).size();
        let big = NodeSpec::new("a-very-long-element-name", Shape::Box).size();
        assert!(big.0 > small.0);
        assert_eq!(small.1, 26.0);
    }

    #[test]
    fn sublabel_makes_taller() {
        let plain = NodeSpec::new("price", Shape::Box);
        let with = plain.clone().with_sublabel("> 20");
        assert!(with.size().1 > plain.size().1);
    }

    #[test]
    fn dot_is_fixed_size() {
        assert_eq!(
            NodeSpec::new("whatever-long", Shape::Dot).size(),
            (10.0, 10.0)
        );
    }

    #[test]
    fn edge_constructors() {
        let e = EdgeSpec::labelled("offers", EdgeStyle::Thick);
        assert_eq!(e.label.as_deref(), Some("offers"));
        assert!(e.arrow);
        assert!(!EdgeSpec::plain().undirected().arrow);
    }
}
