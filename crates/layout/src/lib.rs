//! # gql-layout — diagram layout and rendering
//!
//! The paper's languages are *visual*: a query is a picture. Because the
//! reproduction substitutes an interactive editor with a programmatic
//! diagram model (see DESIGN.md), this crate supplies the part of the GUI
//! that carries semantics for a reader: automatic layout of diagram graphs
//! and deterministic rendering to SVG and ASCII.
//!
//! * [`diagram`] — the renderer-facing model: shaped, labelled nodes
//!   ([`NodeSpec`]) and styled edges ([`EdgeSpec`]) on a [`gql_vgraph::Graph`];
//! * [`layered`] — a Sugiyama-style pipeline (cycle breaking, longest-path
//!   layering, barycenter/median crossing reduction, coordinate assignment);
//! * [`containment`] — nested-box layout for tree-shaped diagrams (the
//!   visual-treemap style of VXT / Xing document metaphors);
//! * [`metrics`] — readability measures (edge crossings, total edge length,
//!   area) used by experiment **T4**;
//! * [`render`] — SVG and ASCII back-ends.

pub mod containment;
pub mod diagram;
pub mod geom;
pub mod layered;
pub mod metrics;
pub mod render;

pub use diagram::{Diagram, EdgeSpec, EdgeStyle, NodeSpec, Shape};
pub use geom::{Point, Rect};
pub use layered::{layout, Layout, LayoutOptions, OrderingHeuristic};
