//! Rendering back-ends: SVG (for figures) and ASCII (for terminals/tests).

pub mod ascii;
pub mod boxes;
pub mod svg;

pub use ascii::to_ascii;
pub use boxes::boxes_to_svg;
pub use svg::to_svg;

/// Escape text for SVG/XML content and attribute positions.
pub(crate) fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}
