//! Nested-box (containment) layout.
//!
//! Several of the surveyed visual systems draw hierarchy as *spatial
//! inclusion* rather than edges (VXT's treemap view, Xing's document
//! metaphor, VIPR's nested rings). XML-GL schemas occasionally do too. This
//! module lays out a tree of labelled boxes so that children nest inside
//! their parent, horizontally per level, and returns one rectangle per node.

use crate::geom::Rect;

/// A node of the containment tree.
#[derive(Debug, Clone)]
pub struct BoxNode {
    pub label: String,
    pub children: Vec<BoxNode>,
}

impl BoxNode {
    pub fn leaf(label: impl Into<String>) -> Self {
        BoxNode {
            label: label.into(),
            children: Vec::new(),
        }
    }

    pub fn with_children(label: impl Into<String>, children: Vec<BoxNode>) -> Self {
        BoxNode {
            label: label.into(),
            children,
        }
    }

    /// Total number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(BoxNode::size).sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(BoxNode::depth).max().unwrap_or(0)
    }
}

/// Layout parameters for nested boxes.
#[derive(Debug, Clone, Copy)]
pub struct BoxOptions {
    /// Inner padding between a box border and its children.
    pub padding: f64,
    /// Gap between adjacent children.
    pub gap: f64,
    /// Vertical space reserved for the box's own label.
    pub label_height: f64,
    /// Minimum leaf box width per label character.
    pub char_width: f64,
}

impl Default for BoxOptions {
    fn default() -> Self {
        BoxOptions {
            padding: 8.0,
            gap: 8.0,
            label_height: 18.0,
            char_width: 8.0,
        }
    }
}

/// Result: rectangles in pre-order (parent before children), paired with
/// their node labels and nesting depth.
#[derive(Debug, Clone)]
pub struct BoxLayout {
    pub rects: Vec<(Rect, String, usize)>,
    pub bounds: Rect,
}

/// Compute the nested layout. Children are placed left-to-right inside
/// their parent, below the parent's label strip.
pub fn nested(root: &BoxNode, opts: &BoxOptions) -> BoxLayout {
    let mut rects = Vec::with_capacity(root.size());
    let bounds = place(root, 0.0, 0.0, 0, opts, &mut rects);
    BoxLayout { rects, bounds }
}

/// Place a subtree with its top-left corner at (x, y); returns its rect.
fn place(
    node: &BoxNode,
    x: f64,
    y: f64,
    depth: usize,
    opts: &BoxOptions,
    out: &mut Vec<(Rect, String, usize)>,
) -> Rect {
    let label_w = node.label.chars().count() as f64 * opts.char_width + 2.0 * opts.padding;
    // Reserve our slot; fill in the final rect after children are placed.
    let slot = out.len();
    out.push((Rect::default(), node.label.clone(), depth));
    let mut child_x = x + opts.padding;
    let child_y = y + opts.label_height;
    let mut max_child_bottom = child_y;
    for child in &node.children {
        let r = place(child, child_x, child_y, depth + 1, opts, out);
        child_x = r.right() + opts.gap;
        max_child_bottom = max_child_bottom.max(r.bottom());
    }
    let content_w = if node.children.is_empty() {
        0.0
    } else {
        (child_x - opts.gap) - x + opts.padding
    };
    let w = label_w.max(content_w);
    let h = if node.children.is_empty() {
        opts.label_height + opts.padding
    } else {
        (max_child_bottom - y) + opts.padding
    };
    let rect = Rect::new(x, y, w, h);
    out[slot].0 = rect;
    rect
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BoxNode {
        BoxNode::with_children(
            "product",
            vec![
                BoxNode::leaf("name"),
                BoxNode::with_children(
                    "price",
                    vec![BoxNode::leaf("unit"), BoxNode::leaf("value")],
                ),
            ],
        )
    }

    #[test]
    fn children_nest_inside_parent() {
        let l = nested(&sample(), &BoxOptions::default());
        assert_eq!(l.rects.len(), 5);
        let parent = l.rects[0].0;
        for (r, _, depth) in &l.rects[1..] {
            if *depth == 1 {
                assert!(
                    parent.x <= r.x && parent.right() >= r.right(),
                    "{r:?} in {parent:?}"
                );
                assert!(parent.y <= r.y && parent.bottom() >= r.bottom());
            }
        }
    }

    #[test]
    fn siblings_do_not_overlap() {
        let l = nested(&sample(), &BoxOptions::default());
        let name = l.rects.iter().find(|(_, s, _)| s == "name").unwrap().0;
        let price = l.rects.iter().find(|(_, s, _)| s == "price").unwrap().0;
        assert!(!name.intersects(&price));
        assert!(name.right() <= price.x);
    }

    #[test]
    fn depths_are_recorded_preorder() {
        let l = nested(&sample(), &BoxOptions::default());
        let labels: Vec<(&str, usize)> = l.rects.iter().map(|(_, s, d)| (s.as_str(), *d)).collect();
        assert_eq!(
            labels,
            vec![
                ("product", 0),
                ("name", 1),
                ("price", 1),
                ("unit", 2),
                ("value", 2)
            ]
        );
    }

    #[test]
    fn leaf_layout() {
        let l = nested(&BoxNode::leaf("x"), &BoxOptions::default());
        assert_eq!(l.rects.len(), 1);
        assert!(l.bounds.w > 0.0 && l.bounds.h > 0.0);
    }

    #[test]
    fn wide_labels_widen_boxes() {
        let narrow = nested(&BoxNode::leaf("a"), &BoxOptions::default()).bounds.w;
        let wide = nested(&BoxNode::leaf("a-very-long-label"), &BoxOptions::default())
            .bounds
            .w;
        assert!(wide > narrow);
    }

    #[test]
    fn size_and_depth_helpers() {
        let t = sample();
        assert_eq!(t.size(), 5);
        assert_eq!(t.depth(), 3);
    }
}
