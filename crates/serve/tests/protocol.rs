//! Protocol error-path battery over a real TCP server.
//!
//! Every way a client can misbehave must land as a structured error (or a
//! clean close), never a panic or a hang:
//!
//! * malformed frames and bad requests — pinned as corpus-style `.case`
//!   files under `tests/proto_cases/`, replayed one per fresh connection,
//!   each followed by a ping proving the connection survived;
//! * oversized length prefixes — refused before the body is read, with a
//!   final `bad-request` frame, then the connection closes;
//! * mid-frame disconnects — a client dying mid-send closes its own
//!   connection without wedging the server;
//! * interleaved garbage — the server keeps serving fresh connections
//!   after all of the above;
//! * slow-loris writers — a stalled half-open connection is reaped by
//!   the server's read timeout instead of pinning a thread forever.

// Miri has no socket support; the admission suite and the crate unit tests
// carry the gql-serve miri coverage.
#![cfg(not(miri))]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use gql_serve::json::Value;
use gql_serve::proto::{read_frame, write_frame, MAX_FRAME};
use gql_serve::{
    Catalog, Client, Envelope, ErrorCode, Request, Server, ServerConfig, Service, TenantRegistry,
};

fn test_service() -> Service {
    let mut catalog = Catalog::new();
    catalog
        .register_xml("d", "<r><a/><a/><b><a/></b></r>")
        .expect("dataset parses");
    let mut tenants = TenantRegistry::new();
    tenants.register("t", Envelope::slots(8));
    // A zero requests-per-second quota: deterministically `rate_limited`.
    tenants.register("limited", Envelope::slots(8).with_requests_per_sec(0));
    Service::builder()
        .workers(2)
        .catalog(catalog)
        .tenants(tenants)
        .build()
}

fn test_server() -> (Service, Server) {
    let service = test_service();
    let server = Server::bind("127.0.0.1:0", service.handle()).expect("bind");
    (service, server)
}

fn ping_works(server: &Server) {
    let mut client = Client::connect(server.addr()).expect("fresh connection");
    let pong = client
        .roundtrip(&Value::parse(r#"{"op":"ping"}"#).unwrap())
        .expect("ping roundtrip");
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
}

/// One pinned case: the raw frame payload and the expected outcome.
struct ProtoCase {
    name: String,
    payload: Vec<u8>,
    /// `None` expects a successful (`ok`-ish) response; `Some(code)` expects
    /// a structured error with that code.
    expect: Option<ErrorCode>,
}

fn load_proto_cases() -> Vec<ProtoCase> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/proto_cases");
    let mut cases = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("proto_cases dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable case");
        let mut payload = None;
        let mut expect = None;
        let mut saw_expect = false;
        for line in text.lines() {
            if let Some(p) = line.strip_prefix("payload: ") {
                payload = Some(p.as_bytes().to_vec());
            } else if let Some(code) = line.strip_prefix("expect-code: ") {
                expect = Some(
                    ErrorCode::from_name(code.trim())
                        .unwrap_or_else(|| panic!("{path:?}: unknown code {code}")),
                );
                saw_expect = true;
            } else if line.strip_prefix("expect: ").map(str::trim) == Some("ok") {
                saw_expect = true;
            }
        }
        assert!(saw_expect, "{path:?}: no expectation line");
        cases.push(ProtoCase {
            name: path.file_stem().unwrap().to_string_lossy().into_owned(),
            payload: payload.unwrap_or_else(|| panic!("{path:?}: no payload line")),
            expect,
        });
    }
    assert!(cases.len() >= 10, "pinned protocol corpus went missing");
    cases
}

#[test]
fn pinned_cases_get_structured_responses_and_leave_the_connection_alive() {
    let (service, server) = test_server();
    for case in load_proto_cases() {
        let mut client = Client::connect(server.addr()).expect("connect");
        write_frame(client.stream(), &case.payload).expect("send");
        let frame = read_frame(client.stream())
            .unwrap_or_else(|e| panic!("{}: read failed: {e}", case.name))
            .unwrap_or_else(|| panic!("{}: server closed without replying", case.name));
        let v = Value::parse(std::str::from_utf8(&frame).expect("utf8 reply"))
            .unwrap_or_else(|e| panic!("{}: reply not JSON: {e}", case.name));
        let got_code = v
            .get("code")
            .and_then(Value::as_str)
            .and_then(ErrorCode::from_name);
        match case.expect {
            None => assert_eq!(
                v.get("ok").and_then(Value::as_bool),
                Some(true),
                "{}: expected success, got {}",
                case.name,
                v.render()
            ),
            Some(code) => assert_eq!(
                got_code,
                Some(code),
                "{}: expected {}, got {}",
                case.name,
                code.name(),
                v.render()
            ),
        }
        // Framing stayed intact, so the same connection must still serve.
        let pong = client
            .roundtrip(&Value::parse(r#"{"op":"ping"}"#).unwrap())
            .unwrap_or_else(|e| panic!("{}: connection died after response: {e}", case.name));
        assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
    }
    ping_works(&server);
    server.shutdown();
    service.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    let (service, server) = test_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Promise a body 16 GiB long; a correct server answers from the prefix
    // alone and never tries to read (or allocate) the body.
    let huge: u64 = 16 << 30;
    stream
        .write_all(&((huge.min(u32::MAX as u64)) as u32).to_be_bytes())
        .expect("send prefix");
    stream.flush().unwrap();
    let frame = read_frame(&mut stream)
        .expect("error frame readable")
        .expect("server said why before closing");
    let v = Value::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(
        v.get("code").and_then(Value::as_str),
        Some(ErrorCode::BadRequest.name()),
        "got {}",
        v.render()
    );
    // After an unframeable prefix the connection closes...
    assert_eq!(read_frame(&mut stream).expect("clean close"), None);
    // ...but the server keeps accepting.
    ping_works(&server);
    // Boundary: exactly MAX_FRAME must still be framed (the body here is
    // garbage JSON, which is a *decoded* bad-request, not a framing error).
    let mut client = Client::connect(server.addr()).expect("connect");
    let body = vec![b' '; MAX_FRAME];
    write_frame(client.stream(), &body).expect("send max frame");
    let reply = read_frame(client.stream()).expect("read").expect("reply");
    let v = Value::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(
        v.get("code").and_then(Value::as_str),
        Some(ErrorCode::BadRequest.name())
    );
    server.shutdown();
    service.shutdown();
}

#[test]
fn mid_frame_disconnects_never_wedge_the_server() {
    let (service, server) = test_server();
    // Die at every interesting point of a frame: after a partial prefix,
    // after the full prefix, and mid-body.
    let full = br#"{"op":"query","tenant":"t","dataset":"d","kind":"xpath","query":"//a"}"#;
    let prefix = (full.len() as u32).to_be_bytes();
    let partial_sends: Vec<Vec<u8>> = vec![prefix[..2].to_vec(), prefix.to_vec(), {
        let mut v = prefix.to_vec();
        v.extend_from_slice(&full[..10]);
        v
    }];
    for (i, bytes) in partial_sends.iter().enumerate() {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(bytes).expect("partial send");
        stream.flush().unwrap();
        drop(stream); // hang up mid-frame
                      // The server must shrug this off and serve the next client.
        let start = std::time::Instant::now();
        ping_works(&server);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "server wedged after partial send #{i}"
        );
    }
    // A half-closed socket (shutdown write, keep reading) mid-frame is the
    // classic "client died but TCP lingers" shape.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(&prefix).expect("prefix");
    stream.write_all(&full[..5]).expect("partial body");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink); // whatever the server sends, then EOF
    ping_works(&server);
    server.shutdown();
    service.shutdown();
}

#[test]
fn pipelined_frames_on_one_connection_all_get_answers() {
    let (service, server) = test_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Write three frames back-to-back before reading anything: a good
    // query, garbage, and a ping. Three responses must come back in order.
    let mut burst = Vec::new();
    write_frame(
        &mut burst,
        br#"{"op":"query","tenant":"t","dataset":"d","kind":"xpath","query":"//a"}"#,
    )
    .unwrap();
    write_frame(&mut burst, b"garbage").unwrap();
    write_frame(&mut burst, br#"{"op":"ping"}"#).unwrap();
    stream.write_all(&burst).expect("burst");
    stream.flush().unwrap();
    let mut replies = Vec::new();
    for _ in 0..3 {
        let frame = read_frame(&mut stream).expect("read").expect("reply");
        replies.push(Value::parse(std::str::from_utf8(&frame).unwrap()).unwrap());
    }
    assert_eq!(replies[0].get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        replies[1].get("code").and_then(Value::as_str),
        Some(ErrorCode::BadRequest.name())
    );
    assert_eq!(replies[2].get("pong").and_then(Value::as_bool), Some(true));
    server.shutdown();
    service.shutdown();
}

#[test]
fn pipelined_query_then_metrics_sees_the_query() {
    let (service, server) = test_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // A query and a metrics scrape written back-to-back before reading:
    // frames answer in order, so by the time the metrics frame is served
    // the query's full lifecycle has landed in the telemetry plane.
    let mut burst = Vec::new();
    write_frame(
        &mut burst,
        br#"{"op":"query","tenant":"t","dataset":"d","kind":"xpath","query":"//a"}"#,
    )
    .unwrap();
    write_frame(&mut burst, br#"{"op":"metrics"}"#).unwrap();
    write_frame(&mut burst, br#"{"op":"metrics","view":"report"}"#).unwrap();
    stream.write_all(&burst).expect("burst");
    stream.flush().unwrap();
    let mut replies = Vec::new();
    for _ in 0..3 {
        let frame = read_frame(&mut stream).expect("read").expect("reply");
        replies.push(Value::parse(std::str::from_utf8(&frame).unwrap()).unwrap());
    }
    assert_eq!(replies[0].get("ok").and_then(Value::as_bool), Some(true));
    let counters = replies[1].get("metrics").expect("counters view");
    assert_eq!(
        counters.get("completed").and_then(Value::as_u64),
        Some(1),
        "pipelined metrics must reflect the already-answered query: {}",
        replies[1].render()
    );
    let report = replies[2].get("report").expect("report view");
    assert_eq!(
        report
            .get("latency_all")
            .and_then(|l| l.get("count"))
            .and_then(Value::as_u64),
        Some(1),
        "the latency histogram recorded the reply: {}",
        replies[2].render()
    );
    let events = report
        .get("events")
        .and_then(|e| e.get("appended"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    // One admitted request is a full admit/dequeue/start/reply lifecycle.
    assert!(events >= 4, "expected ≥4 events, got {events}");
    server.shutdown();
    service.shutdown();
}

#[test]
fn slow_loris_connection_is_reaped_cleanly_without_pinning_the_server() {
    let service = test_service();
    let server = Server::bind_with(
        "127.0.0.1:0",
        service.handle(),
        ServerConfig {
            read_timeout: Some(Duration::from_millis(100)),
            write_timeout: Some(Duration::from_millis(100)),
            chaos: false,
        },
    )
    .expect("bind");

    // The loris: open a frame claiming 128 bytes, trickle 3, then stall.
    let mut loris = TcpStream::connect(server.addr()).expect("connect");
    loris.write_all(&128u32.to_be_bytes()).expect("prefix");
    loris.write_all(b"{\"o").expect("trickle");
    loris.flush().unwrap();

    // The server must cut the stalled half-open connection loose: the
    // loris observes EOF/reset well before its own generous timeout.
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let start = std::time::Instant::now();
    let mut sink = [0u8; 16];
    match loris.read(&mut sink) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("reaped connection produced {n} bytes"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "slow-loris was not reaped by the read timeout"
    );
    // Writing into the reaped connection eventually errors (RST) — and
    // regardless, the server keeps serving honest clients promptly.
    ping_works(&server);
    // An idle-but-honest client that completes frames fast is untouched.
    let mut client = Client::connect(server.addr()).expect("connect");
    let pong = client
        .roundtrip(&Value::parse(r#"{"op":"ping"}"#).unwrap())
        .expect("honest roundtrip");
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
    server.shutdown();
    service.shutdown();
}

#[test]
fn reload_over_the_wire_advances_the_epoch_queries_report() {
    let (service, server) = test_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let query =
        Value::parse(r#"{"op":"query","tenant":"t","dataset":"d","kind":"xpath","query":"//a"}"#)
            .unwrap();

    let before = client.roundtrip(&query).expect("query");
    assert_eq!(before.get("epoch").and_then(Value::as_u64), Some(1));

    let reload = client
        .roundtrip(&Value::parse(r#"{"op":"reload","dataset":"d","xml":"<r><a/></r>"}"#).unwrap())
        .expect("reload");
    let detail = reload.get("reload").expect("reload detail");
    assert_eq!(detail.get("dataset").and_then(Value::as_str), Some("d"));
    assert_eq!(detail.get("epoch").and_then(Value::as_u64), Some(2));

    let after = client.roundtrip(&query).expect("query after reload");
    assert_eq!(after.get("epoch").and_then(Value::as_u64), Some(2));
    assert_eq!(
        after.get("result_count").and_then(Value::as_u64),
        Some(1),
        "the reply must serve the reloaded epoch's content: {}",
        after.render()
    );
    server.shutdown();
    service.shutdown();
}

#[test]
fn rate_limited_reply_carries_a_bounded_retry_hint() {
    let (service, server) = test_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let v = client
        .roundtrip(
            &Value::parse(
                r#"{"op":"query","tenant":"limited","dataset":"d","kind":"xpath","query":"//a"}"#,
            )
            .unwrap(),
        )
        .expect("roundtrip");
    assert_eq!(
        v.get("code").and_then(Value::as_str),
        Some(ErrorCode::RateLimited.name()),
        "got {}",
        v.render()
    );
    let hint = v
        .get("retry_after_ms")
        .and_then(Value::as_u64)
        .expect("retry_after_ms present");
    assert!(
        (1..=1000).contains(&hint),
        "retry hint must land inside the next window roll: {hint}"
    );
    server.shutdown();
    service.shutdown();
}

#[test]
fn batch_over_the_wire_reports_per_item_outcomes() {
    let (service, server) = test_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let req = Value::parse(
        r#"{"op":"batch","tenant":"t","items":[
            {"dataset":"d","kind":"xpath","query":"//a"},
            {"dataset":"ghost","kind":"xpath","query":"//a"},
            {"dataset":"d","kind":"xpath","query":"//a"}
        ]}"#,
    )
    .unwrap();
    let v = client.roundtrip(&req).expect("batch roundtrip");
    let items = v.get("batch").and_then(Value::as_arr).expect("batch array");
    assert_eq!(items.len(), 3);
    assert_eq!(items[0].get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        items[1].get("code").and_then(Value::as_str),
        Some(ErrorCode::UnknownDataset.name()),
        "one bad item must not poison its siblings"
    );
    assert_eq!(items[2].get("ok").and_then(Value::as_bool), Some(true));
    // In-process view agrees with the wire view.
    let direct = service
        .handle()
        .submit(&Request::new("t", "d", "xpath", "//a"));
    assert!(direct.is_ok());
    server.shutdown();
    service.shutdown();
}
