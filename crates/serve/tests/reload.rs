//! Hot-reload integration tests: a query storm racing a continuous
//! reloader must never observe a mixed-version catalog.
//!
//! The dataset's content is keyed to its epoch — version `e` carries
//! exactly `e` matching elements — so a reply whose `result_count`
//! disagrees with its `epoch` field is proof of a torn catalog read.
//! After the storm the drain must close the books: every epoch (live and
//! retired) with `admitted == released`, and no retired epoch left
//! draining. The fingerprint tests drive the per-request validation
//! refusal through the test-only corruption hook (no safe code path can
//! corrupt a fingerprint, which is the property the check enforces).

#![cfg(not(miri))]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gql_serve::{Catalog, Envelope, ErrorCode, Request, Response, Service, TenantRegistry};

/// `<r><a/>…</r>` with `n` `<a/>` children: epoch `n`'s content.
fn doc_for_epoch(n: u64) -> String {
    let mut xml = String::from("<r>");
    for _ in 0..n {
        xml.push_str("<a/>");
    }
    xml.push_str("</r>");
    xml
}

fn service_with(dataset_xml: &str, workers: usize, slots: u64) -> Service {
    let mut catalog = Catalog::new();
    catalog
        .register_xml("d", dataset_xml)
        .expect("dataset parses");
    let mut tenants = TenantRegistry::new();
    tenants.register("t", Envelope::slots(slots));
    Service::builder()
        .workers(workers)
        .catalog(catalog)
        .tenants(tenants)
        .build()
}

#[test]
fn storm_under_continuous_reload_never_sees_a_mixed_epoch() {
    const EPOCHS: u64 = 12;
    const STORMERS: usize = 4;
    let service = service_with(&doc_for_epoch(1), 4, STORMERS as u64 * 2);
    let handle = service.handle();
    let stop = AtomicBool::new(false);
    let checked = AtomicU64::new(0);
    let torn = std::sync::Mutex::new(Vec::new());

    std::thread::scope(|s| {
        // The reloader: advance the dataset one epoch at a time, with the
        // epoch number encoded in the content.
        s.spawn(|| {
            for e in 2..=EPOCHS {
                handle
                    .reload_xml("d", &doc_for_epoch(e))
                    .expect("reload succeeds");
                std::thread::sleep(Duration::from_millis(3));
            }
            stop.store(true, Ordering::SeqCst);
        });
        // The storm: every OK reply must be internally consistent —
        // result_count equal to the epoch it claims to have run on.
        for _ in 0..STORMERS {
            s.spawn(|| {
                while !stop.load(Ordering::SeqCst) {
                    let req = Request::new("t", "d", "xpath", "//a");
                    match handle.submit(&req) {
                        Response::Ok(ok) => {
                            checked.fetch_add(1, Ordering::SeqCst);
                            if ok.result_count != ok.epoch || ok.epoch == 0 || ok.epoch > EPOCHS {
                                torn.lock().unwrap().push(format!(
                                    "reply mixed epochs: epoch {} served {} result(s)",
                                    ok.epoch, ok.result_count
                                ));
                            }
                        }
                        Response::Err(e) if e.code == ErrorCode::Overloaded => {}
                        Response::Err(e) => torn.lock().unwrap().push(format!(
                            "storm hit {}: {}",
                            e.code.name(),
                            e.message
                        )),
                    }
                }
            });
        }
    });

    let torn = torn.into_inner().unwrap();
    assert!(torn.is_empty(), "{}", torn.join("\n"));
    assert!(
        checked.load(Ordering::SeqCst) > 0,
        "storm must actually overlap the reloads"
    );

    // Quiescent: the catalog must drain completely...
    let catalog = handle.catalog();
    let deadline = Instant::now() + Duration::from_secs(5);
    while catalog.draining() != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(catalog.draining(), 0, "retired epochs must drain and reap");
    // ...with the permit books balanced on every surviving epoch and the
    // final epoch live.
    let stats = catalog.epoch_stats();
    assert_eq!(stats.len(), 1, "only the live epoch survives the drain");
    assert_eq!(stats[0].epoch, EPOCHS);
    assert_eq!(
        stats[0].admitted, stats[0].released,
        "admitted must equal released once quiescent"
    );
    service.shutdown();
}

#[test]
fn fingerprint_mismatch_is_refused_not_served_and_reload_repairs_it() {
    let mut catalog = Catalog::new();
    let doc = gql_ssdm::xml::parse("<r><a/><a/></r>").expect("parses");
    catalog.register_corrupted_for_tests("d", doc);
    let mut tenants = TenantRegistry::new();
    tenants.register("t", Envelope::slots(4));
    let service = Service::builder()
        .workers(2)
        .catalog(catalog)
        .tenants(tenants)
        .build();
    let handle = service.handle();

    let req = Request::new("t", "d", "xpath", "//a");
    let resp = handle.submit(&req);
    match &resp {
        Response::Err(e) => {
            assert_eq!(e.code, ErrorCode::Engine, "got {resp:?}");
            assert!(
                e.message.contains("fingerprint"),
                "refusal must say why: {}",
                e.message
            );
        }
        ok => panic!("corrupted dataset must be refused, got {ok:?}"),
    }
    let m = handle.metrics();
    assert_eq!(m.refused, 1, "fingerprint refusal counts as refused");
    assert_eq!(m.admitted, 0);

    // A hot reload replaces the corrupted epoch with a verified one; the
    // very next request serves.
    let fresh = handle.reload_xml("d", "<r><a/><a/></r>").expect("reloads");
    assert_eq!(fresh.epoch(), 2);
    assert!(fresh.verify());
    match handle.submit(&req) {
        Response::Ok(ok) => {
            assert_eq!(ok.result_count, 2);
            assert_eq!(ok.epoch, 2);
        }
        err => panic!("repaired dataset must serve, got {err:?}"),
    }
    service.shutdown();
}

#[test]
fn pinned_requests_keep_their_own_fingerprint_across_a_content_change() {
    let service = service_with("<r><x>old</x></r>", 2, 4);
    let handle = service.handle();
    let catalog = handle.catalog();

    let v1 = catalog.get("d").expect("registered");
    let pin = v1.pin();
    let v2 = handle
        .reload_xml("d", "<r><x>new</x><x>new</x></r>")
        .expect("reloads");
    assert_ne!(
        v1.fingerprint(),
        v2.fingerprint(),
        "content change must change the fingerprint"
    );
    assert!(
        v1.verify() && v2.verify(),
        "both epochs stay self-consistent"
    );

    // New submissions resolve the new epoch while the old one drains.
    match handle.submit(&Request::new("t", "d", "xpath", "//x")) {
        Response::Ok(ok) => {
            assert_eq!(ok.epoch, 2);
            assert_eq!(ok.result_count, 2);
        }
        err => panic!("post-reload submit failed: {err:?}"),
    }
    assert_eq!(catalog.draining(), 1, "old epoch waits on its pin");
    drop(pin);
    assert_eq!(catalog.draining(), 0);
    service.shutdown();
}
