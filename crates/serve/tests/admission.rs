//! Admission-control property tests: thread-storms of M tenants × K
//! queries against one service, asserting the envelope invariants that
//! make multi-tenancy safe:
//!
//! * conservation — every submission is admitted, rejected or refused,
//!   exactly once (`admitted + rejected + refused == submitted`, per
//!   tenant and service-wide);
//! * no over-draw — concurrent in-flight work never exceeds a tenant's
//!   slot count, and pooled match-unit reservations never exceed the
//!   pool (checked via the peak high-water marks);
//! * isolation — a tenant storming its exhausted envelope never starves
//!   another tenant's sequential traffic.
//!
//! These extend the `race_smoke` battery in gql-core to the service
//! layer; CI additionally runs this crate's suite under miri.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use gql_guard::Budget;
use gql_serve::{Catalog, Envelope, ErrorCode, Request, Service, TenantRegistry};

/// Miri interprets ~1000× slower; scale the storms down there without
/// changing their shape.
const SCALE: u64 = if cfg!(miri) { 2 } else { 24 };

fn storm_service(tenants: TenantRegistry, workers: usize) -> Service {
    let mut catalog = Catalog::new();
    catalog
        .register_xml("d", "<r><a/><a/><b><a/></b></r>")
        .expect("dataset parses");
    Service::builder()
        .workers(workers)
        .catalog(catalog)
        .tenants(tenants)
        .build()
}

#[test]
fn storm_conserves_submissions_and_never_overdraws() {
    const TENANT_COUNT: usize = 3;
    let per_thread = SCALE;
    let mut tenants = TenantRegistry::new();
    let mut registered = Vec::new();
    for i in 0..TENANT_COUNT {
        registered.push(
            tenants.register(
                &format!("t{i}"),
                // Tight envelopes with a match pool, so both the slot and the
                // pool claim paths race under the storm.
                Envelope::slots(2)
                    .with_per_query(Budget::unlimited().with_max_matches(1_000))
                    .with_pool_matches(2_000),
            ),
        );
    }
    let service = storm_service(tenants, 4);
    let handle = service.handle();
    let ok = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let other = AtomicU64::new(0);
    thread::scope(|s| {
        for t in 0..TENANT_COUNT {
            for _ in 0..3 {
                let handle = handle.clone();
                let (ok, overloaded, other) = (&ok, &overloaded, &other);
                s.spawn(move || {
                    let req = Request::new(&format!("t{t}"), "d", "xpath", "//a");
                    for _ in 0..per_thread {
                        match handle.submit(&req).error_code() {
                            None => ok.fetch_add(1, Ordering::SeqCst),
                            Some(ErrorCode::Overloaded) => {
                                overloaded.fetch_add(1, Ordering::SeqCst)
                            }
                            Some(_) => other.fetch_add(1, Ordering::SeqCst),
                        };
                    }
                });
            }
        }
    });
    let submitted = TENANT_COUNT as u64 * 3 * per_thread;
    assert_eq!(
        other.load(Ordering::SeqCst),
        0,
        "only ok/overloaded allowed"
    );
    assert_eq!(
        ok.load(Ordering::SeqCst) + overloaded.load(Ordering::SeqCst),
        submitted,
        "every submission resolves exactly once"
    );
    let m = handle.metrics();
    assert_eq!(m.submitted, submitted);
    assert_eq!(m.refused, 0, "well-formed requests are never refused");
    assert_eq!(
        m.admitted + m.rejected + m.refused,
        m.submitted,
        "service-wide conservation"
    );
    assert_eq!(m.admitted, m.completed, "all admitted work finished");
    for t in &registered {
        let tm = t.metrics();
        assert_eq!(
            tm.admitted + tm.rejected,
            3 * per_thread,
            "per-tenant conservation"
        );
        assert!(
            tm.peak_in_flight <= t.envelope().max_in_flight,
            "tenant {} exceeded its slots: peak {} > {}",
            t.name(),
            tm.peak_in_flight,
            t.envelope().max_in_flight
        );
        assert!(
            tm.peak_pool_draw <= t.envelope().pool_matches.unwrap(),
            "tenant {} overdrew its match pool: peak {} > {}",
            t.name(),
            tm.peak_pool_draw,
            t.envelope().pool_matches.unwrap()
        );
        assert_eq!(t.in_flight(), 0, "all permits returned");
    }
    service.shutdown();
}

#[test]
fn an_exhausted_tenant_never_starves_another() {
    let mut tenants = TenantRegistry::new();
    tenants.register("hog", Envelope::slots(1));
    tenants.register("modest", Envelope::slots(1));
    let service = storm_service(tenants, 3);
    let handle = service.handle();
    let stop = AtomicU64::new(0);
    thread::scope(|s| {
        // The hog storms its single-slot envelope from 4 threads,
        // guaranteeing a continuous stream of admissions *and* rejections.
        for _ in 0..4 {
            let handle = handle.clone();
            let stop = &stop;
            s.spawn(move || {
                let req = Request::new("hog", "d", "xpath", "//a");
                while stop.load(Ordering::SeqCst) == 0 {
                    let _ = handle.submit(&req);
                }
            });
        }
        // Meanwhile the modest tenant submits strictly sequential queries:
        // with its own envelope untouched by the hog, every single one
        // must be admitted.
        let req = Request::new("modest", "d", "xpath", "//a");
        for i in 0..SCALE {
            let resp = handle.submit(&req);
            assert!(
                resp.is_ok(),
                "modest tenant starved on query {i}: {:?}",
                resp.error_code()
            );
        }
        stop.store(1, Ordering::SeqCst);
    });
    let m = handle.metrics();
    let modest = m
        .tenants
        .iter()
        .find(|(n, _)| n == "modest")
        .map(|(_, tm)| *tm)
        .expect("modest tenant registered");
    assert_eq!(modest.rejected, 0, "sequential traffic is never rejected");
    assert_eq!(modest.admitted, SCALE);
    service.shutdown();
}

#[test]
fn permits_release_on_panic_free_error_paths() {
    let mut tenants = TenantRegistry::new();
    let t = tenants.register("t", Envelope::slots(1));
    let service = storm_service(tenants, 1);
    let handle = service.handle();
    // Engine errors, rejected programs and bad requests must all return
    // the slot; a leak would wedge the tenant after max_in_flight errors.
    let bad_queries = [
        ("xpath", "//["),    // engine parse error
        ("sql", "select 1"), // bad request (never admitted)
        ("xpath", "//a"),    // success
    ];
    for round in 0..3 {
        for (kind, q) in bad_queries {
            let _ = handle.submit(&Request::new("t", "d", kind, q));
            assert_eq!(
                t.in_flight(),
                0,
                "slot leaked after ({kind}, {q}) in round {round}"
            );
        }
    }
    service.shutdown();
}
