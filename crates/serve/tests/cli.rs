//! CLI failure-mode contract: `gql-serve stat` against an unreachable
//! server must fail *fast* with a clear diagnostic and a nonzero exit —
//! never hang, never exit 0 with garbage.

#![cfg(not(miri))]

use std::process::Command;
use std::time::{Duration, Instant};

/// Port 1 is reserved (tcpmux) and nothing in CI listens on it: connects
/// are refused immediately, which is exactly the failure mode under test.
const DEAD_ADDR: &str = "127.0.0.1:1";

#[test]
fn stat_against_unreachable_server_fails_fast_with_a_clear_message() {
    let start = Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_gql-serve"))
        .args(["stat", "--addr", DEAD_ADDR])
        .output()
        .expect("spawn gql-serve");
    let elapsed = start.elapsed();
    assert!(
        !out.status.success(),
        "stat exited 0 against a dead address"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot connect") && stderr.contains(DEAD_ADDR),
        "diagnostic should name the failure and the address, got: {stderr}"
    );
    // "Fast" means no retry loop and no default socket timeout: a refused
    // connect resolves in milliseconds; allow generous CI slack.
    assert!(
        elapsed < Duration::from_secs(10),
        "stat took {elapsed:?} to report a refused connect"
    );
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_gql-serve"))
        .arg("no-such-command")
        .output()
        .expect("spawn gql-serve");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Usage:"), "got: {stderr}");
}
