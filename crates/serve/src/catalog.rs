//! The document catalog: named datasets loaded and indexed once, shared
//! read-only across every connection — now with hot reload.
//!
//! Each [`Dataset`] owns its document behind an `Arc` (documents are
//! immutable and `Sync` — interior caches are `OnceLock`-based) and a
//! dedicated [`Engine`] preloaded against that document, so every query
//! hits the resident index/summary and the dataset's own plan cache. The
//! engine's resident-index validation is address-based, which is why the
//! document is arena-pinned behind the `Arc` *before* preloading: the
//! address the engine captured stays valid for the dataset's lifetime.
//!
//! A content fingerprint taken at registration is re-checked on every
//! snapshot ([`Dataset::verify`]) — a dataset whose document no longer
//! matches what was indexed (impossible through safe code, but cheap to
//! prove per request) is refused rather than served stale.
//!
//! # Epochs and hot reload
//!
//! Every dataset carries an **epoch**: a per-name version number starting
//! at 1 and incremented by [`Catalog::reload`]. A reload builds the new
//! dataset (parse, index, preload) entirely off to the side, then swaps
//! the `Arc` into the map atomically under a short write lock — readers
//! either see the old epoch or the new one, never a mix. In-flight
//! requests keep serving from the `Arc<Dataset>` they resolved at
//! admission; they were *pinned* to that epoch via [`Dataset::pin`],
//! which bumps a per-epoch `admitted` counter whose matching `released`
//! increment fires when the [`EpochPin`] drops. A replaced dataset moves
//! to a retired list and is reaped ([`Catalog::reap_retired`]) only when
//! `admitted == released` — the graceful drain: the old epoch's index
//! stays alive exactly as long as its last in-flight permit.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use gql_core::Engine;
use gql_ssdm::{shallow_fingerprint, Document};

/// Per-epoch permit accounting: how many requests admitted against this
/// epoch, how many have released. The epoch is drained when they match.
#[derive(Debug, Default)]
struct EpochPermits {
    admitted: AtomicU64,
    released: AtomicU64,
}

/// RAII pin on one dataset epoch: created at admission, released on
/// drop. While any pin is live the epoch's dataset is never reaped.
#[derive(Debug)]
pub struct EpochPin {
    permits: Arc<EpochPermits>,
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.permits.released.fetch_add(1, Ordering::AcqRel);
    }
}

/// One named, preloaded dataset at one catalog epoch.
#[derive(Debug)]
pub struct Dataset {
    name: String,
    doc: Arc<Document>,
    engine: Arc<Engine>,
    fingerprint: u64,
    epoch: u64,
    permits: Arc<EpochPermits>,
}

impl Dataset {
    fn new(name: &str, doc: Document, epoch: u64) -> Dataset {
        let doc = Arc::new(doc);
        let mut engine = Engine::new();
        // Preload against the Arc'd allocation so the address the resident
        // index validates against is the one queries will present.
        engine.preload(&doc);
        Dataset {
            name: name.to_string(),
            fingerprint: shallow_fingerprint(&doc),
            doc,
            engine: Arc::new(engine),
            epoch,
            permits: Arc::new(EpochPermits::default()),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn doc(&self) -> &Arc<Document> {
        &self.doc
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Registration-time content fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The catalog epoch this dataset was registered at (1-based,
    /// bumped by every [`Catalog::reload`] of the same name).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-validate the content fingerprint taken at registration.
    pub fn verify(&self) -> bool {
        shallow_fingerprint(&self.doc) == self.fingerprint
    }

    /// Pin an in-flight request to this epoch. The pin must be held for
    /// the request's whole execution: the drain in
    /// [`Catalog::reap_retired`] waits for every pin to release.
    pub fn pin(&self) -> EpochPin {
        self.permits.admitted.fetch_add(1, Ordering::AcqRel);
        EpochPin {
            permits: Arc::clone(&self.permits),
        }
    }

    /// Permits admitted against this epoch so far.
    pub fn permits_admitted(&self) -> u64 {
        self.permits.admitted.load(Ordering::Acquire)
    }

    /// Permits released back so far (`<= permits_admitted`).
    pub fn permits_released(&self) -> u64 {
        self.permits.released.load(Ordering::Acquire)
    }

    /// True once every admitted permit has released.
    pub fn drained(&self) -> bool {
        // Read released first: a racing pin can only make this check
        // conservatively false, never falsely true.
        let released = self.permits_released();
        released == self.permits_admitted()
    }
}

/// Drain-state snapshot of one live or retired dataset epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochStats {
    pub name: String,
    pub epoch: u64,
    pub admitted: u64,
    pub released: u64,
    /// True for replaced epochs still waiting on their last permit.
    pub retired: bool,
}

/// Map of dataset name → [`Dataset`], hot-reloadable.
///
/// Lookups take a short read lock on the name map and clone out the
/// `Arc<Dataset>`; everything per-request after that is lock-free.
/// [`reload`](Catalog::reload) builds the replacement off-line and
/// swaps it in atomically, parking the old epoch on a retired list
/// until it drains.
#[derive(Debug, Default)]
pub struct Catalog {
    datasets: RwLock<BTreeMap<String, Arc<Dataset>>>,
    retired: Mutex<Vec<Arc<Dataset>>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a document under `name`, building its index/summary and
    /// plan cache eagerly. Re-registering a name replaces the dataset
    /// (epoch 1 again — use [`reload`](Catalog::reload) for versioned
    /// replacement with drain).
    pub fn register(&mut self, name: &str, doc: Document) -> Arc<Dataset> {
        let ds = Arc::new(Dataset::new(name, doc, 1));
        self.datasets
            .write()
            .expect("catalog lock")
            .insert(name.to_string(), Arc::clone(&ds));
        ds
    }

    /// Parse and register XML source under `name`.
    pub fn register_xml(&mut self, name: &str, xml: &str) -> Result<Arc<Dataset>, String> {
        let doc = gql_ssdm::xml::parse(xml).map_err(|e| format!("dataset `{name}`: {e}"))?;
        Ok(self.register(name, doc))
    }

    /// Test-only: register `doc` under `name` with a deliberately wrong
    /// fingerprint. No safe code path can produce this state — which is
    /// exactly why the per-request [`Dataset::verify`] refusal needs a
    /// hook to be reachable in tests at all.
    #[doc(hidden)]
    pub fn register_corrupted_for_tests(&mut self, name: &str, doc: Document) -> Arc<Dataset> {
        let mut ds = Dataset::new(name, doc, 1);
        ds.fingerprint ^= 0xdead_beef;
        let ds = Arc::new(ds);
        self.datasets
            .write()
            .expect("catalog lock")
            .insert(name.to_string(), Arc::clone(&ds));
        ds
    }

    /// Hot-swap `name` to a freshly indexed copy of `doc` at the next
    /// epoch. The whole build (parse upstream, index, preload) happens
    /// before the write lock is taken, so readers block only for the
    /// map swap itself. Fails if `name` was never registered: reload
    /// versions an existing dataset, it does not create one.
    ///
    /// The replaced epoch is parked on the retired list and dropped by
    /// [`reap_retired`](Catalog::reap_retired) once its last in-flight
    /// pin releases; requests already admitted keep their `Arc` and
    /// finish against the epoch they started on.
    pub fn reload(&self, name: &str, doc: Document) -> Result<Arc<Dataset>, String> {
        let next_epoch = {
            let map = self.datasets.read().expect("catalog lock");
            match map.get(name) {
                Some(old) => old.epoch() + 1,
                None => {
                    return Err(format!(
                        "unknown dataset `{name}`: reload needs an existing registration"
                    ))
                }
            }
        };
        let ds = Arc::new(Dataset::new(name, doc, next_epoch));
        let old = {
            let mut map = self.datasets.write().expect("catalog lock");
            map.insert(name.to_string(), Arc::clone(&ds))
        };
        if let Some(old) = old {
            self.retired.lock().expect("retired lock").push(old);
        }
        // Opportunistic drain: reloads are rare, so piggyback the sweep.
        self.reap_retired();
        Ok(ds)
    }

    /// Parse and hot-swap XML source for an existing `name`.
    pub fn reload_xml(&self, name: &str, xml: &str) -> Result<Arc<Dataset>, String> {
        let doc = gql_ssdm::xml::parse(xml).map_err(|e| format!("dataset `{name}`: {e}"))?;
        self.reload(name, doc)
    }

    /// Drop every retired epoch whose permits have fully released.
    /// Returns the number of retired epochs still draining.
    pub fn reap_retired(&self) -> usize {
        let mut retired = self.retired.lock().expect("retired lock");
        retired.retain(|d| !d.drained());
        retired.len()
    }

    /// Retired epochs still waiting on in-flight permits.
    pub fn draining(&self) -> usize {
        self.reap_retired()
    }

    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets
            .read()
            .expect("catalog lock")
            .get(name)
            .cloned()
    }

    pub fn len(&self) -> usize {
        self.datasets.read().expect("catalog lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dataset names in deterministic (sorted) order.
    pub fn names(&self) -> Vec<String> {
        self.datasets
            .read()
            .expect("catalog lock")
            .keys()
            .cloned()
            .collect()
    }

    /// The live datasets in name order, cloned out so no lock is held.
    pub fn snapshot(&self) -> Vec<Arc<Dataset>> {
        self.datasets
            .read()
            .expect("catalog lock")
            .values()
            .cloned()
            .collect()
    }

    /// Drain-state of every live and still-retired epoch: live first in
    /// name order, then retired in replacement order.
    pub fn epoch_stats(&self) -> Vec<EpochStats> {
        let stats = |d: &Arc<Dataset>, retired: bool| EpochStats {
            name: d.name().to_string(),
            epoch: d.epoch(),
            admitted: d.permits_admitted(),
            released: d.permits_released(),
            retired,
        };
        let mut out: Vec<EpochStats> = self.snapshot().iter().map(|d| stats(d, false)).collect();
        out.extend(
            self.retired
                .lock()
                .expect("retired lock")
                .iter()
                .map(|d| stats(d, true)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_core::QueryKind;

    #[test]
    fn registered_dataset_serves_from_resident_index() {
        let mut cat = Catalog::new();
        let ds = cat
            .register_xml("bib", "<bib><book><title>t</title></book></bib>")
            .expect("parses");
        assert!(ds.verify());
        assert_eq!(ds.epoch(), 1);
        assert_eq!(cat.names(), ["bib"]);
        // A profiled run against the dataset's own doc must hit the
        // preloaded resident index.
        let out = ds
            .engine()
            .run_profiled(&QueryKind::XPath("//title".into()), ds.doc())
            .expect("query runs");
        let profile = out.profile.expect("profiled");
        assert_eq!(
            profile.find("index").and_then(|n| n.note("cache")),
            Some("hit"),
            "catalog datasets must serve warm"
        );
    }

    #[test]
    fn unknown_names_and_bad_xml_are_refused() {
        let mut cat = Catalog::new();
        assert!(cat.get("nope").is_none());
        assert!(cat.register_xml("bad", "<unclosed").is_err());
        assert!(cat.is_empty());
        assert!(
            cat.reload_xml("nope", "<r/>").is_err(),
            "reload must not create datasets"
        );
    }

    #[test]
    fn reload_advances_the_epoch_and_drains_the_old_one() {
        let mut cat = Catalog::new();
        let v1 = cat.register_xml("d", "<r><a/></r>").expect("parses");
        assert_eq!(v1.epoch(), 1);

        // Pin v1 as an in-flight request would, then reload under it.
        let pin = v1.pin();
        let v2 = cat.reload_xml("d", "<r><a/><a/></r>").expect("reloads");
        assert_eq!(v2.epoch(), 2);
        assert_ne!(v1.fingerprint(), v2.fingerprint());
        assert_eq!(
            cat.get("d").expect("live").epoch(),
            2,
            "lookups see the new epoch immediately"
        );

        // The old epoch is retired but not reaped while pinned...
        assert_eq!(cat.draining(), 1);
        assert!(!v1.drained());
        let stats = cat.epoch_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats
            .iter()
            .any(|s| s.retired && s.epoch == 1 && s.admitted == 1 && s.released == 0));

        // ...and reaped exactly when the last permit releases.
        drop(pin);
        assert!(v1.drained());
        assert_eq!(cat.draining(), 0);
        assert_eq!(v1.permits_admitted(), v1.permits_released());

        // Bad replacement XML leaves the live epoch untouched.
        assert!(cat.reload_xml("d", "<broken").is_err());
        assert_eq!(cat.get("d").expect("live").epoch(), 2);
    }

    #[test]
    fn both_epochs_serve_their_own_bytes_during_drain() {
        let mut cat = Catalog::new();
        cat.register_xml("d", "<r><x>old</x></r>").expect("parses");
        let v1 = cat.get("d").expect("live");
        let _pin = v1.pin();
        let v2 = cat
            .reload_xml("d", "<r><x>new</x><x>new</x></r>")
            .expect("reloads");

        let run = |ds: &Arc<Dataset>| {
            ds.engine()
                .run(&QueryKind::XPath("//x".into()), ds.doc())
                .expect("runs")
                .result_count
        };
        assert_eq!(run(&v1), 1, "pinned epoch keeps serving its own doc");
        assert_eq!(run(&v2), 2, "new epoch serves the reloaded doc");
        assert!(v1.verify() && v2.verify());
    }
}
