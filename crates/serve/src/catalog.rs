//! The document catalog: named datasets loaded and indexed once, shared
//! read-only across every connection.
//!
//! Each [`Dataset`] owns its document behind an `Arc` (documents are
//! immutable and `Sync` — interior caches are `OnceLock`-based) and a
//! dedicated [`Engine`] preloaded against that document, so every query
//! hits the resident index/summary and the dataset's own plan cache. The
//! engine's resident-index validation is address-based, which is why the
//! document is arena-pinned behind the `Arc` *before* preloading: the
//! address the engine captured stays valid for the dataset's lifetime.
//!
//! A content fingerprint taken at registration is re-checked on every
//! snapshot ([`Dataset::verify`]) — a dataset whose document no longer
//! matches what was indexed (impossible through safe code, but cheap to
//! prove per request) is refused rather than served stale.

use std::collections::BTreeMap;
use std::sync::Arc;

use gql_core::Engine;
use gql_ssdm::{shallow_fingerprint, Document};

/// One named, preloaded dataset.
#[derive(Debug)]
pub struct Dataset {
    name: String,
    doc: Arc<Document>,
    engine: Arc<Engine>,
    fingerprint: u64,
}

impl Dataset {
    fn new(name: &str, doc: Document) -> Dataset {
        let doc = Arc::new(doc);
        let mut engine = Engine::new();
        // Preload against the Arc'd allocation so the address the resident
        // index validates against is the one queries will present.
        engine.preload(&doc);
        Dataset {
            name: name.to_string(),
            fingerprint: shallow_fingerprint(&doc),
            doc,
            engine: Arc::new(engine),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn doc(&self) -> &Arc<Document> {
        &self.doc
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Registration-time content fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Re-validate the content fingerprint taken at registration.
    pub fn verify(&self) -> bool {
        shallow_fingerprint(&self.doc) == self.fingerprint
    }
}

/// Immutable-after-build map of dataset name → [`Dataset`].
///
/// Built once at service start, then shared via `Arc<Catalog>`; the
/// service never mutates it, so lookups are lock-free.
#[derive(Debug, Default)]
pub struct Catalog {
    datasets: BTreeMap<String, Arc<Dataset>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a document under `name`, building its index/summary and
    /// plan cache eagerly. Re-registering a name replaces the dataset.
    pub fn register(&mut self, name: &str, doc: Document) -> Arc<Dataset> {
        let ds = Arc::new(Dataset::new(name, doc));
        self.datasets.insert(name.to_string(), Arc::clone(&ds));
        ds
    }

    /// Parse and register XML source under `name`.
    pub fn register_xml(&mut self, name: &str, xml: &str) -> Result<Arc<Dataset>, String> {
        let doc = gql_ssdm::xml::parse(xml).map_err(|e| format!("dataset `{name}`: {e}"))?;
        Ok(self.register(name, doc))
    }

    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets.get(name).cloned()
    }

    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Dataset names in deterministic (sorted) order.
    pub fn names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Iterate datasets in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Dataset>> {
        self.datasets.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_core::QueryKind;

    #[test]
    fn registered_dataset_serves_from_resident_index() {
        let mut cat = Catalog::new();
        let ds = cat
            .register_xml("bib", "<bib><book><title>t</title></book></bib>")
            .expect("parses");
        assert!(ds.verify());
        assert_eq!(cat.names(), ["bib"]);
        // A profiled run against the dataset's own doc must hit the
        // preloaded resident index.
        let out = ds
            .engine()
            .run_profiled(&QueryKind::XPath("//title".into()), ds.doc())
            .expect("query runs");
        let profile = out.profile.expect("profiled");
        assert_eq!(
            profile.find("index").and_then(|n| n.note("cache")),
            Some("hit"),
            "catalog datasets must serve warm"
        );
    }

    #[test]
    fn unknown_names_and_bad_xml_are_refused() {
        let mut cat = Catalog::new();
        assert!(cat.get("nope").is_none());
        assert!(cat.register_xml("bad", "<unclosed").is_err());
        assert!(cat.is_empty());
    }
}
