//! The service telemetry plane.
//!
//! Assembles the `gql-metrics` primitives into the service's observability
//! surface: per-`(tenant, dataset, surface, outcome)` latency histograms
//! recorded at the worker's reply site, per-tenant rolling rate windows
//! (1 s / 10 s / 60 s), a bounded request-event ring keyed by the
//! service-assigned `RequestId`, and a slow-query log capturing the plan,
//! phase timings and trip report of any job whose service time exceeds the
//! configured threshold.
//!
//! Two invariants the rest of the PR leans on:
//!
//! * **Telemetry never perturbs answers.** Every hook is fire-and-forget
//!   on lock-free structures (the only mutexes guard the keyed-histogram
//!   lookup and the slow log, which is off the fast path by definition).
//!   The concurrency differential oracle runs with telemetry fully enabled
//!   and holds responses byte-identical to a fresh engine.
//! * **Disabled means gone.** With `enabled == false` every hook returns
//!   after one branch; `benches/metrics.rs` pins the derived overhead of
//!   those dormant probes below 2% of request time. [`Telemetry::probes`]
//!   counts hook firings so the bench can multiply them out.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gql_metrics::{
    Clock, Event, EventKind, EventRing, EventRingStats, HistoSnapshot, KeyedHistos, MonotonicClock,
    SlowEntry, SlowLog, WindowSnapshot, Windows,
};

use crate::json::Value;
use crate::service::ServiceMetrics;

/// Window lanes, service-wide and per tenant.
pub const LANE_SUBMITTED: usize = 0;
pub const LANE_ADMITTED: usize = 1;
pub const LANE_REJECTED: usize = 2;
pub const LANE_CANCELLED: usize = 3;
const LANES: usize = 4;
const LANE_NAMES: [&str; LANES] = ["submitted", "admitted", "rejected", "cancelled"];

/// Histogram key: `(tenant, dataset, surface, outcome)`.
pub type HistoKey = (String, String, String, String);

/// How the telemetry plane is wired at service build time.
#[derive(Clone)]
pub struct TelemetryConfig {
    pub enabled: bool,
    /// Service times strictly above this capture into the slow-query log.
    pub slow_threshold_us: u64,
    /// Slow-log entries retained per dataset.
    pub slow_capacity: usize,
    /// Request-event ring capacity.
    pub event_capacity: usize,
    /// Time source; `None` uses a [`MonotonicClock`]. Tests inject a
    /// `ManualClock` here to drive the rate windows deterministically.
    pub clock: Option<Arc<dyn Clock>>,
}

impl std::fmt::Debug for TelemetryConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryConfig")
            .field("enabled", &self.enabled)
            .field("slow_threshold_us", &self.slow_threshold_us)
            .field("slow_capacity", &self.slow_capacity)
            .field("event_capacity", &self.event_capacity)
            .finish_non_exhaustive()
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            slow_threshold_us: 100_000,
            slow_capacity: 8,
            event_capacity: 1024,
            clock: None,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry off: every hook is a single dormant branch.
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        }
    }

    pub fn with_slow_threshold_us(mut self, us: u64) -> TelemetryConfig {
        self.slow_threshold_us = us;
        self
    }

    pub fn with_slow_capacity(mut self, n: usize) -> TelemetryConfig {
        self.slow_capacity = n;
        self
    }

    pub fn with_event_capacity(mut self, n: usize) -> TelemetryConfig {
        self.event_capacity = n;
        self
    }

    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> TelemetryConfig {
        self.clock = Some(clock);
        self
    }
}

/// Request-scoped context threaded from admission to the reply site.
#[derive(Debug, Clone)]
pub struct RequestMeta {
    pub request_id: u64,
    pub tenant: String,
    pub surface: &'static str,
    /// Clock reading at admission, microseconds.
    pub submitted_us: u64,
    /// Query source text, kept for slow-log capture.
    pub query: String,
}

/// Numeric outcome tags stored in event `code` fields.
fn outcome_code(outcome: &str) -> u32 {
    match outcome {
        "ok" => 0,
        "rejected" => 1,
        "budget" => 2,
        "cancelled" => 3,
        _ => 4, // engine
    }
}

/// The assembled telemetry plane, shared by every handle of one service.
pub struct Telemetry {
    enabled: bool,
    clock: Arc<dyn Clock>,
    next_request_id: AtomicU64,
    /// Hook firings while enabled (the overhead bench multiplies these
    /// against the measured dormant-probe cost).
    probes: AtomicU64,
    histos: KeyedHistos<HistoKey>,
    service_windows: Windows,
    /// Prebuilt at service build — the tenant registry is immutable.
    tenant_windows: BTreeMap<String, Windows>,
    events: EventRing,
    slow: SlowLog,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("probes", &self.probes.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Assemble the plane for a fixed tenant set.
    pub fn build(config: &TelemetryConfig, tenant_names: &[String]) -> Telemetry {
        let clock: Arc<dyn Clock> = config
            .clock
            .clone()
            .unwrap_or_else(|| Arc::new(MonotonicClock::new()));
        Telemetry {
            enabled: config.enabled,
            next_request_id: AtomicU64::new(1),
            probes: AtomicU64::new(0),
            histos: KeyedHistos::new(),
            service_windows: Windows::new(LANES, Arc::clone(&clock)),
            tenant_windows: tenant_names
                .iter()
                .map(|n| (n.clone(), Windows::new(LANES, Arc::clone(&clock))))
                .collect(),
            events: EventRing::new(config.event_capacity),
            slow: SlowLog::new(config.slow_threshold_us, config.slow_capacity),
            clock,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Hook firings so far (0 when disabled — that is the point).
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    fn lane(&self, tenant: Option<&str>, lane: usize) {
        self.service_windows.record(lane);
        if let Some(w) = tenant.and_then(|t| self.tenant_windows.get(t)) {
            w.record(lane);
        }
    }

    /// A request entered `submit` (tenant `None` until resolution).
    ///
    /// Public (unlike the other hooks) so the overhead bench can time the
    /// disabled-probe cost — the single `enabled` branch every hook pays —
    /// through the same call the service's hot path makes.
    pub fn on_submitted(&self, tenant: Option<&str>) {
        if !self.enabled {
            return;
        }
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.lane(tenant, LANE_SUBMITTED);
    }

    /// Admission control bounced the request.
    pub(crate) fn on_rejected(&self, tenant: &str) {
        if !self.enabled {
            return;
        }
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.lane(Some(tenant), LANE_REJECTED);
    }

    /// Admission granted: mint the request id and its reply-site context.
    pub(crate) fn on_admitted(
        &self,
        tenant: &str,
        surface: &'static str,
        query: &str,
    ) -> Option<RequestMeta> {
        if !self.enabled {
            return None;
        }
        self.probes.fetch_add(1, Ordering::Relaxed);
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_micros();
        self.lane(Some(tenant), LANE_ADMITTED);
        self.events.record(Event {
            request_id,
            kind: EventKind::Admit,
            t_micros: now,
            code: 0,
        });
        Some(RequestMeta {
            request_id,
            tenant: tenant.to_string(),
            surface,
            submitted_us: now,
            query: query.to_string(),
        })
    }

    /// A pool worker pulled the job off the queue.
    pub(crate) fn on_dequeue(&self, meta: Option<&RequestMeta>) {
        let Some(meta) = meta else { return };
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.events.record(Event {
            request_id: meta.request_id,
            kind: EventKind::Dequeue,
            t_micros: self.clock.now_micros(),
            code: 0,
        });
    }

    /// The engine run began.
    pub(crate) fn on_start(&self, meta: Option<&RequestMeta>) {
        let Some(meta) = meta else { return };
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.events.record(Event {
            request_id: meta.request_id,
            kind: EventKind::Start,
            t_micros: self.clock.now_micros(),
            code: 0,
        });
    }

    /// The reply site: one histogram record per admitted job, plus the
    /// trip/reply events, the cancelled-rate lane, and slow-query capture.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_reply(
        &self,
        meta: Option<&RequestMeta>,
        dataset: &str,
        outcome: &str,
        eval_us: u64,
        plan: &str,
        phases: &[(String, u64)],
        trip: Option<&str>,
    ) {
        let Some(meta) = meta else { return };
        self.probes.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now_micros();
        let service_us = now.saturating_sub(meta.submitted_us);
        self.histos.record(
            &(
                meta.tenant.clone(),
                dataset.to_string(),
                meta.surface.to_string(),
                outcome.to_string(),
            ),
            service_us,
        );
        if outcome == "cancelled" {
            self.lane(Some(&meta.tenant), LANE_CANCELLED);
        }
        if trip.is_some() {
            self.events.record(Event {
                request_id: meta.request_id,
                kind: EventKind::Trip,
                t_micros: now,
                code: outcome_code(outcome),
            });
        }
        self.events.record(Event {
            request_id: meta.request_id,
            kind: EventKind::Reply,
            t_micros: now,
            code: outcome_code(outcome),
        });
        if self.slow.qualifies(service_us) {
            self.slow.capture(SlowEntry {
                request_id: meta.request_id,
                tenant: meta.tenant.clone(),
                dataset: dataset.to_string(),
                surface: meta.surface.to_string(),
                query: meta.query.clone(),
                outcome: outcome.to_string(),
                service_us,
                eval_us,
                plan: plan.to_string(),
                phases: phases.to_vec(),
                trip: trip.map(str::to_string),
            });
        }
    }

    /// Merge of every keyed latency histogram.
    pub fn latency_all(&self) -> HistoSnapshot {
        self.histos.merged()
    }

    /// Retained slow-log entries for one dataset, oldest first.
    pub fn slow_entries_for(&self, dataset: &str) -> Vec<SlowEntry> {
        self.slow.entries_for(dataset)
    }

    /// Event-ring accounting (`retained + dropped == appended`).
    pub fn event_stats(&self) -> EventRingStats {
        self.events.snapshot().1
    }

    /// Assemble the full report against a counter snapshot.
    pub fn report(&self, service: ServiceMetrics) -> MetricsReport {
        let (events, event_stats) = self.events.snapshot();
        MetricsReport {
            enabled: self.enabled,
            service,
            latency: self.histos.snapshots(),
            latency_all: self.histos.merged(),
            service_windows: self.service_windows.snapshot(),
            tenant_windows: self
                .tenant_windows
                .iter()
                .map(|(n, w)| (n.clone(), w.snapshot()))
                .collect(),
            events,
            event_stats,
            slow: self.slow.entries(),
            slow_captured: self.slow.captured(),
            slow_threshold_us: self.slow.threshold_us(),
        }
    }
}

/// One full point-in-time telemetry report: counters, latency histograms,
/// rate windows, recent events and the slow-query log.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    pub enabled: bool,
    pub service: ServiceMetrics,
    pub latency: Vec<(HistoKey, HistoSnapshot)>,
    pub latency_all: HistoSnapshot,
    pub service_windows: WindowSnapshot,
    pub tenant_windows: Vec<(String, WindowSnapshot)>,
    pub events: Vec<Event>,
    pub event_stats: EventRingStats,
    pub slow: Vec<(String, Vec<SlowEntry>)>,
    pub slow_captured: u64,
    pub slow_threshold_us: u64,
}

fn windows_value(s: &WindowSnapshot) -> Value {
    let lanes = |v: &Vec<u64>| {
        Value::Obj(
            LANE_NAMES
                .iter()
                .zip(v)
                .map(|(n, c)| ((*n).to_string(), Value::count(*c)))
                .collect(),
        )
    };
    Value::Obj(vec![
        ("1s".into(), lanes(&s.s1)),
        ("10s".into(), lanes(&s.s10)),
        ("60s".into(), lanes(&s.s60)),
    ])
}

fn histo_value(s: &HistoSnapshot) -> Value {
    Value::Obj(vec![
        ("count".into(), Value::count(s.count)),
        ("sum_us".into(), Value::count(s.sum)),
        ("p50_us".into(), Value::count(s.p50())),
        ("p95_us".into(), Value::count(s.p95())),
        ("p99_us".into(), Value::count(s.p99())),
    ])
}

fn slow_entry_value(e: &SlowEntry) -> Value {
    let mut pairs = vec![
        ("request_id".into(), Value::count(e.request_id)),
        ("tenant".into(), Value::str(e.tenant.clone())),
        ("dataset".into(), Value::str(e.dataset.clone())),
        ("surface".into(), Value::str(e.surface.clone())),
        ("query".into(), Value::str(e.query.clone())),
        ("outcome".into(), Value::str(e.outcome.clone())),
        ("service_us".into(), Value::count(e.service_us)),
        ("eval_us".into(), Value::count(e.eval_us)),
        ("plan".into(), Value::str(e.plan.clone())),
        (
            "phases".into(),
            Value::Arr(
                e.phases
                    .iter()
                    .map(|(name, us)| {
                        Value::Obj(vec![
                            ("phase".into(), Value::str(name.clone())),
                            ("us".into(), Value::count(*us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(t) = &e.trip {
        pairs.push(("trip".into(), Value::str(t.clone())));
    }
    Value::Obj(pairs)
}

impl MetricsReport {
    /// Structured JSON for the `metrics` wire op's `report` view.
    pub fn to_value(&self) -> Value {
        let latency = self
            .latency
            .iter()
            .map(|((tenant, dataset, surface, outcome), s)| {
                let mut pairs = vec![
                    ("tenant".into(), Value::str(tenant.clone())),
                    ("dataset".into(), Value::str(dataset.clone())),
                    ("surface".into(), Value::str(surface.clone())),
                    ("outcome".into(), Value::str(outcome.clone())),
                ];
                if let Value::Obj(h) = histo_value(s) {
                    pairs.extend(h);
                }
                Value::Obj(pairs)
            })
            .collect();
        let events = self
            .events
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("request_id".into(), Value::count(e.request_id)),
                    ("kind".into(), Value::str(e.kind.name())),
                    ("t_us".into(), Value::count(e.t_micros)),
                    ("code".into(), Value::count(u64::from(e.code))),
                ])
            })
            .collect();
        let slow = self
            .slow
            .iter()
            .map(|(dataset, entries)| {
                Value::Obj(vec![
                    ("name".into(), Value::str(dataset.clone())),
                    (
                        "entries".into(),
                        Value::Arr(entries.iter().map(slow_entry_value).collect()),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("enabled".into(), Value::Bool(self.enabled)),
            ("counters".into(), self.service.to_value()),
            ("latency".into(), Value::Arr(latency)),
            ("latency_all".into(), histo_value(&self.latency_all)),
            (
                "windows".into(),
                Value::Obj(vec![
                    ("service".into(), windows_value(&self.service_windows)),
                    (
                        "tenants".into(),
                        Value::Arr(
                            self.tenant_windows
                                .iter()
                                .map(|(n, s)| {
                                    Value::Obj(vec![
                                        ("name".into(), Value::str(n.clone())),
                                        ("windows".into(), windows_value(s)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "events".into(),
                Value::Obj(vec![
                    ("appended".into(), Value::count(self.event_stats.appended)),
                    ("retained".into(), Value::count(self.event_stats.retained)),
                    ("dropped".into(), Value::count(self.event_stats.dropped)),
                    (
                        "lost_races".into(),
                        Value::count(self.event_stats.lost_races),
                    ),
                    ("recent".into(), Value::Arr(events)),
                ]),
            ),
            (
                "slow".into(),
                Value::Obj(vec![
                    ("captured".into(), Value::count(self.slow_captured)),
                    ("threshold_us".into(), Value::count(self.slow_threshold_us)),
                    ("datasets".into(), Value::Arr(slow)),
                ]),
            ),
        ])
    }

    /// The `gql-serve-stat` printout: the report as a terminal-sized,
    /// human-ordered summary.
    pub fn to_text(&self) -> String {
        let m = &self.service;
        let mut out = String::new();
        out.push_str(&format!(
            "gql-serve metrics (telemetry {})\n",
            if self.enabled { "enabled" } else { "disabled" }
        ));
        out.push_str(&format!(
            "  requests  submitted={} admitted={} rejected={} refused={}\n",
            m.submitted, m.admitted, m.rejected, m.refused
        ));
        out.push_str(&format!(
            "  outcomes  completed={} cancelled={} budget_tripped={} failed={}\n",
            m.completed, m.cancelled, m.budget_tripped, m.failed
        ));
        out.push_str(&format!(
            "  caches    plan warm={} cold={} replan={} | index warm={} cold={}\n",
            m.plan_warm, m.plan_cold, m.plan_replans, m.index_warm, m.index_cold
        ));
        let w = &self.service_windows;
        for (i, lane) in LANE_NAMES.iter().enumerate() {
            out.push_str(&format!(
                "  rate      {lane:<9} 1s={} 10s={} 60s={}\n",
                w.s1[i], w.s10[i], w.s60[i]
            ));
        }
        let all = &self.latency_all;
        out.push_str(&format!(
            "  latency   n={} p50={}us p95={}us p99={}us mean={:.0}us\n",
            all.count,
            all.p50(),
            all.p95(),
            all.p99(),
            all.mean()
        ));
        for ((tenant, dataset, surface, outcome), s) in &self.latency {
            out.push_str(&format!(
                "    {tenant}/{dataset} {surface} {outcome}: n={} p50={}us p95={}us p99={}us\n",
                s.count,
                s.p50(),
                s.p95(),
                s.p99()
            ));
        }
        for (name, m) in &m.tenants {
            out.push_str(&format!(
                "  tenant    {name}: submitted={} admitted={} rejected={} refused={} peak_in_flight={}\n",
                m.submitted, m.admitted, m.rejected, m.refused, m.peak_in_flight
            ));
        }
        let e = &self.event_stats;
        out.push_str(&format!(
            "  events    appended={} retained={} dropped={}\n",
            e.appended, e.retained, e.dropped
        ));
        out.push_str(&format!(
            "  slow      captured={} (threshold {}us)\n",
            self.slow_captured, self.slow_threshold_us
        ));
        for (dataset, entries) in &self.slow {
            for entry in entries {
                out.push_str(&format!(
                    "    #{} {dataset} {} {}us plan={}{}\n",
                    entry.request_id,
                    entry.outcome,
                    entry.service_us,
                    entry.plan,
                    entry
                        .trip
                        .as_deref()
                        .map(|t| format!(" trip[{t}]"))
                        .unwrap_or_default()
                ));
            }
        }
        out
    }

    /// Prometheus text exposition (validated by
    /// `tools/check_metrics_text.py`): counters, per-tenant counters, rate
    /// gauges, and cumulative `_bucket`/`_sum`/`_count` histograms.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let m = &self.service;
        out.push_str("# TYPE gql_requests_total counter\n");
        for (class, v) in [
            ("submitted", m.submitted),
            ("admitted", m.admitted),
            ("rejected", m.rejected),
            ("refused", m.refused),
            ("completed", m.completed),
            ("cancelled", m.cancelled),
            ("budget_tripped", m.budget_tripped),
            ("failed", m.failed),
        ] {
            out.push_str(&format!("gql_requests_total{{class=\"{class}\"}} {v}\n"));
        }
        out.push_str("# TYPE gql_tenant_requests_total counter\n");
        for (name, t) in &m.tenants {
            for (class, v) in [
                ("submitted", t.submitted),
                ("admitted", t.admitted),
                ("rejected", t.rejected),
                ("refused", t.refused),
            ] {
                out.push_str(&format!(
                    "gql_tenant_requests_total{{tenant=\"{}\",class=\"{class}\"}} {v}\n",
                    label_escape(name)
                ));
            }
        }
        out.push_str("# TYPE gql_cache_events_total counter\n");
        for (cache, outcome, v) in [
            ("plan", "warm", m.plan_warm),
            ("plan", "cold", m.plan_cold),
            ("plan", "replan", m.plan_replans),
            ("index", "warm", m.index_warm),
            ("index", "cold", m.index_cold),
        ] {
            out.push_str(&format!(
                "gql_cache_events_total{{cache=\"{cache}\",outcome=\"{outcome}\"}} {v}\n"
            ));
        }
        out.push_str("# TYPE gql_requests_window gauge\n");
        let mut window_lines = |scope: &str, tenant: Option<&str>, s: &WindowSnapshot| {
            for (win, v) in [("1s", &s.s1), ("10s", &s.s10), ("60s", &s.s60)] {
                for (i, lane) in LANE_NAMES.iter().enumerate() {
                    let tenant_label = tenant
                        .map(|t| format!("tenant=\"{}\",", label_escape(t)))
                        .unwrap_or_default();
                    out.push_str(&format!(
                        "gql_requests_window{{scope=\"{scope}\",{tenant_label}lane=\"{lane}\",window=\"{win}\"}} {}\n",
                        v[i]
                    ));
                }
            }
        };
        window_lines("service", None, &self.service_windows);
        for (name, s) in &self.tenant_windows {
            window_lines("tenant", Some(name), s);
        }
        out.push_str("# TYPE gql_service_time_us histogram\n");
        for ((tenant, dataset, surface, outcome), s) in &self.latency {
            let labels = format!(
                "tenant=\"{}\",dataset=\"{}\",surface=\"{}\",outcome=\"{}\"",
                label_escape(tenant),
                label_escape(dataset),
                label_escape(surface),
                label_escape(outcome)
            );
            for (upper, cum) in s.cumulative_buckets() {
                out.push_str(&format!(
                    "gql_service_time_us_bucket{{{labels},le=\"{upper}\"}} {cum}\n"
                ));
            }
            out.push_str(&format!(
                "gql_service_time_us_bucket{{{labels},le=\"+Inf\"}} {}\n",
                s.count
            ));
            out.push_str(&format!("gql_service_time_us_sum{{{labels}}} {}\n", s.sum));
            out.push_str(&format!(
                "gql_service_time_us_count{{{labels}}} {}\n",
                s.count
            ));
        }
        out.push_str("# TYPE gql_events_appended_total counter\n");
        out.push_str(&format!(
            "gql_events_appended_total {}\n",
            self.event_stats.appended
        ));
        out.push_str("# TYPE gql_events_dropped_total counter\n");
        out.push_str(&format!(
            "gql_events_dropped_total {}\n",
            self.event_stats.dropped
        ));
        out.push_str("# TYPE gql_slow_queries_total counter\n");
        out.push_str(&format!("gql_slow_queries_total {}\n", self.slow_captured));
        out
    }
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_metrics::ManualClock;

    fn telemetry() -> (Arc<ManualClock>, Telemetry) {
        let clock = Arc::new(ManualClock::at_micros(1_000_000));
        let t = Telemetry::build(
            &TelemetryConfig::default()
                .with_slow_threshold_us(0)
                .with_clock(Arc::clone(&clock) as Arc<dyn Clock>),
            &["t".to_string()],
        );
        (clock, t)
    }

    #[test]
    fn disabled_hooks_fire_no_probes_and_mint_no_meta() {
        let t = Telemetry::build(&TelemetryConfig::disabled(), &["t".to_string()]);
        assert!(!t.enabled());
        t.on_submitted(Some("t"));
        let meta = t.on_admitted("t", "query", "//a");
        assert!(meta.is_none());
        t.on_dequeue(meta.as_ref());
        t.on_reply(meta.as_ref(), "d", "ok", 1, "", &[], None);
        assert_eq!(t.probes(), 0);
        assert_eq!(t.latency_all().count, 0);
        assert_eq!(t.event_stats().appended, 0);
    }

    #[test]
    fn full_lifecycle_records_histogram_events_and_slow_entry() {
        let (clock, t) = telemetry();
        t.on_submitted(Some("t"));
        let meta = t.on_admitted("t", "query", "//a");
        let meta = meta.as_ref();
        t.on_dequeue(meta);
        t.on_start(meta);
        clock.advance_micros(250); // nonzero service time → slow at threshold 0
        t.on_reply(
            meta,
            "d",
            "budget",
            42,
            "scan(n)",
            &[("eval".into(), 42)],
            Some("phase=eval rounds=1 matches=0 nodes=5"),
        );
        assert_eq!(t.probes(), 5);
        let all = t.latency_all();
        assert_eq!(all.count, 1);
        let stats = t.event_stats();
        // admit + dequeue + start + trip + reply
        assert_eq!(stats.appended, 5);
        assert_eq!(stats.retained + stats.dropped, stats.appended);
        let slow = t.slow_entries_for("d");
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].service_us, 250);
        assert_eq!(slow[0].outcome, "budget");
        assert_eq!(slow[0].plan, "scan(n)");
        assert!(slow[0].trip.as_deref().unwrap().starts_with("phase="));
    }

    #[test]
    fn report_renders_all_three_surfaces() {
        let (clock, t) = telemetry();
        let meta = t.on_admitted("t", "query", "//a");
        clock.advance_micros(10);
        t.on_reply(meta.as_ref(), "d", "ok", 3, "p", &[], None);
        let service = ServiceMetrics {
            submitted: 1,
            admitted: 1,
            completed: 1,
            ..Default::default()
        };
        let report = t.report(service);
        let json = report.to_value().render();
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"windows\""));
        assert!(json.contains("\"events\""));
        let text = report.to_text();
        assert!(text.contains("gql-serve metrics"));
        assert!(text.contains("latency"));
        let prom = report.to_prometheus_text();
        assert!(prom.contains("# TYPE gql_requests_total counter"));
        assert!(prom.contains("gql_requests_total{class=\"submitted\"} 1"));
        assert!(prom.contains("gql_service_time_us_bucket"));
        assert!(prom.contains("le=\"+Inf\"} 1"));
        assert!(prom.contains("gql_service_time_us_count"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
