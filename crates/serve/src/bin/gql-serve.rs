//! `gql-serve` — run, inspect or smoke-test the multi-tenant query
//! service.
//!
//! ```text
//! Usage: gql-serve serve [--addr HOST:PORT] [--workers N]
//!        gql-serve stat [--addr HOST:PORT] [--view text|counters|report|prometheus]
//!        gql-serve smoke
//!        gql-serve smoke-metrics
//! ```
//!
//! `serve` builds a catalog of the four synthetic datasets (bibliography,
//! cityguide, greengrocer, webgraph), registers a permissive `public`
//! tenant, and serves the length-prefixed JSON protocol until killed.
//!
//! `stat` connects to a running server and prints one rendering of its
//! telemetry plane: the human stat summary (default), the raw cumulative
//! counters, the full JSON report, or the Prometheus text exposition.
//!
//! `smoke` is the CI step: it starts the same service on an ephemeral
//! port, sends a ping, a 3-query batch over two datasets, a
//! deliberately-unknown dataset, and every metrics view through a real
//! socket, and prints each response as one JSON line for
//! `tools/check_serve_json.py` to validate. Exit 1 if any query of the
//! batch fails.
//!
//! `smoke-metrics` is the telemetry CI step: it drives a deterministic
//! traffic mix (successes, refusals, rejections, a budget trip) through
//! a service whose slow-query threshold is zero, and prints **two**
//! Prometheus scrapes separated by a `=== scrape ===` marker line so
//! `tools/check_metrics_text.py` can check the exposition grammar,
//! conservation laws and counter monotonicity.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

use gql_guard::Budget;
use gql_serve::json::Value;
use gql_serve::{Catalog, Client, Envelope, Server, Service, TelemetryConfig, TenantRegistry};
use gql_ssdm::generator;

fn usage() -> &'static str {
    "Usage: gql-serve serve [--addr HOST:PORT] [--workers N]\n       gql-serve stat [--addr HOST:PORT] [--view text|counters|report|prometheus]\n       gql-serve smoke\n       gql-serve smoke-metrics"
}

/// The standard demo catalog: every synthetic generator at its default
/// scale, loaded and indexed once at startup.
fn demo_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register("bibliography", generator::bibliography(Default::default()));
    catalog.register("cityguide", generator::cityguide(Default::default()));
    catalog.register("greengrocer", generator::greengrocer(Default::default()));
    catalog.register("webgraph", generator::webgraph(Default::default()));
    catalog
}

/// A permissive public tenant: plenty of slots, per-query caps high
/// enough for every demo query but low enough that a pathological one
/// cannot wedge a worker forever. Plus a `limited` tenant whose zero
/// requests-per-second quota makes `rate_limited` reachable on demand —
/// both for the smoke and for poking a live server by hand.
fn demo_tenants() -> TenantRegistry {
    let mut tenants = TenantRegistry::new();
    tenants.register(
        "public",
        Envelope::slots(64).with_per_query(Budget::unlimited().with_timeout_ms(30_000)),
    );
    tenants.register("limited", Envelope::slots(8).with_requests_per_sec(0));
    tenants
}

fn resolve_addr(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {addr}: no addresses"))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = 4usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--workers needs a positive integer")?
            }
            other => return Err(format!("unknown flag: {other}\n{}", usage())),
        }
    }
    let service = Service::builder()
        .workers(workers)
        .catalog(demo_catalog())
        .tenants(demo_tenants())
        .build();
    let server =
        Server::bind(&addr, service.handle()).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "gql-serve listening on {} ({} datasets, {} workers)",
        server.addr(),
        service.catalog().len(),
        workers
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

/// `stat`: ask a running server for one rendering of its telemetry.
fn cmd_stat(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut view = "text".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--view" => view = it.next().ok_or("--view needs a name")?.clone(),
            other => return Err(format!("unknown flag: {other}\n{}", usage())),
        }
    }
    let mut client = Client::connect(resolve_addr(&addr)?)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let req = Value::Obj(vec![
        ("op".into(), Value::str("metrics")),
        ("view".into(), Value::str(&view)),
    ]);
    let resp = client
        .roundtrip(&req)
        .map_err(|e| format!("transport error: {e}"))?;
    if resp.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err(format!("server refused: {}", resp.render()));
    }
    // Text-shaped views print their string raw; JSON views print JSON.
    match view.as_str() {
        "text" => print!(
            "{}",
            resp.get("stat").and_then(Value::as_str).unwrap_or_default()
        ),
        "prometheus" => print!(
            "{}",
            resp.get("prometheus")
                .and_then(Value::as_str)
                .unwrap_or_default()
        ),
        "counters" => println!(
            "{}",
            resp.get("metrics").map(Value::render).unwrap_or_default()
        ),
        _ => println!(
            "{}",
            resp.get("report").map(Value::render).unwrap_or_default()
        ),
    }
    Ok(())
}

fn cmd_smoke() -> Result<(), String> {
    let service = Service::builder()
        .workers(4)
        .catalog(demo_catalog())
        .tenants(demo_tenants())
        .build();
    let server = Server::bind("127.0.0.1:0", service.handle())
        .map_err(|e| format!("cannot bind ephemeral port: {e}"))?;
    let mut client = Client::connect(server.addr()).map_err(|e| format!("cannot connect: {e}"))?;
    let mut failures = 0u32;
    let mut send = |label: &str, req: &str| -> Result<Value, String> {
        let v = Value::parse(req).expect("smoke request literals are valid JSON");
        let resp = client
            .roundtrip(&v)
            .map_err(|e| format!("{label}: transport error: {e}"))?;
        println!("{}", resp.render());
        Ok(resp)
    };
    let ping = send("ping", r#"{"op":"ping"}"#)?;
    if ping.get("pong").and_then(Value::as_bool) != Some(true) {
        failures += 1;
    }
    // The CI batch: three queries, two datasets, all three languages.
    let batch = send(
        "batch",
        r#"{"op":"batch","tenant":"public","items":[
            {"dataset":"bibliography","kind":"xpath","query":"//book/title"},
            {"dataset":"cityguide","kind":"xmlgl","query":"rule { extract { restaurant as $r { name { text as $n } } } construct { out { all $n } } }"},
            {"dataset":"bibliography","kind":"wglog","query":"rule { query { $b: book  $a: author  $b -author-> $a } construct { $l: author-list  $l -member-> $a } } goal author-list"}
        ]}"#,
    )?;
    match batch.get("batch").and_then(Value::as_arr) {
        Some(items) if items.len() == 3 => {
            for (i, item) in items.iter().enumerate() {
                let ok = item.get("ok").and_then(Value::as_bool) == Some(true);
                let nonempty = item
                    .get("result_count")
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
                    > 0;
                if !ok || !nonempty {
                    eprintln!("smoke: batch item {i} failed: {}", item.render());
                    failures += 1;
                }
            }
        }
        _ => {
            eprintln!("smoke: batch response malformed: {}", batch.render());
            failures += 1;
        }
    }
    // Unknown dataset must come back as a structured error, not a hang.
    let unknown = send(
        "unknown-dataset",
        r#"{"op":"query","tenant":"public","dataset":"nope","kind":"xpath","query":"//a"}"#,
    )?;
    if unknown.get("code").and_then(Value::as_str) != Some("unknown-dataset") {
        failures += 1;
    }
    // Hot reload: swap greengrocer for a tiny replacement at epoch 2,
    // then prove the very next query serves the new epoch's content.
    let reload = send(
        "reload",
        r#"{"op":"reload","dataset":"greengrocer","xml":"<shop><item><price>1</price></item></shop>"}"#,
    )?;
    if reload
        .get("reload")
        .and_then(|r| r.get("epoch"))
        .and_then(Value::as_u64)
        != Some(2)
    {
        eprintln!(
            "smoke: reload did not advance to epoch 2: {}",
            reload.render()
        );
        failures += 1;
    }
    let reloaded = send(
        "query-reloaded",
        r#"{"op":"query","tenant":"public","dataset":"greengrocer","kind":"xpath","query":"//price"}"#,
    )?;
    if reloaded.get("epoch").and_then(Value::as_u64) != Some(2)
        || reloaded.get("result_count").and_then(Value::as_u64) != Some(1)
    {
        eprintln!(
            "smoke: post-reload query not on epoch 2: {}",
            reloaded.render()
        );
        failures += 1;
    }
    // The zero-quota tenant: deterministically rate_limited with a
    // bounded retry hint.
    let limited = send(
        "rate-limited",
        r#"{"op":"query","tenant":"limited","dataset":"bibliography","kind":"xpath","query":"//book/title"}"#,
    )?;
    let hint = limited.get("retry_after_ms").and_then(Value::as_u64);
    if limited.get("code").and_then(Value::as_str) != Some("rate_limited")
        || !matches!(hint, Some(1..=1000))
    {
        eprintln!("smoke: rate-limited reply malformed: {}", limited.render());
        failures += 1;
    }
    let metrics = send("metrics", r#"{"op":"metrics"}"#)?;
    let completed = metrics
        .get("metrics")
        .and_then(|m| m.get("completed"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if completed < 3 {
        eprintln!("smoke: expected ≥3 completed queries, saw {completed}");
        failures += 1;
    }
    // The telemetry report view: the latency histogram must have seen
    // every admitted request.
    let report = send("metrics-report", r#"{"op":"metrics","view":"report"}"#)?;
    let histo_count = report
        .get("report")
        .and_then(|r| r.get("latency_all"))
        .and_then(|l| l.get("count"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if histo_count < 3 {
        eprintln!("smoke: expected ≥3 latency samples in the report, saw {histo_count}");
        failures += 1;
    }
    // The Prometheus exposition as one string field.
    let prom = send(
        "metrics-prometheus",
        r#"{"op":"metrics","view":"prometheus"}"#,
    )?;
    let text = prom
        .get("prometheus")
        .and_then(Value::as_str)
        .unwrap_or_default();
    if !text.contains("gql_requests_total") {
        eprintln!("smoke: prometheus exposition missing gql_requests_total");
        failures += 1;
    }
    // An unknown view must be a structured bad-request, not a hang.
    let bad_view = send("metrics-bad-view", r#"{"op":"metrics","view":"warp"}"#)?;
    if bad_view.get("code").and_then(Value::as_str) != Some("bad-request") {
        failures += 1;
    }
    server.shutdown();
    service.shutdown();
    if failures > 0 {
        return Err(format!("smoke: {failures} check(s) failed"));
    }
    Ok(())
}

/// The `smoke-metrics` tenant roster: a permissive tenant, a zero-slot
/// tenant (every submission is deterministically rejected) and a tenant
/// whose per-query budget trips on any multi-match query.
fn metrics_smoke_tenants() -> TenantRegistry {
    let mut tenants = TenantRegistry::new();
    tenants.register(
        "public",
        Envelope::slots(64).with_per_query(Budget::unlimited().with_timeout_ms(30_000)),
    );
    tenants.register("cap0", Envelope::slots(0));
    tenants.register(
        "strict",
        Envelope::slots(4).with_per_query(Budget::unlimited().with_max_matches(1)),
    );
    tenants
}

/// Drive one deterministic round of mixed traffic: two successes, an
/// unknown-dataset refusal, an unknown-tenant refusal, a zero-slot
/// rejection and a budget trip. Returns the number of transport-level
/// failures (the *application* outcomes are intentionally mixed).
fn metrics_smoke_round(client: &mut Client) -> Result<(), String> {
    let traffic: &[(&str, &str)] = &[
        (
            "ok-bibliography",
            r#"{"op":"query","tenant":"public","dataset":"bibliography","kind":"xpath","query":"//book/title"}"#,
        ),
        (
            "ok-cityguide",
            r#"{"op":"query","tenant":"public","dataset":"cityguide","kind":"xpath","query":"//restaurant/name"}"#,
        ),
        (
            "refused-unknown-dataset",
            r#"{"op":"query","tenant":"public","dataset":"nope","kind":"xpath","query":"//a"}"#,
        ),
        (
            "refused-unknown-tenant",
            r#"{"op":"query","tenant":"ghost","dataset":"bibliography","kind":"xpath","query":"//a"}"#,
        ),
        (
            "rejected-zero-slots",
            r#"{"op":"query","tenant":"cap0","dataset":"bibliography","kind":"xpath","query":"//book/title"}"#,
        ),
        (
            "budget-trip",
            r#"{"op":"query","tenant":"strict","dataset":"bibliography","kind":"xpath","query":"//book/title"}"#,
        ),
    ];
    for (label, req) in traffic {
        let v = Value::parse(req).expect("smoke request literals are valid JSON");
        client
            .roundtrip(&v)
            .map_err(|e| format!("{label}: transport error: {e}"))?;
    }
    Ok(())
}

fn cmd_smoke_metrics() -> Result<(), String> {
    let service = Service::builder()
        .workers(4)
        .catalog(demo_catalog())
        .tenants(metrics_smoke_tenants())
        // Threshold zero: every completed query qualifies for the slow
        // log, so the budget trip's capture is deterministic.
        .telemetry(TelemetryConfig::default().with_slow_threshold_us(0))
        .build();
    let server = Server::bind("127.0.0.1:0", service.handle())
        .map_err(|e| format!("cannot bind ephemeral port: {e}"))?;
    let mut client = Client::connect(server.addr()).map_err(|e| format!("cannot connect: {e}"))?;
    let scrape = |client: &mut Client| -> Result<String, String> {
        let req = Value::parse(r#"{"op":"metrics","view":"prometheus"}"#).unwrap();
        let resp = client
            .roundtrip(&req)
            .map_err(|e| format!("scrape: transport error: {e}"))?;
        resp.get("prometheus")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("scrape: malformed response: {}", resp.render()))
    };

    metrics_smoke_round(&mut client)?;
    let first = scrape(&mut client)?;
    print!("{first}");
    println!("=== scrape ===");
    metrics_smoke_round(&mut client)?;
    metrics_smoke_round(&mut client)?;
    let second = scrape(&mut client)?;
    print!("{second}");

    // Belt-and-braces beyond what check_metrics_text.py validates: the
    // budget trip must have landed in the slow log with its trip report.
    let report = service.handle().metrics_report();
    let slow = report.to_value();
    let captured = slow
        .get("slow")
        .and_then(|s| s.get("captured"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    server.shutdown();
    service.shutdown();
    if captured == 0 {
        return Err("smoke-metrics: no slow-query captures recorded".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("stat") => cmd_stat(&args[1..]),
        Some("smoke") if args.len() == 1 => cmd_smoke(),
        Some("smoke-metrics") if args.len() == 1 => cmd_smoke_metrics(),
        _ => Err(usage().to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(if msg.starts_with("Usage:") { 2 } else { 1 })
        }
    }
}
