//! `gql-serve` — run or smoke-test the multi-tenant query service.
//!
//! ```text
//! Usage: gql-serve serve [--addr HOST:PORT] [--workers N]
//!        gql-serve smoke
//! ```
//!
//! `serve` builds a catalog of the four synthetic datasets (bibliography,
//! cityguide, greengrocer, webgraph), registers a permissive `public`
//! tenant, and serves the length-prefixed JSON protocol until killed.
//!
//! `smoke` is the CI step: it starts the same service on an ephemeral
//! port, sends a ping, a 3-query batch over two datasets, a
//! deliberately-unknown dataset, and a metrics request through a real
//! socket, and prints each response as one JSON line for
//! `tools/check_serve_json.py` to validate. Exit 1 if any query of the
//! batch fails.

use std::process::ExitCode;

use gql_guard::Budget;
use gql_serve::json::Value;
use gql_serve::{Catalog, Client, Envelope, Server, Service, TenantRegistry};
use gql_ssdm::generator;

fn usage() -> &'static str {
    "Usage: gql-serve serve [--addr HOST:PORT] [--workers N]\n       gql-serve smoke"
}

/// The standard demo catalog: every synthetic generator at its default
/// scale, loaded and indexed once at startup.
fn demo_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register("bibliography", generator::bibliography(Default::default()));
    catalog.register("cityguide", generator::cityguide(Default::default()));
    catalog.register("greengrocer", generator::greengrocer(Default::default()));
    catalog.register("webgraph", generator::webgraph(Default::default()));
    catalog
}

/// A permissive public tenant: plenty of slots, per-query caps high
/// enough for every demo query but low enough that a pathological one
/// cannot wedge a worker forever.
fn demo_tenants() -> TenantRegistry {
    let mut tenants = TenantRegistry::new();
    tenants.register(
        "public",
        Envelope::slots(64).with_per_query(Budget::unlimited().with_timeout_ms(30_000)),
    );
    tenants
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = 4usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--workers needs a positive integer")?
            }
            other => return Err(format!("unknown flag: {other}\n{}", usage())),
        }
    }
    let service = Service::builder()
        .workers(workers)
        .catalog(demo_catalog())
        .tenants(demo_tenants())
        .build();
    let server =
        Server::bind(&addr, service.handle()).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "gql-serve listening on {} ({} datasets, {} workers)",
        server.addr(),
        service.catalog().len(),
        workers
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn cmd_smoke() -> Result<(), String> {
    let service = Service::builder()
        .workers(4)
        .catalog(demo_catalog())
        .tenants(demo_tenants())
        .build();
    let server = Server::bind("127.0.0.1:0", service.handle())
        .map_err(|e| format!("cannot bind ephemeral port: {e}"))?;
    let mut client = Client::connect(server.addr()).map_err(|e| format!("cannot connect: {e}"))?;
    let mut failures = 0u32;
    let mut send = |label: &str, req: &str| -> Result<Value, String> {
        let v = Value::parse(req).expect("smoke request literals are valid JSON");
        let resp = client
            .roundtrip(&v)
            .map_err(|e| format!("{label}: transport error: {e}"))?;
        println!("{}", resp.render());
        Ok(resp)
    };
    let ping = send("ping", r#"{"op":"ping"}"#)?;
    if ping.get("pong").and_then(Value::as_bool) != Some(true) {
        failures += 1;
    }
    // The CI batch: three queries, two datasets, all three languages.
    let batch = send(
        "batch",
        r#"{"op":"batch","tenant":"public","items":[
            {"dataset":"bibliography","kind":"xpath","query":"//book/title"},
            {"dataset":"cityguide","kind":"xmlgl","query":"rule { extract { restaurant as $r { name { text as $n } } } construct { out { all $n } } }"},
            {"dataset":"bibliography","kind":"wglog","query":"rule { query { $b: book  $a: author  $b -author-> $a } construct { $l: author-list  $l -member-> $a } } goal author-list"}
        ]}"#,
    )?;
    match batch.get("batch").and_then(Value::as_arr) {
        Some(items) if items.len() == 3 => {
            for (i, item) in items.iter().enumerate() {
                let ok = item.get("ok").and_then(Value::as_bool) == Some(true);
                let nonempty = item
                    .get("result_count")
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
                    > 0;
                if !ok || !nonempty {
                    eprintln!("smoke: batch item {i} failed: {}", item.render());
                    failures += 1;
                }
            }
        }
        _ => {
            eprintln!("smoke: batch response malformed: {}", batch.render());
            failures += 1;
        }
    }
    // Unknown dataset must come back as a structured error, not a hang.
    let unknown = send(
        "unknown-dataset",
        r#"{"op":"query","tenant":"public","dataset":"nope","kind":"xpath","query":"//a"}"#,
    )?;
    if unknown.get("code").and_then(Value::as_str) != Some("unknown-dataset") {
        failures += 1;
    }
    let metrics = send("metrics", r#"{"op":"metrics"}"#)?;
    let completed = metrics
        .get("metrics")
        .and_then(|m| m.get("completed"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if completed < 3 {
        eprintln!("smoke: expected ≥3 completed queries, saw {completed}");
        failures += 1;
    }
    server.shutdown();
    service.shutdown();
    if failures > 0 {
        return Err(format!("smoke: {failures} check(s) failed"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("smoke") if args.len() == 1 => cmd_smoke(),
        _ => Err(usage().to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(if msg.starts_with("Usage:") { 2 } else { 1 })
        }
    }
}
