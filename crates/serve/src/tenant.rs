//! Per-tenant budget envelopes and admission control.
//!
//! A tenant's [`Envelope`] bounds what its *concurrent* traffic may hold at
//! once: an in-flight slot count and a pooled match-unit reservation that
//! every admitted query draws its per-query match cap from. Admission is a
//! single atomic claim — either both the slot and the pool reservation are
//! granted (returning an RAII [`Permit`] that releases them on drop, even
//! if the query panics) or the request is rejected `overloaded` without
//! queueing. Rejection is deliberately cheap and unqueued: a storm from one
//! tenant burns only that tenant's envelope, never another tenant's slots —
//! the starvation property test pins this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gql_guard::Budget;

/// What one tenant may hold in flight at once.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Maximum concurrently admitted queries.
    pub max_in_flight: u64,
    /// Budget each admitted query runs under (`Guard::with_cancel` per
    /// request). Its `max_matches` is the pool draw, when a pool is set.
    pub per_query: Budget,
    /// Total match units the tenant's concurrent queries may reserve; each
    /// admission draws `per_query.max_matches` (admission fails if the
    /// per-query budget is match-unlimited while a pool is set — an
    /// unlimited draw would defeat the pool).
    pub pool_matches: Option<u64>,
}

impl Envelope {
    /// A permissive envelope: `n` slots, unlimited per-query budget, no
    /// match pool.
    pub fn slots(n: u64) -> Envelope {
        Envelope {
            max_in_flight: n,
            per_query: Budget::unlimited(),
            pool_matches: None,
        }
    }

    pub fn with_per_query(mut self, b: Budget) -> Envelope {
        self.per_query = b;
        self
    }

    pub fn with_pool_matches(mut self, units: u64) -> Envelope {
        self.pool_matches = Some(units);
        self
    }
}

/// Cumulative per-tenant counters. The per-tenant conservation law is
/// `admitted + rejected + refused == submitted` — `submitted` counts from
/// tenant resolution on, so requests naming an unknown tenant attribute
/// only to the service-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Requests that resolved to this tenant.
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    /// Structured refusals after tenant resolution (unknown dataset, bad
    /// request, failed fingerprint).
    pub refused: u64,
    /// High-water mark of concurrently admitted queries.
    pub peak_in_flight: u64,
    /// High-water mark of reserved pool match units.
    pub peak_pool_draw: u64,
}

/// A registered tenant: envelope plus live admission state.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    envelope: Envelope,
    in_flight: AtomicU64,
    pool_drawn: AtomicU64,
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    refused: AtomicU64,
    peak_in_flight: AtomicU64,
    peak_pool_draw: AtomicU64,
}

impl Tenant {
    fn new(name: &str, envelope: Envelope) -> Tenant {
        Tenant {
            name: name.to_string(),
            envelope,
            in_flight: AtomicU64::new(0),
            pool_drawn: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            peak_pool_draw: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    pub fn metrics(&self) -> TenantMetrics {
        TenantMetrics {
            submitted: self.submitted.load(Ordering::SeqCst),
            admitted: self.admitted.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            refused: self.refused.load(Ordering::SeqCst),
            peak_in_flight: self.peak_in_flight.load(Ordering::SeqCst),
            peak_pool_draw: self.peak_pool_draw.load(Ordering::SeqCst),
        }
    }

    /// Count a request that resolved to this tenant (the service calls
    /// this once per submission, before admission).
    pub(crate) fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::SeqCst);
    }

    /// Count a post-resolution structured refusal (never admitted).
    pub(crate) fn note_refused(&self) {
        self.refused.fetch_add(1, Ordering::SeqCst);
    }

    /// The pool draw one admission claims: the per-query match cap, or the
    /// whole pool when the per-query budget is match-unlimited (so an
    /// uncapped query can never share the pool with anything else).
    fn pool_draw(&self) -> u64 {
        match self.envelope.pool_matches {
            None => 0,
            Some(pool) => self.envelope.per_query.max_matches.unwrap_or(pool.max(1)),
        }
    }

    /// Claim a `counter` increment of `amount` bounded by `cap`, updating
    /// `peak`; backs out nothing (caller releases on failure of a later
    /// claim). Returns false if the claim would exceed the cap.
    fn claim(counter: &AtomicU64, cap: u64, amount: u64, peak: &AtomicU64) -> bool {
        let mut cur = counter.load(Ordering::SeqCst);
        loop {
            let next = match cur.checked_add(amount) {
                Some(n) if n <= cap => n,
                _ => return false,
            };
            match counter.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => {
                    peak.fetch_max(next, Ordering::SeqCst);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Try to admit one query: claim an in-flight slot, then the pool
    /// draw. Returns the RAII permit, or `None` (counted as a rejection).
    pub fn try_admit(self: &Arc<Tenant>) -> Option<Permit> {
        if !Self::claim(
            &self.in_flight,
            self.envelope.max_in_flight,
            1,
            &self.peak_in_flight,
        ) {
            self.rejected.fetch_add(1, Ordering::SeqCst);
            return None;
        }
        let draw = self.pool_draw();
        if let Some(pool) = self.envelope.pool_matches {
            if !Self::claim(&self.pool_drawn, pool, draw, &self.peak_pool_draw) {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                self.rejected.fetch_add(1, Ordering::SeqCst);
                return None;
            }
        }
        self.admitted.fetch_add(1, Ordering::SeqCst);
        Some(Permit {
            tenant: Arc::clone(self),
            draw,
        })
    }
}

/// RAII admission permit: releases the slot and pool reservation on drop.
#[derive(Debug)]
pub struct Permit {
    tenant: Arc<Tenant>,
    draw: u64,
}

impl Permit {
    pub fn tenant(&self) -> &Arc<Tenant> {
        &self.tenant
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.tenant.in_flight.fetch_sub(1, Ordering::SeqCst);
        if self.tenant.envelope.pool_matches.is_some() {
            self.tenant
                .pool_drawn
                .fetch_sub(self.draw, Ordering::SeqCst);
        }
    }
}

/// Immutable-after-build registry of tenants, shared via `Arc`.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: Vec<Arc<Tenant>>,
}

impl TenantRegistry {
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Register a tenant; re-registering a name replaces the entry (state
    /// resets — registries are built before the service starts).
    pub fn register(&mut self, name: &str, envelope: Envelope) -> Arc<Tenant> {
        let t = Arc::new(Tenant::new(name, envelope));
        self.tenants.retain(|x| x.name() != name);
        self.tenants.push(Arc::clone(&t));
        t
    }

    pub fn get(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.tenants.iter().find(|t| t.name() == name)
    }

    /// Tenants in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Tenant>> {
        self.tenants.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_admit_up_to_capacity_and_release_on_drop() {
        let mut reg = TenantRegistry::new();
        let t = reg.register("a", Envelope::slots(2));
        let p1 = t.try_admit().expect("slot 1");
        let p2 = t.try_admit().expect("slot 2");
        assert!(t.try_admit().is_none(), "third must be rejected");
        assert_eq!(t.in_flight(), 2);
        drop(p1);
        let p3 = t.try_admit().expect("freed slot readmits");
        drop((p2, p3));
        let m = t.metrics();
        assert_eq!((m.admitted, m.rejected, m.peak_in_flight), (3, 1, 2));
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn pool_bounds_concurrent_match_draw() {
        let mut reg = TenantRegistry::new();
        // 3 slots but only 2 queries' worth of match units.
        let t = reg.register(
            "a",
            Envelope::slots(3)
                .with_per_query(Budget::unlimited().with_max_matches(100))
                .with_pool_matches(200),
        );
        let p1 = t.try_admit().expect("draw 100");
        let _p2 = t.try_admit().expect("draw 200");
        assert!(t.try_admit().is_none(), "pool exhausted before slots");
        assert_eq!(t.in_flight(), 2, "failed pool claim must release its slot");
        drop(p1);
        assert!(t.try_admit().is_some(), "returned units readmit");
        assert_eq!(t.metrics().peak_pool_draw, 200);
    }

    #[test]
    fn match_unlimited_query_claims_the_whole_pool() {
        let mut reg = TenantRegistry::new();
        let t = reg.register("a", Envelope::slots(4).with_pool_matches(1_000));
        let _p = t.try_admit().expect("first");
        assert!(
            t.try_admit().is_none(),
            "an uncapped query must monopolize the pool"
        );
    }
}
