//! Per-tenant budget envelopes and admission control.
//!
//! A tenant's [`Envelope`] bounds what its *concurrent* traffic may hold at
//! once: an in-flight slot count and a pooled match-unit reservation that
//! every admitted query draws its per-query match cap from. Admission is a
//! single atomic claim — either both the slot and the pool reservation are
//! granted (returning an RAII [`Permit`] that releases them on drop, even
//! if the query panics) or the request is rejected `overloaded` without
//! queueing. Rejection is deliberately cheap and unqueued: a storm from one
//! tenant burns only that tenant's envelope, never another tenant's slots —
//! the starvation property test pins this.
//!
//! On top of the concurrency envelope sit optional **time-window quotas**:
//! requests/sec and match-units/sec budgets metered over the gql-metrics
//! rolling one-second windows. A quota-exceeding request is rejected
//! `rate_limited` with a `retry_after_ms` hint (time to the next window
//! boundary) *before* any slot is claimed, so sustained abuse is bounded
//! over time, not just instantaneously. The quota clock is injected
//! (`TenantRegistry::with_clock`) so tests pin the window arithmetic with
//! a `ManualClock`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gql_guard::Budget;
use gql_metrics::{Clock, MonotonicClock, Windows};

/// Quota window lanes: admissions and match units.
const LANE_REQS: usize = 0;
const LANE_UNITS: usize = 1;

/// What one tenant may hold in flight at once, plus sustained-rate quotas.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Maximum concurrently admitted queries.
    pub max_in_flight: u64,
    /// Budget each admitted query runs under (`Guard::with_cancel` per
    /// request). Its `max_matches` is the pool draw, when a pool is set.
    pub per_query: Budget,
    /// Total match units the tenant's concurrent queries may reserve; each
    /// admission draws `per_query.max_matches` (admission fails if the
    /// per-query budget is match-unlimited while a pool is set — an
    /// unlimited draw would defeat the pool).
    pub pool_matches: Option<u64>,
    /// Admissions allowed per trailing one-second window; excess is
    /// rejected `rate_limited` instead of `overloaded`.
    pub max_requests_per_sec: Option<u64>,
    /// Match units chargeable per trailing one-second window. Each
    /// admission charges its per-query match cap (or the whole budget if
    /// the query is match-unlimited).
    pub max_match_units_per_sec: Option<u64>,
}

impl Envelope {
    /// A permissive envelope: `n` slots, unlimited per-query budget, no
    /// match pool, no rate quotas.
    pub fn slots(n: u64) -> Envelope {
        Envelope {
            max_in_flight: n,
            per_query: Budget::unlimited(),
            pool_matches: None,
            max_requests_per_sec: None,
            max_match_units_per_sec: None,
        }
    }

    pub fn with_per_query(mut self, b: Budget) -> Envelope {
        self.per_query = b;
        self
    }

    pub fn with_pool_matches(mut self, units: u64) -> Envelope {
        self.pool_matches = Some(units);
        self
    }

    /// Cap admissions per trailing second.
    pub fn with_requests_per_sec(mut self, n: u64) -> Envelope {
        self.max_requests_per_sec = Some(n);
        self
    }

    /// Cap match units charged per trailing second.
    pub fn with_match_units_per_sec(mut self, units: u64) -> Envelope {
        self.max_match_units_per_sec = Some(units);
        self
    }

    fn has_quota(&self) -> bool {
        self.max_requests_per_sec.is_some() || self.max_match_units_per_sec.is_some()
    }
}

/// Why an admission was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDenied {
    /// The concurrency envelope (slots or match pool) is full.
    Overloaded,
    /// A time-window quota is exhausted; retry after the hint.
    RateLimited {
        /// Milliseconds until the current one-second window rolls over —
        /// the earliest instant a retry could be admitted.
        retry_after_ms: u64,
    },
}

/// Cumulative per-tenant counters. The per-tenant conservation law is
/// `admitted + rejected + refused == submitted` — `submitted` counts from
/// tenant resolution on, so requests naming an unknown tenant attribute
/// only to the service-wide counters. `rate_limited` is the quota-rejected
/// subset of `rejected`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Requests that resolved to this tenant.
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    /// Quota rejections (already counted in `rejected`).
    pub rate_limited: u64,
    /// Structured refusals after tenant resolution (unknown dataset, bad
    /// request, failed fingerprint).
    pub refused: u64,
    /// High-water mark of concurrently admitted queries.
    pub peak_in_flight: u64,
    /// High-water mark of reserved pool match units.
    pub peak_pool_draw: u64,
}

/// Rolling-window quota state: lane 0 counts admissions, lane 1 counts
/// charged match units, both over the injected clock's seconds.
struct Quota {
    windows: Windows,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for Quota {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quota")
            .field("windows", &self.windows)
            .finish()
    }
}

impl Quota {
    /// Milliseconds until the clock's current second rolls over, clamped
    /// to at least 1 so a `retry_after_ms` hint is never "now".
    fn retry_after_ms(&self) -> u64 {
        let in_second_us = self.clock.now_micros() % 1_000_000;
        ((1_000_000 - in_second_us) / 1_000).max(1)
    }
}

/// A registered tenant: envelope plus live admission state.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    envelope: Envelope,
    quota: Option<Quota>,
    in_flight: AtomicU64,
    pool_drawn: AtomicU64,
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    refused: AtomicU64,
    peak_in_flight: AtomicU64,
    peak_pool_draw: AtomicU64,
}

impl Tenant {
    fn new(name: &str, envelope: Envelope, clock: &Arc<dyn Clock>) -> Tenant {
        let quota = envelope.has_quota().then(|| Quota {
            windows: Windows::new(2, Arc::clone(clock)),
            clock: Arc::clone(clock),
        });
        Tenant {
            name: name.to_string(),
            envelope,
            quota,
            in_flight: AtomicU64::new(0),
            pool_drawn: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            peak_pool_draw: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    pub fn metrics(&self) -> TenantMetrics {
        TenantMetrics {
            submitted: self.submitted.load(Ordering::SeqCst),
            admitted: self.admitted.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            rate_limited: self.rate_limited.load(Ordering::SeqCst),
            refused: self.refused.load(Ordering::SeqCst),
            peak_in_flight: self.peak_in_flight.load(Ordering::SeqCst),
            peak_pool_draw: self.peak_pool_draw.load(Ordering::SeqCst),
        }
    }

    /// Count a request that resolved to this tenant (the service calls
    /// this once per submission, before admission).
    pub(crate) fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::SeqCst);
    }

    /// Count a post-resolution structured refusal (never admitted).
    pub(crate) fn note_refused(&self) {
        self.refused.fetch_add(1, Ordering::SeqCst);
    }

    /// The pool draw one admission claims: the per-query match cap, or the
    /// whole pool when the per-query budget is match-unlimited (so an
    /// uncapped query can never share the pool with anything else).
    fn pool_draw(&self) -> u64 {
        match self.envelope.pool_matches {
            None => 0,
            Some(pool) => self.envelope.per_query.max_matches.unwrap_or(pool.max(1)),
        }
    }

    /// The match units one admission charges against the per-second
    /// quota: the per-query cap, or the whole budget when uncapped.
    fn unit_charge(&self, budget: u64) -> u64 {
        self.envelope.per_query.max_matches.unwrap_or(budget.max(1))
    }

    /// Check the time-window quotas; does not mutate the windows. The
    /// over-admission race (two threads both passing the check in the
    /// same instant) is bounded and tolerated — windows meter rates, the
    /// hard concurrency claims stay exact.
    fn quota_denied(&self) -> Option<AdmitDenied> {
        let q = self.quota.as_ref()?;
        if let Some(cap) = self.envelope.max_requests_per_sec {
            if q.windows.sums(1)[LANE_REQS] + 1 > cap {
                return Some(AdmitDenied::RateLimited {
                    retry_after_ms: q.retry_after_ms(),
                });
            }
        }
        if let Some(cap) = self.envelope.max_match_units_per_sec {
            if q.windows.sums(1)[LANE_UNITS] + self.unit_charge(cap) > cap {
                return Some(AdmitDenied::RateLimited {
                    retry_after_ms: q.retry_after_ms(),
                });
            }
        }
        None
    }

    /// Claim a `counter` increment of `amount` bounded by `cap`, updating
    /// `peak`; backs out nothing (caller releases on failure of a later
    /// claim). Returns false if the claim would exceed the cap.
    fn claim(counter: &AtomicU64, cap: u64, amount: u64, peak: &AtomicU64) -> bool {
        let mut cur = counter.load(Ordering::SeqCst);
        loop {
            let next = match cur.checked_add(amount) {
                Some(n) if n <= cap => n,
                _ => return false,
            };
            match counter.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => {
                    peak.fetch_max(next, Ordering::SeqCst);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Try to admit one query: check the window quotas, claim an
    /// in-flight slot, then the pool draw. Returns the RAII permit, or
    /// the denial reason (either way counted as a rejection).
    pub fn try_admit(self: &Arc<Tenant>) -> Result<Permit, AdmitDenied> {
        if let Some(denied) = self.quota_denied() {
            self.rejected.fetch_add(1, Ordering::SeqCst);
            self.rate_limited.fetch_add(1, Ordering::SeqCst);
            return Err(denied);
        }
        if !Self::claim(
            &self.in_flight,
            self.envelope.max_in_flight,
            1,
            &self.peak_in_flight,
        ) {
            self.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(AdmitDenied::Overloaded);
        }
        let draw = self.pool_draw();
        if let Some(pool) = self.envelope.pool_matches {
            if !Self::claim(&self.pool_drawn, pool, draw, &self.peak_pool_draw) {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                self.rejected.fetch_add(1, Ordering::SeqCst);
                return Err(AdmitDenied::Overloaded);
            }
        }
        if let Some(q) = &self.quota {
            q.windows.record(LANE_REQS);
            if let Some(cap) = self.envelope.max_match_units_per_sec {
                q.windows.record_n(LANE_UNITS, self.unit_charge(cap));
            }
        }
        self.admitted.fetch_add(1, Ordering::SeqCst);
        Ok(Permit {
            tenant: Arc::clone(self),
            draw,
        })
    }
}

/// RAII admission permit: releases the slot and pool reservation on drop.
#[derive(Debug)]
pub struct Permit {
    tenant: Arc<Tenant>,
    draw: u64,
}

impl Permit {
    pub fn tenant(&self) -> &Arc<Tenant> {
        &self.tenant
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.tenant.in_flight.fetch_sub(1, Ordering::SeqCst);
        if self.tenant.envelope.pool_matches.is_some() {
            self.tenant
                .pool_drawn
                .fetch_sub(self.draw, Ordering::SeqCst);
        }
    }
}

/// Immutable-after-build registry of tenants, shared via `Arc`.
pub struct TenantRegistry {
    tenants: Vec<Arc<Tenant>>,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantRegistry")
            .field("tenants", &self.tenants)
            .finish()
    }
}

impl Default for TenantRegistry {
    fn default() -> Self {
        TenantRegistry::new()
    }
}

impl TenantRegistry {
    pub fn new() -> TenantRegistry {
        TenantRegistry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry whose quota windows run on `clock` — tests inject a
    /// `ManualClock` to pin window rollover deterministically.
    pub fn with_clock(clock: Arc<dyn Clock>) -> TenantRegistry {
        TenantRegistry {
            tenants: Vec::new(),
            clock,
        }
    }

    /// Register a tenant; re-registering a name replaces the entry (state
    /// resets — registries are built before the service starts).
    pub fn register(&mut self, name: &str, envelope: Envelope) -> Arc<Tenant> {
        let t = Arc::new(Tenant::new(name, envelope, &self.clock));
        self.tenants.retain(|x| x.name() != name);
        self.tenants.push(Arc::clone(&t));
        t
    }

    pub fn get(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.tenants.iter().find(|t| t.name() == name)
    }

    /// Tenants in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Tenant>> {
        self.tenants.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_metrics::ManualClock;

    #[test]
    fn slots_admit_up_to_capacity_and_release_on_drop() {
        let mut reg = TenantRegistry::new();
        let t = reg.register("a", Envelope::slots(2));
        let p1 = t.try_admit().expect("slot 1");
        let p2 = t.try_admit().expect("slot 2");
        assert_eq!(
            t.try_admit().expect_err("third must be rejected"),
            AdmitDenied::Overloaded
        );
        assert_eq!(t.in_flight(), 2);
        drop(p1);
        let p3 = t.try_admit().expect("freed slot readmits");
        drop((p2, p3));
        let m = t.metrics();
        assert_eq!((m.admitted, m.rejected, m.peak_in_flight), (3, 1, 2));
        assert_eq!(m.rate_limited, 0);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn pool_bounds_concurrent_match_draw() {
        let mut reg = TenantRegistry::new();
        // 3 slots but only 2 queries' worth of match units.
        let t = reg.register(
            "a",
            Envelope::slots(3)
                .with_per_query(Budget::unlimited().with_max_matches(100))
                .with_pool_matches(200),
        );
        let p1 = t.try_admit().expect("draw 100");
        let _p2 = t.try_admit().expect("draw 200");
        assert!(t.try_admit().is_err(), "pool exhausted before slots");
        assert_eq!(t.in_flight(), 2, "failed pool claim must release its slot");
        drop(p1);
        assert!(t.try_admit().is_ok(), "returned units readmit");
        assert_eq!(t.metrics().peak_pool_draw, 200);
    }

    #[test]
    fn match_unlimited_query_claims_the_whole_pool() {
        let mut reg = TenantRegistry::new();
        let t = reg.register("a", Envelope::slots(4).with_pool_matches(1_000));
        let _p = t.try_admit().expect("first");
        assert!(
            t.try_admit().is_err(),
            "an uncapped query must monopolize the pool"
        );
    }

    #[test]
    fn request_quota_rejects_in_window_and_readmits_after_rollover() {
        let clock = Arc::new(ManualClock::at_micros(250_000));
        let mut reg = TenantRegistry::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let t = reg.register("a", Envelope::slots(8).with_requests_per_sec(2));

        let p1 = t.try_admit().expect("1/2 this second");
        let p2 = t.try_admit().expect("2/2 this second");
        drop((p1, p2)); // releasing slots does NOT refund the window
        match t.try_admit().expect_err("quota holds across drops") {
            AdmitDenied::RateLimited { retry_after_ms } => {
                assert_eq!(retry_after_ms, 750, "hint is time to the next second");
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        let m = t.metrics();
        assert_eq!((m.admitted, m.rejected, m.rate_limited), (2, 1, 1));

        // The next second grants a fresh budget.
        clock.advance_micros(750_000);
        assert!(t.try_admit().is_ok(), "new window readmits");
    }

    #[test]
    fn match_unit_quota_charges_the_per_query_cap() {
        let clock = Arc::new(ManualClock::new());
        let mut reg = TenantRegistry::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        // 40-unit cap per query, 100 units/sec: two admissions fit, the
        // third (cumulative 120 > 100) is rate-limited.
        let t = reg.register(
            "a",
            Envelope::slots(8)
                .with_per_query(Budget::unlimited().with_max_matches(40))
                .with_match_units_per_sec(100),
        );
        assert!(t.try_admit().is_ok());
        assert!(t.try_admit().is_ok());
        assert!(matches!(
            t.try_admit().expect_err("unit budget spent"),
            AdmitDenied::RateLimited { .. }
        ));
        clock.advance_secs(1);
        assert!(t.try_admit().is_ok(), "units refill with the window");
    }

    #[test]
    fn uncapped_query_charges_the_whole_unit_budget() {
        let clock = Arc::new(ManualClock::new());
        let mut reg = TenantRegistry::with_clock(clock as Arc<dyn Clock>);
        let t = reg.register("a", Envelope::slots(8).with_match_units_per_sec(500));
        assert!(t.try_admit().is_ok(), "first uncapped query admits");
        assert!(
            t.try_admit().is_err(),
            "an uncapped query consumes the whole second's units"
        );
    }

    #[test]
    fn zero_rate_quota_rejects_everything() {
        let mut reg = TenantRegistry::new();
        let t = reg.register("a", Envelope::slots(8).with_requests_per_sec(0));
        for _ in 0..3 {
            match t.try_admit() {
                Err(AdmitDenied::RateLimited { retry_after_ms }) => {
                    assert!((1..=1000).contains(&retry_after_ms));
                }
                other => panic!("expected RateLimited, got {other:?}"),
            }
        }
        let m = t.metrics();
        assert_eq!((m.admitted, m.rejected, m.rate_limited), (0, 3, 3));
    }
}
