//! The TCP front end: an accept loop, one thread per connection, and
//! disconnect-triggered cancellation.
//!
//! While a query is in flight the connection thread polls both the
//! response channel and the socket; a client that hangs up (EOF on peek)
//! trips the request's `CancelToken`, the engine aborts at its next
//! checkpoint, and the worker's slot frees — a dead client cannot pin a
//! tenant's envelope. Malformed frames get a structured `bad-request`
//! response; oversized or mid-frame-truncated input closes the connection
//! after (when possible) a final error frame. The server never panics or
//! hangs on client behaviour — the protocol tests storm it with garbage.
//!
//! Connections also carry **idle timeouts** ([`ServerConfig`]): a client
//! that opens a socket and stalls mid-frame (a slow-loris writer) or stops
//! draining its replies is reaped when the read or write deadline fires —
//! the thread exits cleanly and every slot it held is released through the
//! normal cancellation path. Chaos-enabled servers (`ServerConfig::chaos`)
//! additionally honour the process-wide [`gql_guard::fault`] plan's
//! `torn_replies` / `drop_replies` token budgets, cutting connections
//! mid-frame so the resilient client's retry path can be stormed.

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gql_guard::{fault, CancelToken};

use crate::json::Value;
use crate::proto::{decode_op, encode_response, read_frame, write_frame, MetricsView, Op};
use crate::service::{ErrorCode, Response, ServeHandle};

/// Socket-level policy for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Reap a connection whose next request frame has not fully arrived
    /// within this window. `None` waits forever (pre-hardening behaviour).
    pub read_timeout: Option<Duration>,
    /// Reap a connection that stops draining replies for this long.
    pub write_timeout: Option<Duration>,
    /// Honour the installed [`gql_guard::fault`] plan's reply seams
    /// (`torn_replies`, `drop_replies`). Off by default so bystander
    /// servers in the same process never steal another test's tokens.
    pub chaos: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            chaos: false,
        }
    }
}

/// A running TCP server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop; connection threads exit when their client
/// disconnects, stalls past the configured timeouts, or on their next
/// request after shutdown.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `handle`
    /// with the default [`ServerConfig`].
    pub fn bind(addr: &str, handle: ServeHandle) -> std::io::Result<Server> {
        Server::bind_with(addr, handle, ServerConfig::default())
    }

    /// Bind with an explicit socket policy.
    pub fn bind_with(
        addr: &str,
        handle: ServeHandle,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("gql-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let handle = handle.clone();
                    let _ = std::thread::Builder::new()
                        .name("gql-serve-conn".into())
                        .spawn(move || serve_connection(stream, handle, config));
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolved port for `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

/// How often the in-flight poll loop checks the socket for a disconnect.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

fn serve_connection(mut stream: TcpStream, handle: ServeHandle, config: ServerConfig) {
    // A stalled peer trips these deadlines and the thread reaps the
    // connection; failures to arm them are treated as a dead socket.
    // Replies also leave as two writes (length prefix, then body), so
    // disable Nagle or delayed ACK stalls every reply ~40ms.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(config.read_timeout).is_err()
        || stream.set_write_timeout(config.write_timeout).is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF, mid-frame EOF, oversized length, socket error:
            // either way this connection is done. For oversized frames try
            // to say so first. Timeouts (a slow-loris writer holding the
            // frame open, or pure idleness) reap the connection silently —
            // there is no request to answer.
            Ok(None) => return,
            Err(e) => {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    respond_err(&mut stream, ErrorCode::BadRequest, &e.to_string());
                }
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        let op = match decode_op(&frame) {
            Ok(op) => op,
            Err(msg) => {
                // Malformed JSON / fields: structured error, connection
                // stays usable (framing itself was intact).
                respond_err(&mut stream, ErrorCode::BadRequest, &msg);
                continue;
            }
        };
        let reply = match op {
            Op::Ping => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("pong".into(), Value::Bool(true)),
            ]),
            Op::Metrics(MetricsView::Counters) => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("metrics".into(), handle.metrics().to_value()),
            ]),
            Op::Metrics(MetricsView::Report) => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("report".into(), handle.metrics_report().to_value()),
            ]),
            Op::Metrics(MetricsView::Prometheus) => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                (
                    "prometheus".into(),
                    Value::str(handle.metrics_report().to_prometheus_text()),
                ),
            ]),
            Op::Metrics(MetricsView::Text) => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("stat".into(), Value::str(handle.metrics_report().to_text())),
            ]),
            Op::Reload { dataset: name, xml } => match handle.reload_xml(&name, &xml) {
                Ok(dataset) => Value::Obj(vec![
                    ("ok".into(), Value::Bool(true)),
                    (
                        "reload".into(),
                        Value::Obj(vec![
                            ("dataset".into(), Value::str(dataset.name())),
                            ("epoch".into(), Value::count(dataset.epoch())),
                            (
                                "draining".into(),
                                Value::count(handle.catalog().draining() as u64),
                            ),
                        ]),
                    ),
                ]),
                Err(resp) => encode_response(&resp),
            },
            Op::Query(req) => {
                let resp = run_watching_disconnect(&handle, &req, &stream);
                encode_response(&resp)
            }
            Op::Batch(reqs) => {
                // Batched submission shares the catalog snapshot and plan
                // warmup inside the service; disconnect-watching covers the
                // whole batch via one shared token.
                let responses = handle.submit_batch(&reqs);
                Value::Obj(vec![
                    ("ok".into(), Value::Bool(true)),
                    (
                        "batch".into(),
                        Value::Arr(responses.iter().map(encode_response).collect()),
                    ),
                ])
            }
        };
        if send_reply(&mut stream, reply.render().as_bytes(), config.chaos).is_err() {
            return;
        }
    }
}

/// Write one reply frame, honouring the chaos seams when enabled: a
/// `drop_replies` token vanishes the reply entirely (the client sees a
/// mid-stream disconnect), a `torn_replies` token writes the length prefix
/// plus half the body before cutting the socket (mid-frame EOF). Both
/// close the connection so the fault is unambiguous on the wire.
fn send_reply(stream: &mut TcpStream, payload: &[u8], chaos: bool) -> std::io::Result<()> {
    if chaos {
        if fault::take_drop_reply() {
            let _ = stream.shutdown(Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "fault: dropped reply",
            ));
        }
        if fault::take_torn_reply() {
            let _ = stream.write_all(&(payload.len() as u32).to_be_bytes());
            let _ = stream.write_all(&payload[..payload.len() / 2]);
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "fault: torn reply",
            ));
        }
    }
    write_frame(stream, payload)
}

/// Run one query, cancelling it if the client hangs up mid-flight.
fn run_watching_disconnect(
    handle: &ServeHandle,
    req: &crate::service::Request,
    stream: &TcpStream,
) -> Response {
    let cancel = CancelToken::new();
    let mut pending = match handle.submit_cancellable(req, cancel.clone()) {
        Ok(p) => p,
        Err(immediate) => return immediate,
    };
    loop {
        match pending.wait_timeout(POLL_INTERVAL) {
            Ok(resp) => return resp,
            Err(still_pending) => pending = still_pending,
        }
        if client_gone(stream) {
            // Trip the token; keep waiting for the worker's trip report —
            // the write below will likely fail, but the slot must be
            // released through the normal path either way.
            cancel.cancel();
        }
    }
}

/// Peek the socket without blocking: `Ok(0)` is EOF (client hung up).
/// Pipelined request bytes also show up here, which is fine — peeking
/// consumes nothing.
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = matches!(stream.peek(&mut probe), Ok(0));
    let _ = stream.set_nonblocking(false);
    gone
}

fn respond_err(stream: &mut TcpStream, code: ErrorCode, message: &str) {
    let frame = encode_response(&Response::err(code, message)).render();
    let _ = write_frame(stream, frame.as_bytes());
    let _ = stream.flush();
}

/// A minimal blocking client for tests, the CLI and the load driver.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Send one JSON request and read one JSON response.
    pub fn roundtrip(&mut self, request: &Value) -> std::io::Result<Value> {
        write_frame(&mut self.stream, request.render().as_bytes())?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        let text = String::from_utf8(frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Value::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// The raw stream (for tests that need to misbehave on purpose).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
