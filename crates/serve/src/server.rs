//! The TCP front end: an accept loop, one thread per connection, and
//! disconnect-triggered cancellation.
//!
//! While a query is in flight the connection thread polls both the
//! response channel and the socket; a client that hangs up (EOF on peek)
//! trips the request's `CancelToken`, the engine aborts at its next
//! checkpoint, and the worker's slot frees — a dead client cannot pin a
//! tenant's envelope. Malformed frames get a structured `bad-request`
//! response; oversized or mid-frame-truncated input closes the connection
//! after (when possible) a final error frame. The server never panics or
//! hangs on client behaviour — the protocol tests storm it with garbage.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gql_guard::CancelToken;

use crate::json::Value;
use crate::proto::{decode_op, encode_response, read_frame, write_frame, MetricsView, Op};
use crate::service::{ErrorCode, Response, ServeHandle};

/// A running TCP server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop; connection threads exit when their client
/// disconnects or on their next request.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `handle`.
    pub fn bind(addr: &str, handle: ServeHandle) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("gql-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let handle = handle.clone();
                    let _ = std::thread::Builder::new()
                        .name("gql-serve-conn".into())
                        .spawn(move || serve_connection(stream, handle));
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolved port for `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

/// How often the in-flight poll loop checks the socket for a disconnect.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

fn serve_connection(mut stream: TcpStream, handle: ServeHandle) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF, mid-frame EOF, oversized length, socket error:
            // either way this connection is done. For oversized frames try
            // to say so first.
            Ok(None) => return,
            Err(e) => {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    respond_err(&mut stream, ErrorCode::BadRequest, &e.to_string());
                }
                return;
            }
        };
        let op = match decode_op(&frame) {
            Ok(op) => op,
            Err(msg) => {
                // Malformed JSON / fields: structured error, connection
                // stays usable (framing itself was intact).
                respond_err(&mut stream, ErrorCode::BadRequest, &msg);
                continue;
            }
        };
        let reply = match op {
            Op::Ping => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("pong".into(), Value::Bool(true)),
            ]),
            Op::Metrics(MetricsView::Counters) => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("metrics".into(), handle.metrics().to_value()),
            ]),
            Op::Metrics(MetricsView::Report) => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("report".into(), handle.metrics_report().to_value()),
            ]),
            Op::Metrics(MetricsView::Prometheus) => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                (
                    "prometheus".into(),
                    Value::str(handle.metrics_report().to_prometheus_text()),
                ),
            ]),
            Op::Metrics(MetricsView::Text) => Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("stat".into(), Value::str(handle.metrics_report().to_text())),
            ]),
            Op::Query(req) => {
                let resp = run_watching_disconnect(&handle, &req, &stream);
                encode_response(&resp)
            }
            Op::Batch(reqs) => {
                // Batched submission shares the catalog snapshot and plan
                // warmup inside the service; disconnect-watching covers the
                // whole batch via one shared token.
                let responses = handle.submit_batch(&reqs);
                Value::Obj(vec![
                    ("ok".into(), Value::Bool(true)),
                    (
                        "batch".into(),
                        Value::Arr(responses.iter().map(encode_response).collect()),
                    ),
                ])
            }
        };
        if write_frame(&mut stream, reply.render().as_bytes()).is_err() {
            return;
        }
    }
}

/// Run one query, cancelling it if the client hangs up mid-flight.
fn run_watching_disconnect(
    handle: &ServeHandle,
    req: &crate::service::Request,
    stream: &TcpStream,
) -> Response {
    let cancel = CancelToken::new();
    let mut pending = match handle.submit_cancellable(req, cancel.clone()) {
        Ok(p) => p,
        Err(immediate) => return immediate,
    };
    loop {
        match pending.wait_timeout(POLL_INTERVAL) {
            Ok(resp) => return resp,
            Err(still_pending) => pending = still_pending,
        }
        if client_gone(stream) {
            // Trip the token; keep waiting for the worker's trip report —
            // the write below will likely fail, but the slot must be
            // released through the normal path either way.
            cancel.cancel();
        }
    }
}

/// Peek the socket without blocking: `Ok(0)` is EOF (client hung up).
/// Pipelined request bytes also show up here, which is fine — peeking
/// consumes nothing.
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = matches!(stream.peek(&mut probe), Ok(0));
    let _ = stream.set_nonblocking(false);
    gone
}

fn respond_err(stream: &mut TcpStream, code: ErrorCode, message: &str) {
    let frame = encode_response(&Response::err(code, message)).render();
    let _ = write_frame(stream, frame.as_bytes());
    let _ = stream.flush();
}

/// A minimal blocking client for tests, the CLI and the load driver.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Send one JSON request and read one JSON response.
    pub fn roundtrip(&mut self, request: &Value) -> std::io::Result<Value> {
        write_frame(&mut self.stream, request.render().as_bytes())?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        let text = String::from_utf8(frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Value::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// The raw stream (for tests that need to misbehave on purpose).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
