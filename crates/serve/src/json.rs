//! A minimal JSON value: parse and render, nothing else.
//!
//! The workspace is dependency-free by design, so the wire protocol gets a
//! small hand-rolled JSON layer instead of serde. Objects keep insertion
//! order (a `Vec` of pairs) so every rendering is deterministic — the
//! protocol tests pin responses byte-for-byte. Numbers are `f64`, which is
//! exact for every counter this service ever sends (u64 counters stay well
//! under 2^53 in practice; latencies and rates are floats anyway).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object; duplicate keys are kept as parsed (lookup
    /// returns the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Value {
        Value::Num(n.into())
    }

    /// Counter-friendly constructor (u64 → f64; exact below 2^53).
    pub fn count(n: u64) -> Value {
        Value::Num(n as f64)
    }

    /// Field lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting bound: malformed deeply-nested input must not overflow the
/// stack (the protocol accepts frames from untrusted clients).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    pairs.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte `{}` at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates render as U+FFFD; the service never
                            // emits them, so round-tripping is unaffected.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-12",
            "3.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"x\"}}",
        ] {
            let v = Value::parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(v.render(), src, "canonical form roundtrips");
            assert_eq!(Value::parse(&v.render()), Ok(v), "reparse agrees");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::str("line\nquote\"slash\\tab\tctrl\u{1}");
        let rendered = v.render();
        assert_eq!(Value::parse(&rendered), Ok(v));
        assert!(rendered.contains("\\n") && rendered.contains("\\u0001"));
        assert_eq!(Value::parse("\"\\u00e9\\/\"").unwrap(), Value::str("é/"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "nan",
            "01x",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject: {bad}");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"a\":[1]}").unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
