//! The thread-pooled query service and its in-process [`ServeHandle`].
//!
//! Request lifecycle: resolve tenant → resolve dataset (fingerprint
//! re-verified) → parse the query → **admit** against the tenant's
//! envelope (structured `overloaded` rejection, never an unbounded queue —
//! the work queue only ever holds admitted jobs, so admission *is* the
//! bound) → execute on a pool worker under `Guard::with_cancel` → reply.
//!
//! Every run is traced, whether or not the client asked for a profile: the
//! per-request `ExecutionProfile` is where the engine reports plan-cache
//! and index-cache warmth, and the service folds those notes into its
//! warm/cold metrics counters. Cancellation (client disconnect, or an
//! explicit [`Pending::cancel`]) trips the request's `CancelToken`; the
//! engine aborts at its next checkpoint and the *partial-progress trip
//! report* comes back in the response — cancelled work is reported, not
//! dropped.

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gql_core::{CoreError, Engine, QueryKind};
use gql_guard::{fault, Budget, CancelToken, Guard, LimitKind};
use gql_plan::CacheStats;
use gql_trace::Trace;

use crate::catalog::{Catalog, Dataset, EpochPin};
use crate::json::Value;
use crate::telemetry::{MetricsReport, RequestMeta, Telemetry, TelemetryConfig};
use crate::tenant::{AdmitDenied, Permit, TenantMetrics, TenantRegistry};

/// One query submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub tenant: String,
    /// Catalog dataset name.
    pub dataset: String,
    /// Query language: `xmlgl` | `wglog` | `xpath`.
    pub kind: String,
    /// Query source text.
    pub query: String,
    /// Attach the execution profile (JSON + deterministic shape) to the
    /// response.
    pub profile: bool,
    /// Idempotency key. A retried request carrying the same id is
    /// deduplicated at the worker boundary: the query executes at most
    /// once, and retries receive the original's response (joining it if
    /// still in flight). Keys are scoped per tenant.
    pub request_id: Option<String>,
}

impl Request {
    pub fn new(tenant: &str, dataset: &str, kind: &str, query: &str) -> Request {
        Request {
            tenant: tenant.to_string(),
            dataset: dataset.to_string(),
            kind: kind.to_string(),
            query: query.to_string(),
            profile: false,
            request_id: None,
        }
    }

    pub fn with_profile(mut self) -> Request {
        self.profile = true;
        self
    }

    /// Attach an idempotency key (see [`Request::request_id`]).
    pub fn with_request_id(mut self, id: impl Into<String>) -> Request {
        self.request_id = Some(id.into());
        self
    }
}

/// Structured error classes of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused the request (envelope exhausted).
    Overloaded,
    /// A time-window quota rejected the request; the error envelope
    /// carries `retry_after_ms`.
    RateLimited,
    UnknownTenant,
    UnknownDataset,
    /// Malformed request: unknown kind, unparseable query, bad frame.
    BadRequest,
    /// Static analysis rejected the program.
    Rejected,
    /// A resource budget tripped mid-run (report attached).
    Budget,
    /// The request's cancel token tripped mid-run (report attached).
    Cancelled,
    /// Engine failure.
    Engine,
}

impl ErrorCode {
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::RateLimited => "rate_limited",
            ErrorCode::UnknownTenant => "unknown-tenant",
            ErrorCode::UnknownDataset => "unknown-dataset",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Rejected => "rejected",
            ErrorCode::Budget => "budget",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Engine => "engine",
        }
    }

    pub fn from_name(name: &str) -> Option<ErrorCode> {
        [
            ErrorCode::Overloaded,
            ErrorCode::RateLimited,
            ErrorCode::UnknownTenant,
            ErrorCode::UnknownDataset,
            ErrorCode::BadRequest,
            ErrorCode::Rejected,
            ErrorCode::Budget,
            ErrorCode::Cancelled,
            ErrorCode::Engine,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// A successful query response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOk {
    pub xml: String,
    pub result_count: u64,
    pub eval_us: u64,
    /// Rendered logical plan (provenance).
    pub plan: String,
    /// Plan-cache outcome for this request: `hit` | `miss` | `replan`.
    pub plan_cache: String,
    /// Index/instance-cache outcome: `hit` | `miss` | `cold`.
    pub index_cache: String,
    /// The catalog epoch of the dataset this query executed against —
    /// exactly one per reply; a reply never mixes epochs.
    pub epoch: u64,
    /// Execution profile JSON, when requested.
    pub profile: Option<String>,
    /// Deterministic profile shape (duration-free), when requested.
    pub shape: Option<String>,
}

/// A structured error response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryErr {
    pub code: ErrorCode,
    pub message: String,
    /// Partial-progress trip report shape, for budget/cancellation errors.
    pub report: Option<String>,
    /// For `rate_limited` errors: milliseconds until the quota window
    /// rolls over (the earliest useful retry).
    pub retry_after_ms: Option<u64>,
}

/// The service's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Ok(Box<QueryOk>),
    Err(QueryErr),
}

impl Response {
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Err(QueryErr {
            code,
            message: message.into(),
            report: None,
            retry_after_ms: None,
        })
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok(_))
    }

    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            Response::Ok(_) => None,
            Response::Err(e) => Some(e.code),
        }
    }
}

/// Service-level cumulative counters plus per-tenant and per-dataset views.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceMetrics {
    pub submitted: u64,
    pub admitted: u64,
    /// Admission-control rejections (`overloaded` or `rate_limited`): the
    /// tenant's envelope or quota had no room.
    pub rejected: u64,
    /// Time-window quota rejections (already counted in `rejected`).
    pub rate_limited: u64,
    /// Structured refusals before admission (unknown tenant/dataset, bad
    /// request, failed fingerprint). The conservation law is
    /// `admitted + rejected + refused + deduped == submitted`.
    pub refused: u64,
    /// Idempotent retries answered from the dedup map without executing
    /// (the fourth conservation class: neither admitted nor rejected nor
    /// refused, but every one of them submitted).
    pub deduped: u64,
    pub completed: u64,
    pub cancelled: u64,
    pub budget_tripped: u64,
    pub failed: u64,
    /// Plan-cache warmth observed through per-request traces.
    pub plan_warm: u64,
    pub plan_cold: u64,
    pub plan_replans: u64,
    /// Index/instance-cache warmth observed through per-request traces.
    pub index_warm: u64,
    pub index_cold: u64,
    pub tenants: Vec<(String, TenantMetrics)>,
    /// Per-dataset plan-cache counter snapshots (always consistent: reads
    /// the seqlock stats cell, see `gql_plan::StatsCell`).
    pub datasets: Vec<(String, CacheStats)>,
}

impl ServiceMetrics {
    pub fn to_value(&self) -> Value {
        let tenants = self
            .tenants
            .iter()
            .map(|(name, m)| {
                Value::Obj(vec![
                    ("name".into(), Value::str(name.clone())),
                    ("submitted".into(), Value::count(m.submitted)),
                    ("admitted".into(), Value::count(m.admitted)),
                    ("rejected".into(), Value::count(m.rejected)),
                    ("rate_limited".into(), Value::count(m.rate_limited)),
                    ("refused".into(), Value::count(m.refused)),
                    ("peak_in_flight".into(), Value::count(m.peak_in_flight)),
                    ("peak_pool_draw".into(), Value::count(m.peak_pool_draw)),
                ])
            })
            .collect();
        let datasets = self
            .datasets
            .iter()
            .map(|(name, s)| {
                Value::Obj(vec![
                    ("name".into(), Value::str(name.clone())),
                    ("plan_hits".into(), Value::count(s.hits)),
                    ("plan_misses".into(), Value::count(s.misses)),
                    ("plan_evictions".into(), Value::count(s.evictions)),
                    ("plan_replans".into(), Value::count(s.replans)),
                    ("plan_lookups".into(), Value::count(s.lookups)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("submitted".into(), Value::count(self.submitted)),
            ("admitted".into(), Value::count(self.admitted)),
            ("rejected".into(), Value::count(self.rejected)),
            ("rate_limited".into(), Value::count(self.rate_limited)),
            ("refused".into(), Value::count(self.refused)),
            ("deduped".into(), Value::count(self.deduped)),
            ("completed".into(), Value::count(self.completed)),
            ("cancelled".into(), Value::count(self.cancelled)),
            ("budget_tripped".into(), Value::count(self.budget_tripped)),
            ("failed".into(), Value::count(self.failed)),
            ("plan_warm".into(), Value::count(self.plan_warm)),
            ("plan_cold".into(), Value::count(self.plan_cold)),
            ("plan_replans".into(), Value::count(self.plan_replans)),
            ("index_warm".into(), Value::count(self.index_warm)),
            ("index_cold".into(), Value::count(self.index_cold)),
            ("tenants".into(), Value::Arr(tenants)),
            ("datasets".into(), Value::Arr(datasets)),
        ])
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    refused: AtomicU64,
    deduped: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    budget_tripped: AtomicU64,
    failed: AtomicU64,
    plan_warm: AtomicU64,
    plan_cold: AtomicU64,
    plan_replans: AtomicU64,
    index_warm: AtomicU64,
    index_cold: AtomicU64,
}

/// One unit of admitted work.
struct Job {
    query: QueryKind,
    dataset: Arc<Dataset>,
    budget: Budget,
    cancel: CancelToken,
    want_profile: bool,
    reply: mpsc::Sender<Response>,
    /// Telemetry context minted at admission (`None` when telemetry is
    /// disabled — the job then carries zero extra weight).
    meta: Option<RequestMeta>,
    /// Dedup-map key claimed at admission (tenant-scoped request id);
    /// the worker publishes the response under it after execution.
    dedup_key: Option<String>,
    /// Held for the duration of execution; dropping releases the tenant's
    /// slot and pool reservation (even on worker panic — the permit drops
    /// with the job).
    _permit: Permit,
    /// Pins the dataset's catalog epoch for the duration of execution;
    /// the old epoch's drain completes only when every pin releases.
    _epoch: EpochPin,
}

/// State of one idempotency key in the dedup map.
enum DedupEntry {
    /// Claimed at admission; retries arriving meanwhile park a waiter
    /// channel here and receive the original's response on publish.
    InFlight(Vec<mpsc::Sender<Response>>),
    /// Published at the worker boundary; retries get a clone.
    Done(Response),
}

/// Bounded idempotency map: request id → in-flight waiters or the final
/// response. Only settled (`Done`) entries are evicted, oldest first, so
/// an in-flight claim can never be lost to capacity pressure.
struct Dedup {
    capacity: usize,
    /// Publication order of settled keys, for FIFO eviction.
    settled: VecDeque<String>,
    entries: HashMap<String, DedupEntry>,
}

impl Dedup {
    fn new(capacity: usize) -> Dedup {
        Dedup {
            capacity: capacity.max(1),
            settled: VecDeque::new(),
            entries: HashMap::new(),
        }
    }
}

/// Outcome of claiming an idempotency key at submission.
enum DedupClaim {
    /// The key is ours: execute, then publish under it.
    Fresh,
    /// Already settled: answer with the original response, no execution.
    Hit(Response),
    /// Original still in flight: wait on its publication.
    Wait(mpsc::Receiver<Response>),
}

struct Inner {
    catalog: Arc<Catalog>,
    tenants: Arc<TenantRegistry>,
    /// `None` after shutdown. The queue is unbounded *by type* but bounded
    /// in fact: only admitted jobs enter it, and admission caps in-flight
    /// work per tenant.
    queue: Mutex<Option<mpsc::Sender<Job>>>,
    counters: Counters,
    telemetry: Arc<Telemetry>,
    dedup: Mutex<Dedup>,
    /// Consult the gql-guard fault seams (chaos testing). Off by default:
    /// the process-global fault plan must not leak into services that did
    /// not opt in.
    chaos: bool,
}

impl Inner {
    /// Claim `key` for a new submission, or join/replay the original.
    fn dedup_claim(&self, key: &str) -> DedupClaim {
        let mut d = self.dedup.lock().unwrap_or_else(|e| e.into_inner());
        match d.entries.get_mut(key) {
            Some(DedupEntry::Done(resp)) => DedupClaim::Hit(resp.clone()),
            Some(DedupEntry::InFlight(waiters)) => {
                let (tx, rx) = mpsc::channel();
                waiters.push(tx);
                DedupClaim::Wait(rx)
            }
            None => {
                d.entries
                    .insert(key.to_string(), DedupEntry::InFlight(Vec::new()));
                DedupClaim::Fresh
            }
        }
    }

    /// Publish the final response under `key` at the worker boundary:
    /// waiters are answered, later retries replay the stored copy, and
    /// the oldest settled entries are evicted past capacity.
    fn dedup_publish(&self, key: &str, resp: &Response) {
        let mut d = self.dedup.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(DedupEntry::InFlight(waiters)) = d
            .entries
            .insert(key.to_string(), DedupEntry::Done(resp.clone()))
        {
            for w in waiters {
                let _ = w.send(resp.clone());
            }
        }
        d.settled.push_back(key.to_string());
        while d.settled.len() > d.capacity {
            if let Some(old) = d.settled.pop_front() {
                d.entries.remove(&old);
            }
        }
    }

    /// Abandon a claim whose submission was refused or rejected before
    /// reaching a worker: the entry is removed (a retry is a fresh
    /// attempt — nothing executed) and any waiters get the refusal.
    fn dedup_abandon(&self, key: &str, resp: &Response) {
        let mut d = self.dedup.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(DedupEntry::InFlight(waiters)) = d.entries.remove(key) {
            for w in waiters {
                let _ = w.send(resp.clone());
            }
        }
    }
}

/// The long-lived service: a catalog, a tenant registry and a worker pool.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// Builder for [`Service`].
pub struct ServiceBuilder {
    catalog: Catalog,
    tenants: TenantRegistry,
    workers: usize,
    telemetry: TelemetryConfig,
    dedup_capacity: usize,
    chaos: bool,
}

impl ServiceBuilder {
    pub fn new() -> ServiceBuilder {
        ServiceBuilder {
            catalog: Catalog::new(),
            tenants: TenantRegistry::new(),
            workers: 4,
            telemetry: TelemetryConfig::default(),
            dedup_capacity: 1024,
            chaos: false,
        }
    }

    /// How many settled idempotency keys the dedup map retains (FIFO
    /// eviction; in-flight claims are never evicted).
    pub fn dedup_capacity(mut self, n: usize) -> ServiceBuilder {
        self.dedup_capacity = n.max(1);
        self
    }

    /// Opt this service into the gql-guard chaos seams (`panic_jobs`
    /// etc.). The fault plan is process-global; only opted-in services
    /// consume its tokens, so chaos tests never poison bystanders.
    pub fn chaos(mut self, on: bool) -> ServiceBuilder {
        self.chaos = on;
        self
    }

    pub fn workers(mut self, n: usize) -> ServiceBuilder {
        self.workers = n.max(1);
        self
    }

    pub fn catalog(mut self, catalog: Catalog) -> ServiceBuilder {
        self.catalog = catalog;
        self
    }

    pub fn tenants(mut self, tenants: TenantRegistry) -> ServiceBuilder {
        self.tenants = tenants;
        self
    }

    /// Configure the telemetry plane (enabled with defaults if not set).
    pub fn telemetry(mut self, config: TelemetryConfig) -> ServiceBuilder {
        self.telemetry = config;
        self
    }

    pub fn build(self) -> Service {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let tenant_names: Vec<String> = self.tenants.iter().map(|t| t.name().to_string()).collect();
        let inner = Arc::new(Inner {
            catalog: Arc::new(self.catalog),
            tenants: Arc::new(self.tenants),
            queue: Mutex::new(Some(tx)),
            counters: Counters::default(),
            telemetry: Arc::new(Telemetry::build(&self.telemetry, &tenant_names)),
            dedup: Mutex::new(Dedup::new(self.dedup_capacity)),
            chaos: self.chaos,
        });
        let workers = (0..self.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("gql-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing.
                        let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                            Ok(job) => job,
                            Err(_) => return, // all senders gone: shutdown
                        };
                        inner.telemetry.on_dequeue(job.meta.as_ref());
                        // Supervise the run: a panicking job (engine bug,
                        // or an injected `panic_jobs` fault) must not take
                        // the worker down — the thread catches, answers
                        // structurally and keeps draining the queue. The
                        // permit and epoch pin are on the job, so even the
                        // panic path releases them below.
                        let response = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                            execute(&inner, &job)
                        })) {
                            Ok(response) => response,
                            Err(_) => {
                                inner.counters.failed.fetch_add(1, Ordering::SeqCst);
                                inner.telemetry.on_reply(
                                    job.meta.as_ref(),
                                    job.dataset.name(),
                                    "engine",
                                    0,
                                    "",
                                    &[],
                                    None,
                                );
                                Response::err(
                                    ErrorCode::Engine,
                                    "worker panicked mid-run (supervised; pool intact)",
                                )
                            }
                        };
                        // Publish to the dedup map at the worker boundary:
                        // from here on, a retry of this request id replays
                        // this response instead of executing again.
                        if let Some(key) = &job.dedup_key {
                            inner.dedup_publish(key, &response);
                        }
                        // Release the admission permit *before* replying:
                        // once a client holds its response, its slot is
                        // observably free (a sequential resubmit can never
                        // race its own previous permit). The epoch pin
                        // releases with it, completing the drain account.
                        let Job {
                            reply,
                            _permit: permit,
                            _epoch: epoch_pin,
                            ..
                        } = job;
                        drop((permit, epoch_pin));
                        let _ = reply.send(response);
                    })
                    .expect("spawn worker")
            })
            .collect();
        Service { inner, workers }
    }
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder::new()
    }
}

impl Service {
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// A cloneable in-process submission handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.inner.catalog
    }

    /// Stop accepting work and join the pool. In-flight jobs finish;
    /// subsequent submissions through outstanding handles are rejected.
    pub fn shutdown(mut self) {
        *self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()) = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        *self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()) = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A submitted-but-unresolved query: wait for the response, or cancel.
pub struct Pending {
    rx: mpsc::Receiver<Response>,
    cancel: CancelToken,
}

impl Pending {
    /// The request's cancel token (cloneable; trip it to abort the run at
    /// the engine's next checkpoint).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or_else(|_| {
            Response::err(ErrorCode::Engine, "worker dropped the reply channel")
        })
    }

    /// Poll with a timeout; `Err(self)` if still running.
    pub fn wait_timeout(self, d: Duration) -> Result<Response, Pending> {
        match self.rx.recv_timeout(d) {
            Ok(r) => Ok(r),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(Response::err(
                ErrorCode::Engine,
                "worker dropped the reply channel",
            )),
        }
    }
}

/// In-process submission API: what the TCP server, the tests and the load
/// driver all speak. Clones share one service.
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<Inner>,
}

impl ServeHandle {
    /// Submit one query and block for its response.
    pub fn submit(&self, req: &Request) -> Response {
        match self.submit_cancellable(req, CancelToken::new()) {
            Ok(pending) => pending.wait(),
            Err(immediate) => immediate,
        }
    }

    /// Submit with a caller-supplied cancel token. `Err` is an immediate
    /// structured rejection (bad request, unknown names, overloaded).
    pub fn submit_cancellable(
        &self,
        req: &Request,
        cancel: CancelToken,
    ) -> Result<Pending, Response> {
        self.submit_with_surface(req, cancel, "query")
    }

    fn submit_with_surface(
        &self,
        req: &Request,
        cancel: CancelToken,
        surface: &'static str,
    ) -> Result<Pending, Response> {
        let c = &self.inner.counters;
        let tele = &self.inner.telemetry;
        c.submitted.fetch_add(1, Ordering::SeqCst);
        // Idempotency first: a retried request id is answered from (or
        // parked on) the original execution before any tenant accounting,
        // so the per-tenant conservation law is untouched by replays.
        let dedup_key = req
            .request_id
            .as_deref()
            .map(|id| format!("{}\u{1f}{id}", req.tenant));
        if let Some(key) = &dedup_key {
            match self.inner.dedup_claim(key) {
                DedupClaim::Fresh => {}
                DedupClaim::Hit(resp) => {
                    c.deduped.fetch_add(1, Ordering::SeqCst);
                    tele.on_submitted(None);
                    return Err(resp);
                }
                DedupClaim::Wait(rx) => {
                    c.deduped.fetch_add(1, Ordering::SeqCst);
                    tele.on_submitted(None);
                    return Ok(Pending { rx, cancel });
                }
            }
        }
        // Any refusal/rejection below must abandon the fresh claim so a
        // later retry is a clean new attempt (nothing executed).
        let fail = |resp: Response| -> Response {
            if let Some(key) = &dedup_key {
                self.inner.dedup_abandon(key, &resp);
            }
            resp
        };
        let Some(tenant) = self.inner.tenants.get(&req.tenant).cloned() else {
            // Unknown tenant: nothing to attribute the refusal to beyond
            // the service-wide counters and windows.
            c.refused.fetch_add(1, Ordering::SeqCst);
            tele.on_submitted(None);
            return Err(fail(Response::err(
                ErrorCode::UnknownTenant,
                format!("unknown tenant: {}", req.tenant),
            )));
        };
        tenant.note_submitted();
        tele.on_submitted(Some(tenant.name()));
        let (dataset, query) = match self.resolve_payload(req) {
            Ok(resolved) => resolved,
            Err(resp) => {
                c.refused.fetch_add(1, Ordering::SeqCst);
                tenant.note_refused();
                return Err(fail(resp));
            }
        };
        let permit = match tenant.try_admit() {
            Ok(permit) => permit,
            Err(denied) => {
                c.rejected.fetch_add(1, Ordering::SeqCst);
                tele.on_rejected(tenant.name());
                let resp = match denied {
                    AdmitDenied::Overloaded => Response::err(
                        ErrorCode::Overloaded,
                        format!(
                            "tenant `{}` envelope exhausted ({} in flight)",
                            req.tenant,
                            tenant.in_flight()
                        ),
                    ),
                    AdmitDenied::RateLimited { retry_after_ms } => {
                        c.rate_limited.fetch_add(1, Ordering::SeqCst);
                        Response::Err(QueryErr {
                            code: ErrorCode::RateLimited,
                            message: format!(
                                "tenant `{}` rate quota exhausted; retry in {retry_after_ms}ms",
                                req.tenant
                            ),
                            report: None,
                            retry_after_ms: Some(retry_after_ms),
                        })
                    }
                };
                return Err(fail(resp));
            }
        };
        // Pin the dataset's epoch for the whole execution: the pin's
        // release (with the permit, at the worker boundary) is what lets
        // a reload's drain retire this epoch.
        let epoch_pin = dataset.pin();
        c.admitted.fetch_add(1, Ordering::SeqCst);
        let meta = tele.on_admitted(tenant.name(), surface, &req.query);
        let (reply, rx) = mpsc::channel();
        let job = Job {
            query,
            dataset,
            budget: tenant.envelope().per_query.clone(),
            cancel: cancel.clone(),
            want_profile: req.profile,
            reply,
            meta,
            dedup_key: dedup_key.clone(),
            _permit: permit,
            _epoch: epoch_pin,
        };
        let sender = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        match sender {
            Some(tx) => {
                // The job (and its permit) moves to the worker; a send can
                // only fail if the pool is gone, which shutdown prevents
                // while senders exist.
                tx.send(job)
                    .map_err(|_| fail(Response::err(ErrorCode::Engine, "service pool is gone")))?;
                Ok(Pending { rx, cancel })
            }
            None => Err(fail(Response::err(
                ErrorCode::Overloaded,
                "service is shutting down",
            ))),
        }
    }

    /// Submit a batch sharing one catalog snapshot and plan-cache warmup:
    /// the first occurrence of each distinct (dataset, kind, query) runs
    /// first (the *leader*, planting the plan-cache entry), then every
    /// repeat runs warm, concurrently. Responses come back in request
    /// order.
    pub fn submit_batch(&self, reqs: &[Request]) -> Vec<Response> {
        let mut leaders: Vec<usize> = Vec::new();
        let mut followers: Vec<usize> = Vec::new();
        let mut seen: Vec<(&str, &str, &str)> = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            let key = (r.dataset.as_str(), r.kind.as_str(), r.query.as_str());
            if seen.contains(&key) {
                followers.push(i);
            } else {
                seen.push(key);
                leaders.push(i);
            }
        }
        let mut out: Vec<Option<Response>> = (0..reqs.len()).map(|_| None).collect();
        for wave in [leaders, followers] {
            let pending: Vec<(usize, Result<Pending, Response>)> = wave
                .into_iter()
                .map(|i| {
                    (
                        i,
                        self.submit_with_surface(&reqs[i], CancelToken::new(), "batch"),
                    )
                })
                .collect();
            for (i, p) in pending {
                out[i] = Some(match p {
                    Ok(pending) => pending.wait(),
                    Err(immediate) => immediate,
                });
            }
        }
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Resolve the dataset and parse the query (the tenant is resolved
    /// first, separately, so refusals here attribute to it); an `Err` is
    /// the immediate structured rejection.
    fn resolve_payload(&self, req: &Request) -> Result<(Arc<Dataset>, QueryKind), Response> {
        let dataset = self.inner.catalog.get(&req.dataset).ok_or_else(|| {
            Response::err(
                ErrorCode::UnknownDataset,
                format!("unknown dataset: {}", req.dataset),
            )
        })?;
        if !dataset.verify() {
            return Err(Response::err(
                ErrorCode::Engine,
                format!("dataset `{}` failed fingerprint validation", req.dataset),
            ));
        }
        let query = parse_query(&req.kind, &req.query)
            .map_err(|msg| Response::err(ErrorCode::BadRequest, msg))?;
        Ok((dataset, query))
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        let c = &self.inner.counters;
        ServiceMetrics {
            submitted: c.submitted.load(Ordering::SeqCst),
            admitted: c.admitted.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            rate_limited: c.rate_limited.load(Ordering::SeqCst),
            refused: c.refused.load(Ordering::SeqCst),
            deduped: c.deduped.load(Ordering::SeqCst),
            completed: c.completed.load(Ordering::SeqCst),
            cancelled: c.cancelled.load(Ordering::SeqCst),
            budget_tripped: c.budget_tripped.load(Ordering::SeqCst),
            failed: c.failed.load(Ordering::SeqCst),
            plan_warm: c.plan_warm.load(Ordering::SeqCst),
            plan_cold: c.plan_cold.load(Ordering::SeqCst),
            plan_replans: c.plan_replans.load(Ordering::SeqCst),
            index_warm: c.index_warm.load(Ordering::SeqCst),
            index_cold: c.index_cold.load(Ordering::SeqCst),
            tenants: self
                .inner
                .tenants
                .iter()
                .map(|t| (t.name().to_string(), t.metrics()))
                .collect(),
            datasets: self
                .inner
                .catalog
                .snapshot()
                .iter()
                .map(|d| (d.name().to_string(), d.engine().plan_cache_stats()))
                .collect(),
        }
    }

    /// The live catalog (hot-reloadable; see [`Catalog::reload`]).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.inner.catalog
    }

    /// Hot-swap a dataset to freshly parsed XML at the next epoch — the
    /// in-process face of the `{"op":"reload"}` wire op. In-flight
    /// requests finish on the epoch they admitted under; the old epoch
    /// drains and is reaped when its last permit releases.
    pub fn reload_xml(&self, name: &str, xml: &str) -> Result<Arc<Dataset>, Response> {
        if self.inner.catalog.get(name).is_none() {
            return Err(Response::err(
                ErrorCode::UnknownDataset,
                format!("unknown dataset: {name}"),
            ));
        }
        self.inner
            .catalog
            .reload_xml(name, xml)
            .map_err(|e| Response::err(ErrorCode::BadRequest, e))
    }

    /// The service's telemetry plane (histograms, windows, events, slow
    /// log). Shared by every handle of one service.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.inner.telemetry
    }

    /// The full telemetry report: counters plus latency histograms, rate
    /// windows, recent request events and the slow-query log.
    pub fn metrics_report(&self) -> MetricsReport {
        self.inner.telemetry.report(self.metrics())
    }
}

/// Parse a `kind` + source into an engine query. Uses the unchecked
/// parsers: the engine's own static-analysis gate produces the structured
/// `rejected` response for ill-formed programs.
pub fn parse_query(kind: &str, query: &str) -> Result<QueryKind, String> {
    match kind {
        "xmlgl" => gql_xmlgl::dsl::parse_unchecked(query)
            .map(QueryKind::XmlGl)
            .map_err(|e| format!("XML-GL query does not parse: {e}")),
        "wglog" => gql_wglog::dsl::parse_unchecked(query)
            .map(QueryKind::WgLog)
            .map_err(|e| format!("WG-Log query does not parse: {e}")),
        "xpath" => Ok(QueryKind::XPath(query.to_string())),
        other => Err(format!("unknown query kind: {other}")),
    }
}

/// Run one admitted job and fold its cache notes into the service
/// counters. This is the telemetry reply site: exactly one histogram
/// record per admitted job, plus slow-query capture.
fn execute(inner: &Inner, job: &Job) -> Response {
    let c = &inner.counters;
    let tele = &inner.telemetry;
    tele.on_start(job.meta.as_ref());
    // Chaos seam: an injected pool fault poisons this job here — after
    // the start event, so the supervised catch in the worker loop keeps
    // every telemetry conservation law intact.
    if inner.chaos && fault::take_panic_job() {
        panic!("injected fault: panic_jobs");
    }
    let engine: &Engine = job.dataset.engine();
    let guard = Guard::with_cancel(job.budget.clone(), job.cancel.clone());
    let trace = Trace::profiling();
    let result = engine.run_governed(&job.query, job.dataset.doc(), &trace, &guard);
    let profile = trace.finish();
    // Slow-log material, pulled from the profile while it is still whole.
    // The compact plan note is written before evaluation starts, so it is
    // present even when the run tripped a budget mid-eval.
    let (plan_note, phases) = if job.meta.is_some() {
        let plan_note = profile
            .as_ref()
            .and_then(|p| p.find("plan"))
            .and_then(|n| n.note("plan"))
            .unwrap_or("")
            .to_string();
        let phases: Vec<(String, u64)> = profile
            .as_ref()
            .and_then(|p| p.roots.first())
            .map(|root| {
                root.children
                    .iter()
                    .map(|child| (child.name.clone(), (child.nanos / 1_000) as u64))
                    .collect()
            })
            .unwrap_or_default();
        (plan_note, phases)
    } else {
        (String::new(), Vec::new())
    };
    let (plan_cache, index_cache) = profile
        .as_ref()
        .map(|p| {
            let plan = p
                .find("plan")
                .and_then(|n| n.note("plan_cache"))
                .unwrap_or("")
                .to_string();
            // XML-GL/XPath report the index cache under `index`; WG-Log
            // reports its instance cache under `load`.
            let index = p
                .find("index")
                .or_else(|| p.find("load"))
                .and_then(|n| n.note("cache"))
                .unwrap_or("")
                .to_string();
            (plan, index)
        })
        .unwrap_or_default();
    match plan_cache.as_str() {
        "hit" => c.plan_warm.fetch_add(1, Ordering::SeqCst),
        "miss" => c.plan_cold.fetch_add(1, Ordering::SeqCst),
        "replan" => c.plan_replans.fetch_add(1, Ordering::SeqCst),
        _ => 0,
    };
    match index_cache.as_str() {
        "hit" => c.index_warm.fetch_add(1, Ordering::SeqCst),
        "miss" | "cold" => c.index_cold.fetch_add(1, Ordering::SeqCst),
        _ => 0,
    };
    let (response, outcome_class, eval_us, trip) = match result {
        Ok(outcome) => {
            c.completed.fetch_add(1, Ordering::SeqCst);
            let profile = profile.expect("profiling trace yields a profile");
            let eval_us = outcome.eval_time.as_micros() as u64;
            let resp = Response::Ok(Box::new(QueryOk {
                xml: outcome.output.to_xml_string(),
                result_count: outcome.result_count as u64,
                eval_us,
                plan: outcome.plan,
                plan_cache,
                index_cache,
                epoch: job.dataset.epoch(),
                profile: job.want_profile.then(|| profile.to_json()),
                shape: job.want_profile.then(|| profile.shape()),
            }));
            (resp, "ok", eval_us, None)
        }
        Err(CoreError::Budget(g)) => {
            let (code, class) = if g.kind == LimitKind::Cancelled {
                c.cancelled.fetch_add(1, Ordering::SeqCst);
                (ErrorCode::Cancelled, "cancelled")
            } else {
                c.budget_tripped.fetch_add(1, Ordering::SeqCst);
                (ErrorCode::Budget, "budget")
            };
            let report = g.report.shape();
            let resp = Response::Err(QueryErr {
                code,
                message: g.to_string(),
                report: Some(report.clone()),
                retry_after_ms: None,
            });
            (resp, class, 0, Some(report))
        }
        Err(e @ CoreError::Rejected { .. }) => {
            c.failed.fetch_add(1, Ordering::SeqCst);
            (
                Response::err(ErrorCode::Rejected, e.to_string()),
                "rejected",
                0,
                None,
            )
        }
        Err(e) => {
            c.failed.fetch_add(1, Ordering::SeqCst);
            (
                Response::err(ErrorCode::Engine, e.to_string()),
                "engine",
                0,
                None,
            )
        }
    };
    tele.on_reply(
        job.meta.as_ref(),
        job.dataset.name(),
        outcome_class,
        eval_us,
        &plan_note,
        &phases,
        trip.as_deref(),
    );
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::Envelope;

    fn demo_service() -> Service {
        let mut catalog = Catalog::new();
        catalog
            .register_xml(
                "bib",
                "<bib><book><title>a</title></book><book><title>b</title></book></bib>",
            )
            .unwrap();
        let mut tenants = TenantRegistry::new();
        tenants.register("public", Envelope::slots(8));
        Service::builder()
            .workers(2)
            .catalog(catalog)
            .tenants(tenants)
            .build()
    }

    #[test]
    fn submit_runs_and_reports_cache_warmth() {
        let service = demo_service();
        let h = service.handle();
        let req = Request::new("public", "bib", "xpath", "//title");
        let first = h.submit(&req);
        let Response::Ok(ok) = &first else {
            panic!("first run failed: {first:?}");
        };
        assert_eq!(ok.result_count, 2);
        assert_eq!(ok.plan_cache, "miss");
        assert_eq!(ok.index_cache, "hit", "catalog datasets are preloaded");
        let Response::Ok(warm) = h.submit(&req) else {
            panic!("warm run failed");
        };
        assert_eq!(warm.plan_cache, "hit");
        assert_eq!(warm.xml, ok.xml, "warm answer must be identical");
        let m = h.metrics();
        assert_eq!((m.submitted, m.admitted, m.completed), (2, 2, 2));
        assert_eq!((m.plan_cold, m.plan_warm, m.index_warm), (1, 1, 2));
        service.shutdown();
    }

    #[test]
    fn unknown_names_and_bad_queries_reject_without_admission() {
        let service = demo_service();
        let h = service.handle();
        let cases = [
            (
                Request::new("ghost", "bib", "xpath", "//a"),
                ErrorCode::UnknownTenant,
            ),
            (
                Request::new("public", "ghost", "xpath", "//a"),
                ErrorCode::UnknownDataset,
            ),
            (
                Request::new("public", "bib", "sql", "select"),
                ErrorCode::BadRequest,
            ),
            (
                Request::new("public", "bib", "xmlgl", "rule {"),
                ErrorCode::BadRequest,
            ),
        ];
        for (req, want) in cases {
            assert_eq!(h.submit(&req).error_code(), Some(want), "{req:?}");
        }
        let m = h.metrics();
        assert_eq!(m.submitted, 4);
        assert_eq!(m.admitted, 0, "pre-admission failures never admit");
        service.shutdown();
    }

    #[test]
    fn batch_warms_duplicates_and_preserves_order() {
        let service = demo_service();
        let h = service.handle();
        let q = Request::new("public", "bib", "xpath", "//title");
        let other = Request::new("public", "bib", "xpath", "/bib/book");
        let responses = h.submit_batch(&[q.clone(), other.clone(), q.clone(), q]);
        assert_eq!(responses.len(), 4);
        let oks: Vec<&QueryOk> = responses
            .iter()
            .map(|r| match r {
                Response::Ok(ok) => &**ok,
                e => panic!("batch item failed: {e:?}"),
            })
            .collect();
        assert_eq!(oks[0].xml, oks[2].xml);
        assert_eq!(oks[2].xml, oks[3].xml);
        assert_ne!(oks[0].xml, oks[1].xml, "order is request order");
        // The duplicate entries ran warm behind their leader.
        assert_eq!(oks[2].plan_cache, "hit");
        assert_eq!(oks[3].plan_cache, "hit");
        service.shutdown();
    }

    #[test]
    fn cancellation_returns_the_trip_report() {
        let service = demo_service();
        let h = service.handle();
        let cancel = CancelToken::new();
        cancel.cancel(); // pre-cancelled: trips at the first checkpoint
        let pending = h
            .submit_cancellable(&Request::new("public", "bib", "xpath", "//title"), cancel)
            .expect("admitted");
        let resp = pending.wait();
        let Response::Err(e) = &resp else {
            panic!("pre-cancelled run must not complete: {resp:?}");
        };
        assert_eq!(e.code, ErrorCode::Cancelled);
        let report = e.report.as_deref().expect("trip report is returned");
        assert!(
            report.starts_with("phase="),
            "shape-formatted report: {report}"
        );
        // The shared caches are not poisoned: the same query still runs.
        assert!(h
            .submit(&Request::new("public", "bib", "xpath", "//title"))
            .is_ok());
        assert_eq!(h.metrics().cancelled, 1);
        service.shutdown();
    }

    #[test]
    fn idempotent_retries_execute_at_most_once() {
        let service = demo_service();
        let h = service.handle();
        let req = Request::new("public", "bib", "xpath", "//title").with_request_id("r-1");
        let first = h.submit(&req);
        assert!(first.is_ok(), "original executes: {first:?}");
        let retry = h.submit(&req);
        assert_eq!(retry, first, "retry replays the original response");
        // A different id (and a different tenant scope) is a fresh run.
        let other =
            h.submit(&Request::new("public", "bib", "xpath", "//title").with_request_id("r-2"));
        assert!(other.is_ok());
        let m = h.metrics();
        assert_eq!((m.submitted, m.admitted, m.deduped), (3, 2, 1));
        assert_eq!(
            m.admitted + m.rejected + m.refused + m.deduped,
            m.submitted,
            "conservation with the dedup class"
        );
        service.shutdown();
    }

    #[test]
    fn deduped_rejections_are_not_cached() {
        let service = demo_service();
        let h = service.handle();
        // A refused submission (unknown dataset) abandons its claim: the
        // retry is a fresh attempt, not a replay.
        let bad = Request::new("public", "ghost", "xpath", "//a").with_request_id("r-9");
        assert_eq!(h.submit(&bad).error_code(), Some(ErrorCode::UnknownDataset));
        assert_eq!(h.submit(&bad).error_code(), Some(ErrorCode::UnknownDataset));
        let m = h.metrics();
        assert_eq!(m.deduped, 0, "refusals never enter the dedup map");
        assert_eq!(m.refused, 2);
        service.shutdown();
    }

    #[test]
    fn rate_limited_rejections_carry_retry_after() {
        let mut catalog = Catalog::new();
        catalog.register_xml("d", "<r><a/></r>").unwrap();
        let mut tenants = TenantRegistry::new();
        tenants.register("throttled", Envelope::slots(8).with_requests_per_sec(0));
        let service = Service::builder()
            .workers(1)
            .catalog(catalog)
            .tenants(tenants)
            .build();
        let h = service.handle();
        let resp = h.submit(&Request::new("throttled", "d", "xpath", "//a"));
        let Response::Err(e) = &resp else {
            panic!("zero quota must reject: {resp:?}");
        };
        assert_eq!(e.code, ErrorCode::RateLimited);
        assert_eq!(ErrorCode::RateLimited.name(), "rate_limited");
        let hint = e.retry_after_ms.expect("rate_limited carries the hint");
        assert!((1..=1000).contains(&hint));
        let m = h.metrics();
        assert_eq!((m.rejected, m.rate_limited), (1, 1));
        service.shutdown();
    }

    #[test]
    fn reload_swaps_epochs_and_drains_under_a_live_handle() {
        let service = demo_service();
        let h = service.handle();
        let req = Request::new("public", "bib", "xpath", "//title");
        let Response::Ok(before) = h.submit(&req) else {
            panic!("first run");
        };
        assert_eq!((before.epoch, before.result_count), (1, 2));

        let reloaded = h
            .reload_xml("bib", "<bib><book><title>only</title></book></bib>")
            .expect("reload succeeds");
        assert_eq!(reloaded.epoch(), 2);
        let Response::Ok(after) = h.submit(&req) else {
            panic!("post-reload run");
        };
        assert_eq!((after.epoch, after.result_count), (2, 1));
        assert_eq!(
            h.catalog().draining(),
            0,
            "idle old epoch reaps immediately"
        );
        assert!(h.reload_xml("ghost", "<r/>").is_err(), "unknown dataset");
        assert!(h.reload_xml("bib", "<broken").is_err(), "bad xml");
        service.shutdown();
    }

    #[test]
    fn injected_job_panic_is_supervised_and_the_pool_survives() {
        let mut catalog = Catalog::new();
        catalog
            .register_xml(
                "bib",
                "<bib><book><title>a</title></book><book><title>b</title></book></bib>",
            )
            .unwrap();
        let mut tenants = TenantRegistry::new();
        tenants.register("public", Envelope::slots(8));
        let service = Service::builder()
            .workers(2)
            .catalog(catalog)
            .tenants(tenants)
            .chaos(true)
            .build();
        let h = service.handle();
        let req = Request::new("public", "bib", "xpath", "//title");
        let poisoned = fault::with_plan(fault::FaultPlan::panic_jobs(1), || h.submit(&req));
        assert_eq!(
            poisoned.error_code(),
            Some(ErrorCode::Engine),
            "panicked job answers structurally: {poisoned:?}"
        );
        // The same (sole-ish) workers keep serving after the panic.
        for _ in 0..3 {
            assert!(h.submit(&req).is_ok(), "pool must survive the panic");
        }
        let m = h.metrics();
        assert_eq!(m.failed, 1);
        assert_eq!(m.completed, 3);
        assert_eq!(
            m.completed + m.cancelled + m.budget_tripped + m.failed,
            m.admitted,
            "outcome conservation holds through the panic path"
        );
        service.shutdown();
    }

    #[test]
    fn overload_rejects_structured_and_releases() {
        let mut catalog = Catalog::new();
        catalog.register_xml("d", "<r><a/></r>").unwrap();
        let mut tenants = TenantRegistry::new();
        tenants.register("t", Envelope::slots(1));
        let service = Service::builder()
            .workers(1)
            .catalog(catalog)
            .tenants(tenants)
            .build();
        let h = service.handle();
        // Hold the only slot with a cancellable query that we let finish
        // naturally — but first observe a rejection while it is in flight.
        let slow = Request::new("t", "d", "xpath", "//a");
        let held = h
            .submit_cancellable(&slow, CancelToken::new())
            .expect("first admission");
        // The held pending's job may or may not have started; either way
        // its permit is live until just before the worker replies, so a
        // second submission races admission. Rejection is only guaranteed
        // while the slot is held, so assert on the metrics invariant
        // instead.
        let second = h.submit(&slow);
        let _ = held.wait();
        let m = h.metrics();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.admitted + m.rejected, m.submitted);
        if let Some(code) = second.error_code() {
            assert_eq!(code, ErrorCode::Overloaded);
        }
        service.shutdown();
    }
}
