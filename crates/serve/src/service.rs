//! The thread-pooled query service and its in-process [`ServeHandle`].
//!
//! Request lifecycle: resolve tenant → resolve dataset (fingerprint
//! re-verified) → parse the query → **admit** against the tenant's
//! envelope (structured `overloaded` rejection, never an unbounded queue —
//! the work queue only ever holds admitted jobs, so admission *is* the
//! bound) → execute on a pool worker under `Guard::with_cancel` → reply.
//!
//! Every run is traced, whether or not the client asked for a profile: the
//! per-request `ExecutionProfile` is where the engine reports plan-cache
//! and index-cache warmth, and the service folds those notes into its
//! warm/cold metrics counters. Cancellation (client disconnect, or an
//! explicit [`Pending::cancel`]) trips the request's `CancelToken`; the
//! engine aborts at its next checkpoint and the *partial-progress trip
//! report* comes back in the response — cancelled work is reported, not
//! dropped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gql_core::{CoreError, Engine, QueryKind};
use gql_guard::{Budget, CancelToken, Guard, LimitKind};
use gql_plan::CacheStats;
use gql_trace::Trace;

use crate::catalog::{Catalog, Dataset};
use crate::json::Value;
use crate::telemetry::{MetricsReport, RequestMeta, Telemetry, TelemetryConfig};
use crate::tenant::{Permit, TenantMetrics, TenantRegistry};

/// One query submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub tenant: String,
    /// Catalog dataset name.
    pub dataset: String,
    /// Query language: `xmlgl` | `wglog` | `xpath`.
    pub kind: String,
    /// Query source text.
    pub query: String,
    /// Attach the execution profile (JSON + deterministic shape) to the
    /// response.
    pub profile: bool,
}

impl Request {
    pub fn new(tenant: &str, dataset: &str, kind: &str, query: &str) -> Request {
        Request {
            tenant: tenant.to_string(),
            dataset: dataset.to_string(),
            kind: kind.to_string(),
            query: query.to_string(),
            profile: false,
        }
    }

    pub fn with_profile(mut self) -> Request {
        self.profile = true;
        self
    }
}

/// Structured error classes of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused the request (envelope exhausted).
    Overloaded,
    UnknownTenant,
    UnknownDataset,
    /// Malformed request: unknown kind, unparseable query, bad frame.
    BadRequest,
    /// Static analysis rejected the program.
    Rejected,
    /// A resource budget tripped mid-run (report attached).
    Budget,
    /// The request's cancel token tripped mid-run (report attached).
    Cancelled,
    /// Engine failure.
    Engine,
}

impl ErrorCode {
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::UnknownTenant => "unknown-tenant",
            ErrorCode::UnknownDataset => "unknown-dataset",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Rejected => "rejected",
            ErrorCode::Budget => "budget",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Engine => "engine",
        }
    }

    pub fn from_name(name: &str) -> Option<ErrorCode> {
        [
            ErrorCode::Overloaded,
            ErrorCode::UnknownTenant,
            ErrorCode::UnknownDataset,
            ErrorCode::BadRequest,
            ErrorCode::Rejected,
            ErrorCode::Budget,
            ErrorCode::Cancelled,
            ErrorCode::Engine,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// A successful query response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOk {
    pub xml: String,
    pub result_count: u64,
    pub eval_us: u64,
    /// Rendered logical plan (provenance).
    pub plan: String,
    /// Plan-cache outcome for this request: `hit` | `miss` | `replan`.
    pub plan_cache: String,
    /// Index/instance-cache outcome: `hit` | `miss` | `cold`.
    pub index_cache: String,
    /// Execution profile JSON, when requested.
    pub profile: Option<String>,
    /// Deterministic profile shape (duration-free), when requested.
    pub shape: Option<String>,
}

/// A structured error response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryErr {
    pub code: ErrorCode,
    pub message: String,
    /// Partial-progress trip report shape, for budget/cancellation errors.
    pub report: Option<String>,
}

/// The service's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Ok(Box<QueryOk>),
    Err(QueryErr),
}

impl Response {
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Err(QueryErr {
            code,
            message: message.into(),
            report: None,
        })
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok(_))
    }

    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            Response::Ok(_) => None,
            Response::Err(e) => Some(e.code),
        }
    }
}

/// Service-level cumulative counters plus per-tenant and per-dataset views.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceMetrics {
    pub submitted: u64,
    pub admitted: u64,
    /// Admission-control rejections (`overloaded`): the tenant's envelope
    /// had no room.
    pub rejected: u64,
    /// Structured refusals before admission (unknown tenant/dataset, bad
    /// request, failed fingerprint). The conservation law is
    /// `admitted + rejected + refused == submitted`.
    pub refused: u64,
    pub completed: u64,
    pub cancelled: u64,
    pub budget_tripped: u64,
    pub failed: u64,
    /// Plan-cache warmth observed through per-request traces.
    pub plan_warm: u64,
    pub plan_cold: u64,
    pub plan_replans: u64,
    /// Index/instance-cache warmth observed through per-request traces.
    pub index_warm: u64,
    pub index_cold: u64,
    pub tenants: Vec<(String, TenantMetrics)>,
    /// Per-dataset plan-cache counter snapshots (always consistent: reads
    /// the seqlock stats cell, see `gql_plan::StatsCell`).
    pub datasets: Vec<(String, CacheStats)>,
}

impl ServiceMetrics {
    pub fn to_value(&self) -> Value {
        let tenants = self
            .tenants
            .iter()
            .map(|(name, m)| {
                Value::Obj(vec![
                    ("name".into(), Value::str(name.clone())),
                    ("submitted".into(), Value::count(m.submitted)),
                    ("admitted".into(), Value::count(m.admitted)),
                    ("rejected".into(), Value::count(m.rejected)),
                    ("refused".into(), Value::count(m.refused)),
                    ("peak_in_flight".into(), Value::count(m.peak_in_flight)),
                    ("peak_pool_draw".into(), Value::count(m.peak_pool_draw)),
                ])
            })
            .collect();
        let datasets = self
            .datasets
            .iter()
            .map(|(name, s)| {
                Value::Obj(vec![
                    ("name".into(), Value::str(name.clone())),
                    ("plan_hits".into(), Value::count(s.hits)),
                    ("plan_misses".into(), Value::count(s.misses)),
                    ("plan_evictions".into(), Value::count(s.evictions)),
                    ("plan_replans".into(), Value::count(s.replans)),
                    ("plan_lookups".into(), Value::count(s.lookups)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("submitted".into(), Value::count(self.submitted)),
            ("admitted".into(), Value::count(self.admitted)),
            ("rejected".into(), Value::count(self.rejected)),
            ("refused".into(), Value::count(self.refused)),
            ("completed".into(), Value::count(self.completed)),
            ("cancelled".into(), Value::count(self.cancelled)),
            ("budget_tripped".into(), Value::count(self.budget_tripped)),
            ("failed".into(), Value::count(self.failed)),
            ("plan_warm".into(), Value::count(self.plan_warm)),
            ("plan_cold".into(), Value::count(self.plan_cold)),
            ("plan_replans".into(), Value::count(self.plan_replans)),
            ("index_warm".into(), Value::count(self.index_warm)),
            ("index_cold".into(), Value::count(self.index_cold)),
            ("tenants".into(), Value::Arr(tenants)),
            ("datasets".into(), Value::Arr(datasets)),
        ])
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    refused: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    budget_tripped: AtomicU64,
    failed: AtomicU64,
    plan_warm: AtomicU64,
    plan_cold: AtomicU64,
    plan_replans: AtomicU64,
    index_warm: AtomicU64,
    index_cold: AtomicU64,
}

/// One unit of admitted work.
struct Job {
    query: QueryKind,
    dataset: Arc<Dataset>,
    budget: Budget,
    cancel: CancelToken,
    want_profile: bool,
    reply: mpsc::Sender<Response>,
    /// Telemetry context minted at admission (`None` when telemetry is
    /// disabled — the job then carries zero extra weight).
    meta: Option<RequestMeta>,
    /// Held for the duration of execution; dropping releases the tenant's
    /// slot and pool reservation (even on worker panic — the permit drops
    /// with the job).
    _permit: Permit,
}

struct Inner {
    catalog: Arc<Catalog>,
    tenants: Arc<TenantRegistry>,
    /// `None` after shutdown. The queue is unbounded *by type* but bounded
    /// in fact: only admitted jobs enter it, and admission caps in-flight
    /// work per tenant.
    queue: Mutex<Option<mpsc::Sender<Job>>>,
    counters: Counters,
    telemetry: Arc<Telemetry>,
}

/// The long-lived service: a catalog, a tenant registry and a worker pool.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// Builder for [`Service`].
pub struct ServiceBuilder {
    catalog: Catalog,
    tenants: TenantRegistry,
    workers: usize,
    telemetry: TelemetryConfig,
}

impl ServiceBuilder {
    pub fn new() -> ServiceBuilder {
        ServiceBuilder {
            catalog: Catalog::new(),
            tenants: TenantRegistry::new(),
            workers: 4,
            telemetry: TelemetryConfig::default(),
        }
    }

    pub fn workers(mut self, n: usize) -> ServiceBuilder {
        self.workers = n.max(1);
        self
    }

    pub fn catalog(mut self, catalog: Catalog) -> ServiceBuilder {
        self.catalog = catalog;
        self
    }

    pub fn tenants(mut self, tenants: TenantRegistry) -> ServiceBuilder {
        self.tenants = tenants;
        self
    }

    /// Configure the telemetry plane (enabled with defaults if not set).
    pub fn telemetry(mut self, config: TelemetryConfig) -> ServiceBuilder {
        self.telemetry = config;
        self
    }

    pub fn build(self) -> Service {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let tenant_names: Vec<String> = self.tenants.iter().map(|t| t.name().to_string()).collect();
        let inner = Arc::new(Inner {
            catalog: Arc::new(self.catalog),
            tenants: Arc::new(self.tenants),
            queue: Mutex::new(Some(tx)),
            counters: Counters::default(),
            telemetry: Arc::new(Telemetry::build(&self.telemetry, &tenant_names)),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("gql-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing.
                        let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                            Ok(job) => job,
                            Err(_) => return, // all senders gone: shutdown
                        };
                        inner.telemetry.on_dequeue(job.meta.as_ref());
                        let response = execute(&inner, &job);
                        // Release the admission permit *before* replying:
                        // once a client holds its response, its slot is
                        // observably free (a sequential resubmit can never
                        // race its own previous permit).
                        let Job {
                            reply,
                            _permit: permit,
                            ..
                        } = job;
                        drop(permit);
                        let _ = reply.send(response);
                    })
                    .expect("spawn worker")
            })
            .collect();
        Service { inner, workers }
    }
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder::new()
    }
}

impl Service {
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// A cloneable in-process submission handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.inner.catalog
    }

    /// Stop accepting work and join the pool. In-flight jobs finish;
    /// subsequent submissions through outstanding handles are rejected.
    pub fn shutdown(mut self) {
        *self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()) = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        *self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()) = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A submitted-but-unresolved query: wait for the response, or cancel.
pub struct Pending {
    rx: mpsc::Receiver<Response>,
    cancel: CancelToken,
}

impl Pending {
    /// The request's cancel token (cloneable; trip it to abort the run at
    /// the engine's next checkpoint).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or_else(|_| {
            Response::err(ErrorCode::Engine, "worker dropped the reply channel")
        })
    }

    /// Poll with a timeout; `Err(self)` if still running.
    pub fn wait_timeout(self, d: Duration) -> Result<Response, Pending> {
        match self.rx.recv_timeout(d) {
            Ok(r) => Ok(r),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(Response::err(
                ErrorCode::Engine,
                "worker dropped the reply channel",
            )),
        }
    }
}

/// In-process submission API: what the TCP server, the tests and the load
/// driver all speak. Clones share one service.
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<Inner>,
}

impl ServeHandle {
    /// Submit one query and block for its response.
    pub fn submit(&self, req: &Request) -> Response {
        match self.submit_cancellable(req, CancelToken::new()) {
            Ok(pending) => pending.wait(),
            Err(immediate) => immediate,
        }
    }

    /// Submit with a caller-supplied cancel token. `Err` is an immediate
    /// structured rejection (bad request, unknown names, overloaded).
    pub fn submit_cancellable(
        &self,
        req: &Request,
        cancel: CancelToken,
    ) -> Result<Pending, Response> {
        self.submit_with_surface(req, cancel, "query")
    }

    fn submit_with_surface(
        &self,
        req: &Request,
        cancel: CancelToken,
        surface: &'static str,
    ) -> Result<Pending, Response> {
        let c = &self.inner.counters;
        let tele = &self.inner.telemetry;
        c.submitted.fetch_add(1, Ordering::SeqCst);
        let Some(tenant) = self.inner.tenants.get(&req.tenant).cloned() else {
            // Unknown tenant: nothing to attribute the refusal to beyond
            // the service-wide counters and windows.
            c.refused.fetch_add(1, Ordering::SeqCst);
            tele.on_submitted(None);
            return Err(Response::err(
                ErrorCode::UnknownTenant,
                format!("unknown tenant: {}", req.tenant),
            ));
        };
        tenant.note_submitted();
        tele.on_submitted(Some(tenant.name()));
        let (dataset, query) = match self.resolve_payload(req) {
            Ok(resolved) => resolved,
            Err(resp) => {
                c.refused.fetch_add(1, Ordering::SeqCst);
                tenant.note_refused();
                return Err(resp);
            }
        };
        let Some(permit) = tenant.try_admit() else {
            c.rejected.fetch_add(1, Ordering::SeqCst);
            tele.on_rejected(tenant.name());
            return Err(Response::err(
                ErrorCode::Overloaded,
                format!(
                    "tenant `{}` envelope exhausted ({} in flight)",
                    req.tenant,
                    tenant.in_flight()
                ),
            ));
        };
        c.admitted.fetch_add(1, Ordering::SeqCst);
        let meta = tele.on_admitted(tenant.name(), surface, &req.query);
        let (reply, rx) = mpsc::channel();
        let job = Job {
            query,
            dataset,
            budget: tenant.envelope().per_query.clone(),
            cancel: cancel.clone(),
            want_profile: req.profile,
            reply,
            meta,
            _permit: permit,
        };
        let sender = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        match sender {
            Some(tx) => {
                // The job (and its permit) moves to the worker; a send can
                // only fail if the pool is gone, which shutdown prevents
                // while senders exist.
                tx.send(job)
                    .map_err(|_| Response::err(ErrorCode::Engine, "service pool is gone"))?;
                Ok(Pending { rx, cancel })
            }
            None => Err(Response::err(
                ErrorCode::Overloaded,
                "service is shutting down",
            )),
        }
    }

    /// Submit a batch sharing one catalog snapshot and plan-cache warmup:
    /// the first occurrence of each distinct (dataset, kind, query) runs
    /// first (the *leader*, planting the plan-cache entry), then every
    /// repeat runs warm, concurrently. Responses come back in request
    /// order.
    pub fn submit_batch(&self, reqs: &[Request]) -> Vec<Response> {
        let mut leaders: Vec<usize> = Vec::new();
        let mut followers: Vec<usize> = Vec::new();
        let mut seen: Vec<(&str, &str, &str)> = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            let key = (r.dataset.as_str(), r.kind.as_str(), r.query.as_str());
            if seen.contains(&key) {
                followers.push(i);
            } else {
                seen.push(key);
                leaders.push(i);
            }
        }
        let mut out: Vec<Option<Response>> = (0..reqs.len()).map(|_| None).collect();
        for wave in [leaders, followers] {
            let pending: Vec<(usize, Result<Pending, Response>)> = wave
                .into_iter()
                .map(|i| {
                    (
                        i,
                        self.submit_with_surface(&reqs[i], CancelToken::new(), "batch"),
                    )
                })
                .collect();
            for (i, p) in pending {
                out[i] = Some(match p {
                    Ok(pending) => pending.wait(),
                    Err(immediate) => immediate,
                });
            }
        }
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Resolve the dataset and parse the query (the tenant is resolved
    /// first, separately, so refusals here attribute to it); an `Err` is
    /// the immediate structured rejection.
    fn resolve_payload(&self, req: &Request) -> Result<(Arc<Dataset>, QueryKind), Response> {
        let dataset = self.inner.catalog.get(&req.dataset).ok_or_else(|| {
            Response::err(
                ErrorCode::UnknownDataset,
                format!("unknown dataset: {}", req.dataset),
            )
        })?;
        if !dataset.verify() {
            return Err(Response::err(
                ErrorCode::Engine,
                format!("dataset `{}` failed fingerprint validation", req.dataset),
            ));
        }
        let query = parse_query(&req.kind, &req.query)
            .map_err(|msg| Response::err(ErrorCode::BadRequest, msg))?;
        Ok((dataset, query))
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        let c = &self.inner.counters;
        ServiceMetrics {
            submitted: c.submitted.load(Ordering::SeqCst),
            admitted: c.admitted.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            refused: c.refused.load(Ordering::SeqCst),
            completed: c.completed.load(Ordering::SeqCst),
            cancelled: c.cancelled.load(Ordering::SeqCst),
            budget_tripped: c.budget_tripped.load(Ordering::SeqCst),
            failed: c.failed.load(Ordering::SeqCst),
            plan_warm: c.plan_warm.load(Ordering::SeqCst),
            plan_cold: c.plan_cold.load(Ordering::SeqCst),
            plan_replans: c.plan_replans.load(Ordering::SeqCst),
            index_warm: c.index_warm.load(Ordering::SeqCst),
            index_cold: c.index_cold.load(Ordering::SeqCst),
            tenants: self
                .inner
                .tenants
                .iter()
                .map(|t| (t.name().to_string(), t.metrics()))
                .collect(),
            datasets: self
                .inner
                .catalog
                .iter()
                .map(|d| (d.name().to_string(), d.engine().plan_cache_stats()))
                .collect(),
        }
    }

    /// The service's telemetry plane (histograms, windows, events, slow
    /// log). Shared by every handle of one service.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.inner.telemetry
    }

    /// The full telemetry report: counters plus latency histograms, rate
    /// windows, recent request events and the slow-query log.
    pub fn metrics_report(&self) -> MetricsReport {
        self.inner.telemetry.report(self.metrics())
    }
}

/// Parse a `kind` + source into an engine query. Uses the unchecked
/// parsers: the engine's own static-analysis gate produces the structured
/// `rejected` response for ill-formed programs.
pub fn parse_query(kind: &str, query: &str) -> Result<QueryKind, String> {
    match kind {
        "xmlgl" => gql_xmlgl::dsl::parse_unchecked(query)
            .map(QueryKind::XmlGl)
            .map_err(|e| format!("XML-GL query does not parse: {e}")),
        "wglog" => gql_wglog::dsl::parse_unchecked(query)
            .map(QueryKind::WgLog)
            .map_err(|e| format!("WG-Log query does not parse: {e}")),
        "xpath" => Ok(QueryKind::XPath(query.to_string())),
        other => Err(format!("unknown query kind: {other}")),
    }
}

/// Run one admitted job and fold its cache notes into the service
/// counters. This is the telemetry reply site: exactly one histogram
/// record per admitted job, plus slow-query capture.
fn execute(inner: &Inner, job: &Job) -> Response {
    let c = &inner.counters;
    let tele = &inner.telemetry;
    tele.on_start(job.meta.as_ref());
    let engine: &Engine = job.dataset.engine();
    let guard = Guard::with_cancel(job.budget.clone(), job.cancel.clone());
    let trace = Trace::profiling();
    let result = engine.run_governed(&job.query, job.dataset.doc(), &trace, &guard);
    let profile = trace.finish();
    // Slow-log material, pulled from the profile while it is still whole.
    // The compact plan note is written before evaluation starts, so it is
    // present even when the run tripped a budget mid-eval.
    let (plan_note, phases) = if job.meta.is_some() {
        let plan_note = profile
            .as_ref()
            .and_then(|p| p.find("plan"))
            .and_then(|n| n.note("plan"))
            .unwrap_or("")
            .to_string();
        let phases: Vec<(String, u64)> = profile
            .as_ref()
            .and_then(|p| p.roots.first())
            .map(|root| {
                root.children
                    .iter()
                    .map(|child| (child.name.clone(), (child.nanos / 1_000) as u64))
                    .collect()
            })
            .unwrap_or_default();
        (plan_note, phases)
    } else {
        (String::new(), Vec::new())
    };
    let (plan_cache, index_cache) = profile
        .as_ref()
        .map(|p| {
            let plan = p
                .find("plan")
                .and_then(|n| n.note("plan_cache"))
                .unwrap_or("")
                .to_string();
            // XML-GL/XPath report the index cache under `index`; WG-Log
            // reports its instance cache under `load`.
            let index = p
                .find("index")
                .or_else(|| p.find("load"))
                .and_then(|n| n.note("cache"))
                .unwrap_or("")
                .to_string();
            (plan, index)
        })
        .unwrap_or_default();
    match plan_cache.as_str() {
        "hit" => c.plan_warm.fetch_add(1, Ordering::SeqCst),
        "miss" => c.plan_cold.fetch_add(1, Ordering::SeqCst),
        "replan" => c.plan_replans.fetch_add(1, Ordering::SeqCst),
        _ => 0,
    };
    match index_cache.as_str() {
        "hit" => c.index_warm.fetch_add(1, Ordering::SeqCst),
        "miss" | "cold" => c.index_cold.fetch_add(1, Ordering::SeqCst),
        _ => 0,
    };
    let (response, outcome_class, eval_us, trip) = match result {
        Ok(outcome) => {
            c.completed.fetch_add(1, Ordering::SeqCst);
            let profile = profile.expect("profiling trace yields a profile");
            let eval_us = outcome.eval_time.as_micros() as u64;
            let resp = Response::Ok(Box::new(QueryOk {
                xml: outcome.output.to_xml_string(),
                result_count: outcome.result_count as u64,
                eval_us,
                plan: outcome.plan,
                plan_cache,
                index_cache,
                profile: job.want_profile.then(|| profile.to_json()),
                shape: job.want_profile.then(|| profile.shape()),
            }));
            (resp, "ok", eval_us, None)
        }
        Err(CoreError::Budget(g)) => {
            let (code, class) = if g.kind == LimitKind::Cancelled {
                c.cancelled.fetch_add(1, Ordering::SeqCst);
                (ErrorCode::Cancelled, "cancelled")
            } else {
                c.budget_tripped.fetch_add(1, Ordering::SeqCst);
                (ErrorCode::Budget, "budget")
            };
            let report = g.report.shape();
            let resp = Response::Err(QueryErr {
                code,
                message: g.to_string(),
                report: Some(report.clone()),
            });
            (resp, class, 0, Some(report))
        }
        Err(e @ CoreError::Rejected { .. }) => {
            c.failed.fetch_add(1, Ordering::SeqCst);
            (
                Response::err(ErrorCode::Rejected, e.to_string()),
                "rejected",
                0,
                None,
            )
        }
        Err(e) => {
            c.failed.fetch_add(1, Ordering::SeqCst);
            (
                Response::err(ErrorCode::Engine, e.to_string()),
                "engine",
                0,
                None,
            )
        }
    };
    tele.on_reply(
        job.meta.as_ref(),
        job.dataset.name(),
        outcome_class,
        eval_us,
        &plan_note,
        &phases,
        trip.as_deref(),
    );
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::Envelope;

    fn demo_service() -> Service {
        let mut catalog = Catalog::new();
        catalog
            .register_xml(
                "bib",
                "<bib><book><title>a</title></book><book><title>b</title></book></bib>",
            )
            .unwrap();
        let mut tenants = TenantRegistry::new();
        tenants.register("public", Envelope::slots(8));
        Service::builder()
            .workers(2)
            .catalog(catalog)
            .tenants(tenants)
            .build()
    }

    #[test]
    fn submit_runs_and_reports_cache_warmth() {
        let service = demo_service();
        let h = service.handle();
        let req = Request::new("public", "bib", "xpath", "//title");
        let first = h.submit(&req);
        let Response::Ok(ok) = &first else {
            panic!("first run failed: {first:?}");
        };
        assert_eq!(ok.result_count, 2);
        assert_eq!(ok.plan_cache, "miss");
        assert_eq!(ok.index_cache, "hit", "catalog datasets are preloaded");
        let Response::Ok(warm) = h.submit(&req) else {
            panic!("warm run failed");
        };
        assert_eq!(warm.plan_cache, "hit");
        assert_eq!(warm.xml, ok.xml, "warm answer must be identical");
        let m = h.metrics();
        assert_eq!((m.submitted, m.admitted, m.completed), (2, 2, 2));
        assert_eq!((m.plan_cold, m.plan_warm, m.index_warm), (1, 1, 2));
        service.shutdown();
    }

    #[test]
    fn unknown_names_and_bad_queries_reject_without_admission() {
        let service = demo_service();
        let h = service.handle();
        let cases = [
            (
                Request::new("ghost", "bib", "xpath", "//a"),
                ErrorCode::UnknownTenant,
            ),
            (
                Request::new("public", "ghost", "xpath", "//a"),
                ErrorCode::UnknownDataset,
            ),
            (
                Request::new("public", "bib", "sql", "select"),
                ErrorCode::BadRequest,
            ),
            (
                Request::new("public", "bib", "xmlgl", "rule {"),
                ErrorCode::BadRequest,
            ),
        ];
        for (req, want) in cases {
            assert_eq!(h.submit(&req).error_code(), Some(want), "{req:?}");
        }
        let m = h.metrics();
        assert_eq!(m.submitted, 4);
        assert_eq!(m.admitted, 0, "pre-admission failures never admit");
        service.shutdown();
    }

    #[test]
    fn batch_warms_duplicates_and_preserves_order() {
        let service = demo_service();
        let h = service.handle();
        let q = Request::new("public", "bib", "xpath", "//title");
        let other = Request::new("public", "bib", "xpath", "/bib/book");
        let responses = h.submit_batch(&[q.clone(), other.clone(), q.clone(), q]);
        assert_eq!(responses.len(), 4);
        let oks: Vec<&QueryOk> = responses
            .iter()
            .map(|r| match r {
                Response::Ok(ok) => &**ok,
                e => panic!("batch item failed: {e:?}"),
            })
            .collect();
        assert_eq!(oks[0].xml, oks[2].xml);
        assert_eq!(oks[2].xml, oks[3].xml);
        assert_ne!(oks[0].xml, oks[1].xml, "order is request order");
        // The duplicate entries ran warm behind their leader.
        assert_eq!(oks[2].plan_cache, "hit");
        assert_eq!(oks[3].plan_cache, "hit");
        service.shutdown();
    }

    #[test]
    fn cancellation_returns_the_trip_report() {
        let service = demo_service();
        let h = service.handle();
        let cancel = CancelToken::new();
        cancel.cancel(); // pre-cancelled: trips at the first checkpoint
        let pending = h
            .submit_cancellable(&Request::new("public", "bib", "xpath", "//title"), cancel)
            .expect("admitted");
        let resp = pending.wait();
        let Response::Err(e) = &resp else {
            panic!("pre-cancelled run must not complete: {resp:?}");
        };
        assert_eq!(e.code, ErrorCode::Cancelled);
        let report = e.report.as_deref().expect("trip report is returned");
        assert!(
            report.starts_with("phase="),
            "shape-formatted report: {report}"
        );
        // The shared caches are not poisoned: the same query still runs.
        assert!(h
            .submit(&Request::new("public", "bib", "xpath", "//title"))
            .is_ok());
        assert_eq!(h.metrics().cancelled, 1);
        service.shutdown();
    }

    #[test]
    fn overload_rejects_structured_and_releases() {
        let mut catalog = Catalog::new();
        catalog.register_xml("d", "<r><a/></r>").unwrap();
        let mut tenants = TenantRegistry::new();
        tenants.register("t", Envelope::slots(1));
        let service = Service::builder()
            .workers(1)
            .catalog(catalog)
            .tenants(tenants)
            .build();
        let h = service.handle();
        // Hold the only slot with a cancellable query that we let finish
        // naturally — but first observe a rejection while it is in flight.
        let slow = Request::new("t", "d", "xpath", "//a");
        let held = h
            .submit_cancellable(&slow, CancelToken::new())
            .expect("first admission");
        // The held pending's job may or may not have started; either way
        // its permit is live until just before the worker replies, so a
        // second submission races admission. Rejection is only guaranteed
        // while the slot is held, so assert on the metrics invariant
        // instead.
        let second = h.submit(&slow);
        let _ = held.wait();
        let m = h.metrics();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.admitted + m.rejected, m.submitted);
        if let Some(code) = second.error_code() {
            assert_eq!(code, ErrorCode::Overloaded);
        }
        service.shutdown();
    }
}
