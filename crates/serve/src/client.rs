//! A resilient blocking client: per-request deadlines, capped exponential
//! backoff with deterministic seeded jitter, and idempotent retries.
//!
//! The retry discipline is deliberately narrow. Only *transport* faults
//! (connection reset, torn frame, timeout) and the two explicitly
//! retryable protocol errors — `overloaded` and `rate_limited` — are
//! retried; engine-side errors (`budget`, `rejected`, `bad-request`, …)
//! are final, because retrying them re-spends the tenant's budget on a
//! request that will fail identically. Each logical request is minted one
//! idempotency key reused across all its retries, so the server's
//! worker-boundary dedup guarantees the query executes at most once even
//! when a reply was torn off the wire after the work completed.
//!
//! Jitter is driven by a splitmix64 stream seeded from the policy, never
//! the wall clock: two clients with the same seed storm a server with the
//! same schedule, which is what makes the chaos oracle reproducible.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::json::Value;
use crate::proto::{decode_response, encode_request, read_frame, write_frame};
use crate::service::{ErrorCode, Request, Response};

/// Retry/deadline policy for a [`ResilientClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per logical request, including the first.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep (pre-jitter).
    pub max_backoff: Duration,
    /// Wall-clock budget for one logical request across all attempts.
    pub deadline: Duration,
    /// Seeds both the jitter stream and minted idempotency keys.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            deadline: Duration::from_secs(10),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    pub fn max_attempts(mut self, n: u32) -> RetryPolicy {
        self.max_attempts = n.max(1);
        self
    }

    pub fn base_backoff(mut self, d: Duration) -> RetryPolicy {
        self.base_backoff = d;
        self
    }

    pub fn max_backoff(mut self, d: Duration) -> RetryPolicy {
        self.max_backoff = d;
        self
    }

    pub fn deadline(mut self, d: Duration) -> RetryPolicy {
        self.deadline = d;
        self
    }

    pub fn seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }
}

/// Why a logical request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// The per-request deadline expired before a final response arrived.
    DeadlineExceeded { attempts: u32, last: String },
    /// Every attempt hit a retryable fault and the attempt budget ran out.
    RetriesExhausted { attempts: u32, last: String },
    /// The server sent a well-framed reply the client cannot interpret.
    /// Never retried: the transport is fine, the conversation is not.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::DeadlineExceeded { attempts, last } => {
                write!(f, "deadline exceeded after {attempts} attempt(s): {last}")
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempt(s): {last}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One step of a splitmix64 stream (public-domain constants).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Backoff before retry number `retry` (0-based): the capped exponential
/// `base · 2^retry`, then "equal jitter" — half deterministic, half drawn
/// from the seeded stream — so synchronized clients decorrelate without
/// ever sleeping less than half the nominal delay.
fn backoff_delay(policy: &RetryPolicy, retry: u32, rng: &mut u64) -> Duration {
    let nominal = policy
        .base_backoff
        .saturating_mul(1u32 << retry.min(16))
        .min(policy.max_backoff);
    let micros = nominal.as_micros().min(u128::from(u64::MAX)) as u64;
    let half = micros / 2;
    let jitter = if half == 0 {
        0
    } else {
        splitmix64(rng) % (half + 1)
    };
    Duration::from_micros(half + jitter)
}

/// A transport-level attempt failure (always retryable).
struct Torn(String);

/// A blocking client that retries transport faults and backpressure
/// rejections under a per-request deadline. Not `Clone`: each client owns
/// one connection and one jitter stream.
pub struct ResilientClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    stream: Option<TcpStream>,
    rng: u64,
    next_id: u64,
    retries: u64,
    reconnects: u64,
}

impl ResilientClient {
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            addr,
            policy,
            stream: None,
            rng: policy.seed,
            next_id: 0,
            retries: 0,
            reconnects: 0,
        }
    }

    /// Total retry attempts made over this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total reconnects made over this client's lifetime.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Run one logical query to completion: retry transport faults,
    /// `overloaded` and `rate_limited` (honouring `retry_after_ms`);
    /// everything else — success or engine-side error — is final. A
    /// request without an idempotency key is minted one and keeps it
    /// across every retry.
    pub fn query(&mut self, req: &Request) -> Result<Response, ClientError> {
        let req = if req.request_id.is_some() {
            req.clone()
        } else {
            self.next_id += 1;
            req.clone()
                .with_request_id(format!("{:x}-{}", self.policy.seed, self.next_id))
        };
        let start = Instant::now();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let (last, retry_after) = match self.attempt(&req, start) {
                Ok(Response::Err(e))
                    if matches!(e.code, ErrorCode::Overloaded | ErrorCode::RateLimited) =>
                {
                    (
                        format!("{}: {}", e.code.name(), e.message),
                        e.retry_after_ms,
                    )
                }
                Ok(resp) => return Ok(resp),
                Err(Ok(Torn(msg))) => {
                    // The connection is suspect; next attempt redials.
                    self.stream = None;
                    (msg, None)
                }
                Err(Err(fatal)) => return Err(fatal),
            };
            if attempts >= self.policy.max_attempts {
                return Err(ClientError::RetriesExhausted { attempts, last });
            }
            let mut delay = backoff_delay(&self.policy, attempts - 1, &mut self.rng);
            if let Some(ms) = retry_after {
                delay = delay.max(Duration::from_millis(ms));
            }
            if start.elapsed() + delay >= self.policy.deadline {
                return Err(ClientError::DeadlineExceeded { attempts, last });
            }
            self.retries += 1;
            std::thread::sleep(delay);
        }
    }

    /// One wire attempt. `Err(Ok(Torn))` is a retryable transport fault;
    /// `Err(Err(_))` is fatal (deadline already spent, or the reply was
    /// undecodable).
    fn attempt(
        &mut self,
        req: &Request,
        start: Instant,
    ) -> Result<Response, Result<Torn, ClientError>> {
        let remaining = self
            .policy
            .deadline
            .checked_sub(start.elapsed())
            .ok_or_else(|| {
                Err(ClientError::DeadlineExceeded {
                    attempts: 0,
                    last: "deadline spent before attempt".into(),
                })
            })?;
        if self.stream.is_none() {
            match TcpStream::connect(self.addr) {
                Ok(s) => {
                    // Frames go out as two writes (length prefix, then
                    // body); Nagle + delayed ACK would stall the body ~40ms
                    // per request otherwise.
                    let _ = s.set_nodelay(true);
                    if self.reconnects > 0 || self.retries > 0 {
                        self.reconnects += 1;
                    }
                    self.stream = Some(s);
                }
                Err(e) => return Err(Ok(Torn(format!("connect {}: {e}", self.addr)))),
            }
        }
        let stream = self.stream.as_mut().expect("stream just ensured");
        // Cap the blocking read by what is left of the deadline so a
        // server that never replies cannot pin this client past it.
        let read_cap = remaining.max(Duration::from_millis(1));
        if stream.set_read_timeout(Some(read_cap)).is_err()
            || stream.set_write_timeout(Some(read_cap)).is_err()
        {
            return Err(Ok(Torn("socket timeout setup failed".into())));
        }
        let frame = encode_request(req).render();
        if let Err(e) = write_frame(stream, frame.as_bytes()) {
            return Err(Ok(Torn(format!("write: {e}"))));
        }
        let reply = match read_frame(stream) {
            Ok(Some(reply)) => reply,
            Ok(None) => return Err(Ok(Torn("server closed mid-conversation".into()))),
            Err(e) => return Err(Ok(Torn(format!("read: {e}")))),
        };
        let text = String::from_utf8(reply)
            .map_err(|e| Err(ClientError::Protocol(format!("non-utf8 reply: {e}"))))?;
        let value =
            Value::parse(&text).map_err(|e| Err(ClientError::Protocol(format!("{e}: {text}"))))?;
        decode_response(&value).map_err(|e| Err(ClientError::Protocol(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
            .base_backoff(Duration::from_millis(10))
            .max_backoff(Duration::from_millis(80))
    }

    #[test]
    fn backoff_is_capped_exponential_with_equal_jitter() {
        let p = policy();
        let mut rng = p.seed;
        for retry in 0..10 {
            let nominal = Duration::from_millis(10)
                .saturating_mul(1 << retry.min(16))
                .min(Duration::from_millis(80));
            let d = backoff_delay(&p, retry, &mut rng);
            assert!(d >= nominal / 2, "retry {retry}: {d:?} under half-floor");
            assert!(d <= nominal, "retry {retry}: {d:?} over nominal cap");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let p = policy().seed(7);
        let (mut a, mut b) = (p.seed, p.seed);
        let first: Vec<_> = (0..6).map(|r| backoff_delay(&p, r, &mut a)).collect();
        let second: Vec<_> = (0..6).map(|r| backoff_delay(&p, r, &mut b)).collect();
        assert_eq!(first, second, "same seed, same schedule");
        let q = policy().seed(8);
        let mut c = q.seed;
        let other: Vec<_> = (0..6).map(|r| backoff_delay(&q, r, &mut c)).collect();
        assert_ne!(first, other, "different seed decorrelates");
    }

    #[test]
    fn huge_retry_counts_do_not_overflow_the_shift() {
        let p = policy();
        let mut rng = 1;
        let d = backoff_delay(&p, u32::MAX, &mut rng);
        assert!(d <= p.max_backoff);
    }

    #[test]
    fn minted_request_ids_are_stable_per_logical_request() {
        // The id comes from (seed, counter), not the clock: two clients
        // with one seed mint the same sequence.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut c1 = ResilientClient::new(addr, RetryPolicy::default().seed(9));
        let mut c2 = ResilientClient::new(addr, RetryPolicy::default().seed(9));
        c1.next_id += 1;
        c2.next_id += 1;
        let id1 = format!("{:x}-{}", c1.policy.seed, c1.next_id);
        let id2 = format!("{:x}-{}", c2.policy.seed, c2.next_id);
        assert_eq!(id1, id2);
        assert_eq!(id1, "9-1");
    }
}
