//! # gql-serve — the multi-tenant query service
//!
//! Everything the library stack built — resident index cache, keyed plan
//! cache (`gql-plan`), budgets and cooperative cancellation (`gql-guard`),
//! execution profiles (`gql-trace`) — assembled into a long-lived,
//! thread-pooled service:
//!
//! * [`catalog`] — named datasets loaded and indexed **once**, shared
//!   read-only across connections via `Arc`, re-validated against a
//!   content fingerprint on every access;
//! * [`tenant`] — per-tenant budget envelopes: an in-flight slot count
//!   plus a pooled match-unit reservation every admitted query draws
//!   from. Admission control rejects with a structured `overloaded`
//!   response instead of queueing unboundedly;
//! * [`service`] — the worker pool and the in-process [`ServeHandle`]
//!   API: single, cancellable and batched submission (a batch shares one
//!   catalog snapshot and plan-cache warmup), per-request profiles, and
//!   warm/cold cache counters surfaced as service metrics through the
//!   trace layer;
//! * [`proto`] + [`server`] — a length-prefixed JSON protocol over TCP.
//!   Client disconnect mid-query trips the request's `CancelToken`; the
//!   partial-progress trip report is returned, not dropped. Read/write
//!   idle timeouts reap stalled (slow-loris) connections;
//! * [`client`] — a resilient blocking client: per-request deadlines,
//!   capped exponential backoff with deterministic seeded jitter, and
//!   idempotent retries deduplicated server-side at the worker boundary.
//!
//! Resilience is layered on top: the [`catalog`] versions every dataset
//! by **epoch** with atomic hot reload and graceful drain (in-flight
//! queries finish on the epoch they were admitted to; a reply never mixes
//! epochs), and [`tenant`] adds time-window rate quotas that reject with
//! a structured `rate_limited` + `retry_after_ms` envelope.
//!
//! The testkit's concurrency differential oracle replays the whole
//! regression corpus through this service at concurrency 8 and holds the
//! results byte-identical to a fresh single-threaded `Engine` — serving
//! concurrently must never change an answer. The chaos oracle re-runs the
//! corpus through the resilient client while the guard's fault plan tears
//! frames, drops replies, panics workers and hot-reloads the catalog
//! mid-storm, holding the same bar.

pub mod catalog;
pub mod client;
pub mod json;
pub mod proto;
pub mod server;
pub mod service;
pub mod telemetry;
pub mod tenant;

pub use catalog::{Catalog, Dataset, EpochPin, EpochStats};
pub use client::{ClientError, ResilientClient, RetryPolicy};
pub use proto::MetricsView;
pub use server::{Client, Server, ServerConfig};
pub use service::{
    ErrorCode, Pending, QueryErr, QueryOk, Request, Response, ServeHandle, Service, ServiceBuilder,
    ServiceMetrics,
};
pub use telemetry::{MetricsReport, Telemetry, TelemetryConfig};
pub use tenant::{AdmitDenied, Envelope, Permit, Tenant, TenantMetrics, TenantRegistry};
