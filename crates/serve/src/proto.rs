//! The wire protocol: length-prefixed JSON frames over any byte stream.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Frames above [`MAX_FRAME`] are refused with a
//! structured `bad-request` error before the body is read — an attacker
//! cannot make the server allocate from the length prefix alone.
//!
//! Request objects carry an `op`:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"query","tenant":"public","dataset":"bib","kind":"xpath","query":"//title","profile":false}
//! {"op":"batch","tenant":"public","items":[{"dataset":"bib","kind":"xpath","query":"//title"},…]}
//! {"op":"metrics"}
//! {"op":"metrics","view":"report"}
//! {"op":"metrics","view":"prometheus"}
//! {"op":"metrics","view":"text"}
//! {"op":"reload","dataset":"bib","xml":"<bib>…</bib>"}
//! ```
//!
//! The `metrics` op takes an optional `view`: `counters` (the default,
//! back-compatible cumulative counters), `report` (the full telemetry
//! report: latency histograms, rate windows, request events, slow-query
//! log), `prometheus` (the text exposition as one string field) or
//! `text` (the human stat printout `gql-serve stat` shows). An unknown
//! view is a `bad-request`.
//!
//! The `reload` op hot-swaps an existing dataset to freshly parsed XML
//! at the next catalog epoch (see `Catalog::reload`); its success reply
//! is `{"ok":true,"reload":{"dataset":…,"epoch":N,"draining":M}}`.
//!
//! Query ops may carry a `request_id` — an idempotency key: a retried
//! request with the same id is answered from the original execution
//! instead of running again.
//!
//! Every response is one frame: `{"ok":true,…}` (query successes carry
//! the dataset `epoch` they executed against) or
//! `{"ok":false,"code":"…","message":"…"[,"report":"…"][,"retry_after_ms":N]}`.
//! Budget and cancellation errors carry the partial-progress trip report
//! in `report` — the service returns how far the run got, it never
//! silently drops the work. `rate_limited` rejections carry
//! `retry_after_ms`, the time to the quota window's rollover.

use std::io::{Read, Write};

use crate::json::Value;
use crate::service::{ErrorCode, QueryErr, QueryOk, Request, Response};

/// Maximum accepted frame payload, in bytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Read one frame. `Ok(None)` is a clean EOF at a frame boundary; an EOF
/// mid-frame (a client that died mid-send) is an `UnexpectedEof` error the
/// connection loop turns into a close — never a hang.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Which rendering of the telemetry plane a `metrics` op asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsView {
    /// Cumulative counters only (the pre-telemetry response shape).
    #[default]
    Counters,
    /// The full report: histograms, windows, events, slow log.
    Report,
    /// Prometheus text exposition.
    Prometheus,
    /// The human stat printout (what `gql-serve stat` prints).
    Text,
}

impl MetricsView {
    pub fn from_name(name: &str) -> Option<MetricsView> {
        match name {
            "counters" => Some(MetricsView::Counters),
            "report" => Some(MetricsView::Report),
            "prometheus" => Some(MetricsView::Prometheus),
            "text" => Some(MetricsView::Text),
            _ => None,
        }
    }
}

/// One parsed client operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    Ping,
    Query(Request),
    Batch(Vec<Request>),
    Metrics(MetricsView),
    /// Hot-swap an existing dataset to this XML source (admin surface).
    Reload {
        dataset: String,
        xml: String,
    },
}

/// Decode a request frame. Errors are `bad-request` messages.
pub fn decode_op(payload: &[u8]) -> Result<Op, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
    let v = Value::parse(text).map_err(|e| format!("frame is not JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing `op` field")?;
    match op {
        "ping" => Ok(Op::Ping),
        "metrics" => match v.get("view") {
            None => Ok(Op::Metrics(MetricsView::default())),
            Some(view) => view
                .as_str()
                .and_then(MetricsView::from_name)
                .map(Op::Metrics)
                .ok_or_else(|| {
                    format!(
                        "unknown metrics view: {} (expected counters|report|prometheus|text)",
                        view.render()
                    )
                }),
        },
        "query" => decode_request(&v, None).map(Op::Query),
        "reload" => {
            let field = |name: &str| -> Result<String, String> {
                v.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or(format!("missing `{name}` field"))
            };
            Ok(Op::Reload {
                dataset: field("dataset")?,
                xml: field("xml")?,
            })
        }
        "batch" => {
            let tenant = v.get("tenant").and_then(Value::as_str);
            let items = v
                .get("items")
                .and_then(Value::as_arr)
                .ok_or("batch without `items` array")?;
            items
                .iter()
                .map(|item| decode_request(item, tenant))
                .collect::<Result<Vec<_>, _>>()
                .map(Op::Batch)
        }
        other => Err(format!("unknown op: {other}")),
    }
}

fn decode_request(v: &Value, default_tenant: Option<&str>) -> Result<Request, String> {
    let field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or(format!("missing `{name}` field"))
    };
    let tenant = match v.get("tenant").and_then(Value::as_str).or(default_tenant) {
        Some(t) => t.to_string(),
        None => return Err("missing `tenant` field".into()),
    };
    Ok(Request {
        tenant,
        dataset: field("dataset")?,
        kind: field("kind")?,
        query: field("query")?,
        profile: v.get("profile").and_then(Value::as_bool).unwrap_or(false),
        request_id: v
            .get("request_id")
            .and_then(Value::as_str)
            .map(str::to_string),
    })
}

/// Encode a request as a `{"op":"query",…}` frame value (the client
/// half of [`decode_op`]).
pub fn encode_request(req: &Request) -> Value {
    let mut pairs = vec![
        ("op".into(), Value::str("query")),
        ("tenant".into(), Value::str(req.tenant.clone())),
        ("dataset".into(), Value::str(req.dataset.clone())),
        ("kind".into(), Value::str(req.kind.clone())),
        ("query".into(), Value::str(req.query.clone())),
    ];
    if req.profile {
        pairs.push(("profile".into(), Value::Bool(true)));
    }
    if let Some(id) = &req.request_id {
        pairs.push(("request_id".into(), Value::str(id.clone())));
    }
    Value::Obj(pairs)
}

/// Encode one service response.
pub fn encode_response(resp: &Response) -> Value {
    match resp {
        Response::Ok(ok) => encode_ok(ok),
        Response::Err(err) => encode_err(err),
    }
}

fn encode_ok(ok: &QueryOk) -> Value {
    let mut pairs = vec![
        ("ok".into(), Value::Bool(true)),
        ("xml".into(), Value::str(ok.xml.clone())),
        ("result_count".into(), Value::count(ok.result_count)),
        ("eval_us".into(), Value::count(ok.eval_us)),
        ("plan".into(), Value::str(ok.plan.clone())),
        ("plan_cache".into(), Value::str(ok.plan_cache.clone())),
        ("index_cache".into(), Value::str(ok.index_cache.clone())),
        ("epoch".into(), Value::count(ok.epoch)),
    ];
    if let Some(p) = &ok.profile {
        // The profile is itself JSON; embed it structurally, not as a
        // string (fall back to the raw string if it ever fails to parse).
        match Value::parse(p) {
            Ok(v) => pairs.push(("profile".into(), v)),
            Err(_) => pairs.push(("profile".into(), Value::str(p.clone()))),
        }
    }
    if let Some(s) = &ok.shape {
        pairs.push(("shape".into(), Value::str(s.clone())));
    }
    Value::Obj(pairs)
}

fn encode_err(err: &QueryErr) -> Value {
    let mut pairs = vec![
        ("ok".into(), Value::Bool(false)),
        ("code".into(), Value::str(err.code.name())),
        ("message".into(), Value::str(err.message.clone())),
    ];
    if let Some(r) = &err.report {
        pairs.push(("report".into(), Value::str(r.clone())));
    }
    if let Some(ms) = err.retry_after_ms {
        pairs.push(("retry_after_ms".into(), Value::count(ms)));
    }
    Value::Obj(pairs)
}

/// Decode a response frame back into a [`Response`] (the client half; the
/// tests and the load driver use it to talk to a real socket).
pub fn decode_response(v: &Value) -> Result<Response, String> {
    match v.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(Response::Ok(Box::new(QueryOk {
            xml: v
                .get("xml")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            result_count: v.get("result_count").and_then(Value::as_u64).unwrap_or(0),
            eval_us: v.get("eval_us").and_then(Value::as_u64).unwrap_or(0),
            plan: v
                .get("plan")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            plan_cache: v
                .get("plan_cache")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            index_cache: v
                .get("index_cache")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            epoch: v.get("epoch").and_then(Value::as_u64).unwrap_or(0),
            profile: v.get("profile").map(Value::render),
            shape: v.get("shape").and_then(Value::as_str).map(str::to_string),
        }))),
        Some(false) => Ok(Response::Err(QueryErr {
            code: v
                .get("code")
                .and_then(Value::as_str)
                .and_then(ErrorCode::from_name)
                .ok_or("error response without a known `code`")?,
            message: v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            report: v.get("report").and_then(Value::as_str).map(str::to_string),
            retry_after_ms: v.get("retry_after_ms").and_then(Value::as_u64),
        })),
        None => Err("response without boolean `ok`".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&b"{\"op\":\"ping\"}"[..])
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // A length prefix over the cap errors before any body allocation.
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // EOF mid-frame is an error, not a hang.
        let truncated = [0u8, 0, 0, 10, b'x', b'y'];
        assert!(read_frame(&mut &truncated[..]).is_err());
    }

    #[test]
    fn ops_decode() {
        assert_eq!(decode_op(b"{\"op\":\"ping\"}"), Ok(Op::Ping));
        assert_eq!(
            decode_op(b"{\"op\":\"metrics\"}"),
            Ok(Op::Metrics(MetricsView::Counters))
        );
        assert_eq!(
            decode_op(br#"{"op":"metrics","view":"report"}"#),
            Ok(Op::Metrics(MetricsView::Report))
        );
        assert_eq!(
            decode_op(br#"{"op":"metrics","view":"prometheus"}"#),
            Ok(Op::Metrics(MetricsView::Prometheus))
        );
        assert_eq!(
            decode_op(br#"{"op":"metrics","view":"text"}"#),
            Ok(Op::Metrics(MetricsView::Text))
        );
        assert!(
            decode_op(br#"{"op":"metrics","view":"warp"}"#).is_err(),
            "unknown views are structured errors"
        );
        let q =
            decode_op(br#"{"op":"query","tenant":"t","dataset":"d","kind":"xpath","query":"//a"}"#)
                .unwrap();
        assert_eq!(q, Op::Query(Request::new("t", "d", "xpath", "//a")));
        let q = decode_op(
            br#"{"op":"query","tenant":"t","dataset":"d","kind":"xpath","query":"//a","request_id":"r-7"}"#,
        )
        .unwrap();
        assert_eq!(
            q,
            Op::Query(Request::new("t", "d", "xpath", "//a").with_request_id("r-7"))
        );
        assert_eq!(
            decode_op(br#"{"op":"reload","dataset":"d","xml":"<r/>"}"#),
            Ok(Op::Reload {
                dataset: "d".into(),
                xml: "<r/>".into()
            })
        );
        assert!(
            decode_op(br#"{"op":"reload","dataset":"d"}"#).is_err(),
            "reload without xml is a structured error"
        );
        // Batch items inherit the batch-level tenant unless they override.
        let b = decode_op(
            br#"{"op":"batch","tenant":"t","items":[{"dataset":"d","kind":"xpath","query":"//a"},{"tenant":"u","dataset":"d","kind":"xpath","query":"//b"}]}"#,
        )
        .unwrap();
        let Op::Batch(items) = b else {
            panic!("not a batch")
        };
        assert_eq!(items[0].tenant, "t");
        assert_eq!(items[1].tenant, "u");
    }

    #[test]
    fn malformed_ops_are_structured_errors() {
        for bad in [
            &b"not json"[..],
            b"{}",
            b"{\"op\":\"warp\"}",
            b"{\"op\":\"query\",\"tenant\":\"t\"}",
            b"{\"op\":\"batch\"}",
            b"\xff\xfe",
        ] {
            assert!(decode_op(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let ok = Response::Ok(Box::new(QueryOk {
            xml: "<out/>".into(),
            result_count: 3,
            eval_us: 17,
            plan: "Scan".into(),
            plan_cache: "hit".into(),
            index_cache: "hit".into(),
            epoch: 4,
            profile: None,
            shape: Some("run".into()),
        }));
        assert_eq!(decode_response(&encode_response(&ok)), Ok(ok));
        let err = Response::Err(QueryErr {
            code: ErrorCode::Budget,
            message: "budget exceeded (matches): …".into(),
            report: Some("phase=eval rounds=0 matches=10 nodes=0".into()),
            retry_after_ms: None,
        });
        assert_eq!(decode_response(&encode_response(&err)), Ok(err));
        let limited = Response::Err(QueryErr {
            code: ErrorCode::RateLimited,
            message: "tenant `t` rate quota exhausted; retry in 250ms".into(),
            report: None,
            retry_after_ms: Some(250),
        });
        let encoded = encode_response(&limited);
        assert_eq!(
            encoded.get("code").and_then(Value::as_str),
            Some("rate_limited")
        );
        assert_eq!(
            encoded.get("retry_after_ms").and_then(Value::as_u64),
            Some(250)
        );
        assert_eq!(decode_response(&encoded), Ok(limited));
        // Requests roundtrip through their encoder too.
        let req = Request::new("t", "d", "xpath", "//a").with_request_id("id-1");
        assert_eq!(
            decode_op(encode_request(&req).render().as_bytes()),
            Ok(Op::Query(req))
        );
    }
}
