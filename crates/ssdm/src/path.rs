//! Lightweight navigation helpers.
//!
//! A tiny slash-separated path notation (`"products/product/name"`) for
//! tests, examples and dataset assertions — *not* a query language (the
//! query languages live in their own crates). Each step matches element
//! children by tag; `*` matches any element; a leading `//` prefix on the
//! whole path selects descendants at any depth for the first step.

use crate::document::{Document, NodeKind};
use crate::NodeId;

/// Select all nodes reached from `start` by the path expression.
///
/// Steps are tag names separated by `/`; `*` is a wildcard step. A path
/// starting with `//` applies its first step to all descendants of `start`.
pub fn select(doc: &Document, start: NodeId, path: &str) -> Vec<NodeId> {
    let (deep, path) = match path.strip_prefix("//") {
        Some(rest) => (true, rest),
        None => (false, path),
    };
    let mut current = vec![start];
    for (i, step) in path.split('/').enumerate() {
        if step.is_empty() {
            continue;
        }
        let mut next = Vec::new();
        for &n in &current {
            if i == 0 && deep {
                for d in doc.descendants(n) {
                    if node_matches(doc, d, step) {
                        next.push(d);
                    }
                }
            } else {
                for c in doc.child_elements(n) {
                    if node_matches(doc, c, step) {
                        next.push(c);
                    }
                }
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    doc.sort_dedup_doc_order(&mut current);
    current
}

fn node_matches(doc: &Document, node: NodeId, step: &str) -> bool {
    doc.kind(node) == NodeKind::Element && (step == "*" || doc.name(node) == Some(step))
}

/// First node reached by the path, if any.
pub fn select_first(doc: &Document, start: NodeId, path: &str) -> Option<NodeId> {
    select(doc, start, path).into_iter().next()
}

/// Text content of the first node reached by the path, if any.
pub fn select_text(doc: &Document, start: NodeId, path: &str) -> Option<String> {
    select_first(doc, start, path).map(|n| doc.text_content(n))
}

/// The slash path from the root element to `node` (tag names only), e.g.
/// `bib/book/title`. Useful for labelling query-result provenance the way
/// BBQ-style interfaces name dragged nodes.
pub fn path_to(doc: &Document, node: NodeId) -> String {
    let mut parts = Vec::new();
    let mut cur = Some(node);
    while let Some(n) = cur {
        if doc.kind(n) == NodeKind::Element {
            parts.push(doc.name(n).unwrap_or("?").to_string());
        }
        cur = doc.parent(n);
    }
    parts.reverse();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<shop><products>\
               <product><name>cabbage</name><price>0.59</price></product>\
               <product><name>cherry</name><price>2.19</price></product>\
             </products><vendors><vendor><name>DeRuiter</name></vendor></vendors></shop>",
        )
        .unwrap()
    }

    #[test]
    fn select_by_path() {
        let d = doc();
        let names = select(&d, d.root(), "shop/products/product/name");
        assert_eq!(names.len(), 2);
        assert_eq!(d.text_content(names[0]), "cabbage");
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        let all_names = select(&d, d.root(), "shop/*/product/name");
        assert_eq!(all_names.len(), 2);
        let everything = select(&d, d.root(), "shop/*");
        assert_eq!(everything.len(), 2); // products, vendors
    }

    #[test]
    fn deep_prefix() {
        let d = doc();
        let names = select(&d, d.root(), "//name");
        assert_eq!(names.len(), 3);
        let prices = select(&d, d.root(), "//product/price");
        assert_eq!(prices.len(), 2);
    }

    #[test]
    fn select_text_and_first() {
        let d = doc();
        assert_eq!(
            select_text(&d, d.root(), "//vendor/name").as_deref(),
            Some("DeRuiter")
        );
        assert_eq!(select_text(&d, d.root(), "//nothing"), None);
        assert!(select_first(&d, d.root(), "shop").is_some());
    }

    #[test]
    fn no_match_returns_empty() {
        let d = doc();
        assert!(select(&d, d.root(), "shop/zzz/name").is_empty());
    }

    #[test]
    fn path_to_node() {
        let d = doc();
        let name = select_first(&d, d.root(), "//vendor/name").unwrap();
        assert_eq!(path_to(&d, name), "shop/vendors/vendor/name");
    }

    #[test]
    fn results_in_document_order_without_duplicates() {
        let d = doc();
        // Both a shallow and deep route reach the same nodes.
        let mut combined = select(&d, d.root(), "//product");
        combined.extend(select(&d, d.root(), "shop/products/product"));
        d.sort_dedup_doc_order(&mut combined);
        assert_eq!(combined.len(), 2);
    }
}
