//! Arena primitives: compact node ids and a string interner for names.
//!
//! The document store keeps every node in a flat `Vec`, addressed by
//! [`NodeId`] (a `u32` newtype). Element and attribute names are interned
//! into [`Symbol`]s so that name comparison during pattern matching is an
//! integer comparison instead of a string comparison — the single hottest
//! operation in all three query engines.

use std::collections::HashMap;
use std::fmt;

/// Index of a node inside a [`crate::Document`] arena.
///
/// Ids are only meaningful together with the document that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a raw index. Callers are responsible for the index
    /// being valid for the document it is used with.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Interned name (element tag or attribute name).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// Append-only string interner. Strings are never freed; lookups are O(1)
/// hash probes and resolution is an index into a `Vec`.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol; repeated calls with equal strings
    /// return equal symbols.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look a string up without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("book");
        let b = i.intern("book");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("book");
        let b = i.intern("author");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "book");
        assert_eq!(i.resolve(b), "author");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("title").is_none());
        let s = i.intern("title");
        assert_eq!(i.get("title"), Some(s));
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
    }

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
    }
}
