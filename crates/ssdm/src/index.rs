//! # Document indexes for evaluation fast paths
//!
//! A [`DocIndex`] is built in one pass over a [`Document`] and gives every
//! engine in the workspace the classic semi-structured access paths from the
//! Lore / structural-join literature:
//!
//! * **tag → postings**: for every element name (as an interned [`Symbol`]),
//!   the elements carrying it, in document order — replacing the linear
//!   whole-document walk of [`Document::elements_named`];
//! * **interval numbering**: each reachable node gets a preorder number and
//!   the exclusive end of its subtree's preorder interval, so "is `d` a
//!   descendant of `a`" is two comparisons and "all `x` elements inside this
//!   subtree" is a binary-searched slice of the postings list;
//! * **attribute-name and text-value postings**: elements carrying a given
//!   attribute, elements with a direct text child, and elements keyed by
//!   their direct text value;
//! * **memoized structural hashes**: a 64-bit polynomial rolling hash of the
//!   exact canonical serialization of each subtree, computed bottom-up in one
//!   pass. Because the hash is *defined* as the hash of the [`canonical`]
//!   string, `canonical(a) == canonical(b)` implies
//!   `structural_hash(a) == structural_hash(b)` by construction. The converse
//!   can fail (collisions), so consumers must verify hash-equal candidates
//!   with `canonical` — correctness never depends on the hash.
//!
//! The index is immutable and describes the document at build time; mutating
//! the document invalidates it (callers rebuild, as [`gql-core`'s `Engine`]
//! does per resident document).

use std::collections::HashMap;

use crate::arena::Symbol;
use crate::document::{Document, NodeKind};
use crate::NodeId;

/// Base of the polynomial rolling hash (the 64-bit FNV prime — odd, with
/// good avalanche behaviour over `u64` wraparound).
const HASH_BASE: u64 = 0x0000_0100_0000_01B3;

/// Incremental polynomial hash over a byte string: appending text multiplies
/// the accumulated hash by `BASE^len` and adds the text's hash, so already
/// hashed *subtree* hashes can be spliced in O(1) if their `BASE^len` factor
/// (`pow`) is known. This is what makes the bottom-up build linear.
#[derive(Clone, Copy)]
struct Roll {
    hash: u64,
    pow: u64,
}

impl Roll {
    fn new() -> Self {
        Roll { hash: 0, pow: 1 }
    }

    fn push_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.hash = self.hash.wrapping_mul(HASH_BASE).wrapping_add(u64::from(b));
            self.pow = self.pow.wrapping_mul(HASH_BASE);
        }
    }

    /// Append an already-hashed string given its `(hash, BASE^len)` pair.
    fn push_rolled(&mut self, other: Roll) {
        self.hash = self.hash.wrapping_mul(other.pow).wrapping_add(other.hash);
        self.pow = self.pow.wrapping_mul(other.pow);
    }
}

/// Hash of a string under the same polynomial scheme the index uses for
/// subtrees: `hash_str(&canonical(doc, n)) == index.structural_hash(doc, n)`.
pub fn hash_str(s: &str) -> u64 {
    hash_parts(&[s])
}

/// Hash of the concatenation of `parts`, without allocating the
/// concatenation.
pub fn hash_parts(parts: &[&str]) -> u64 {
    let mut r = Roll::new();
    for p in parts {
        r.push_str(p);
    }
    r.hash
}

/// Canonical string form of a subtree: tag, sorted attributes, children in
/// order with text inline, comments and processing instructions erased. This
/// is the deep-equality key used by XML-GL joins and construct-side
/// deduplication; it lives here so the index can promise that its structural
/// hashes agree with it exactly. (`gql-xmlgl::eval::canonical` delegates
/// here.)
pub fn canonical(doc: &Document, node: NodeId) -> String {
    match doc.kind(node) {
        NodeKind::Text => format!("t:{}", doc.text(node).unwrap_or("")),
        NodeKind::Comment | NodeKind::Pi => String::new(),
        NodeKind::Element | NodeKind::Document => {
            let mut attrs: Vec<(&str, &str)> = doc.attrs(node).collect();
            attrs.sort();
            let attrs: Vec<String> = attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let children: Vec<String> = doc
                .children(node)
                .iter()
                .filter(|&&c| !matches!(doc.kind(c), NodeKind::Comment | NodeKind::Pi))
                .map(|&c| canonical(doc, c))
                .collect();
            format!(
                "e:{}[{}]({})",
                doc.name(node).unwrap_or(""),
                attrs.join(","),
                children.join(",")
            )
        }
    }
}

/// Cheap content fingerprint of a document for index-staleness checks: node
/// count, root element name, root attributes, the tag sequence of the
/// root's element children, and a fixed number of evenly-spaced sampled
/// nodes from the arena (kind + name/text prefix), folded through the
/// index's polynomial hash. O(1) in document size (the root's child list
/// is bounded by fanout, not total nodes, and the sample count is
/// constant), so callers can afford it on every cache probe — unlike the
/// full root structural hash, which would re-verify the entire tree. The
/// arena samples make collisions require agreement at sixteen deep probe
/// points on top of the entire root level; consumers still combine the
/// fingerprint with the node count and allocation address rather than
/// trusting it alone.
pub fn shallow_fingerprint(doc: &Document) -> u64 {
    // The document node itself carries no name or attributes; fingerprint
    // the root *element* (first element child) when there is one.
    let root = doc
        .children(doc.root())
        .iter()
        .copied()
        .find(|&c| doc.kind(c) == NodeKind::Element)
        .unwrap_or(doc.root());
    let mut r = Roll::new();
    r.push_str(&doc.node_count().to_string());
    r.push_str("|");
    r.push_str(doc.name(root).unwrap_or(""));
    r.push_str("|");
    let mut attrs: Vec<(&str, &str)> = doc.attrs(root).collect();
    attrs.sort();
    for (k, v) in attrs {
        r.push_str(k);
        r.push_str("=");
        r.push_str(v);
        r.push_str(",");
    }
    r.push_str("|");
    for &c in doc.children(root) {
        match doc.kind(c) {
            NodeKind::Element => {
                r.push_str(doc.name(c).unwrap_or(""));
                r.push_str(";");
            }
            NodeKind::Text => {
                r.push_str("t:");
                r.push_str(doc.text(c).unwrap_or(""));
                r.push_str(";");
            }
            NodeKind::Comment | NodeKind::Pi | NodeKind::Document => {}
        }
    }
    // Deep probes: sample up to 16 evenly-spaced arena slots so documents
    // that agree at the root level but differ below it still diverge.
    const SAMPLES: usize = 16;
    let n = doc.node_count();
    let stride = n.div_ceil(SAMPLES).max(1);
    for i in (0..n).step_by(stride) {
        let node = crate::NodeId::from_index(i);
        r.push_str("|");
        match doc.kind(node) {
            NodeKind::Element => {
                r.push_str("e:");
                r.push_str(doc.name(node).unwrap_or(""));
            }
            NodeKind::Text => {
                r.push_str("t:");
                // Prefix only: sampled text nodes must not make the probe
                // linear in content size.
                let text = doc.text(node).unwrap_or("");
                let end = text
                    .char_indices()
                    .nth(32)
                    .map_or(text.len(), |(idx, _)| idx);
                r.push_str(&text[..end]);
            }
            NodeKind::Comment => r.push_str("c"),
            NodeKind::Pi => r.push_str("p"),
            NodeKind::Document => r.push_str("d"),
        }
    }
    r.hash
}

/// Size counters describing a built [`DocIndex`], for profiling surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Elements reachable from the root.
    pub elements: usize,
    /// Distinct element tags.
    pub distinct_tags: usize,
    /// Distinct attribute names with postings.
    pub distinct_attrs: usize,
    /// Elements with at least one direct text child.
    pub text_elements: usize,
    /// Distinct direct-text values keyed for value lookups.
    pub distinct_text_values: usize,
}

/// One-pass document index: postings, interval numbering and structural
/// hashes. See the module docs for the access paths it provides.
#[derive(Debug, Clone)]
pub struct DocIndex {
    /// Preorder number per node id; `u32::MAX` for nodes not reachable from
    /// the document root (detached subtrees).
    pre: Vec<u32>,
    /// Exclusive end of the subtree's preorder interval: `n`'s subtree is
    /// exactly the nodes with `pre in [pre[n], end[n])`.
    end: Vec<u32>,
    /// Rolling hash of `canonical(doc, n)` per node id.
    hash: Vec<u64>,
    /// `BASE^len(canonical(doc, n))` per node id (kept so detached-subtree
    /// rebuilds and incremental composition stay possible).
    pow: Vec<u64>,
    /// Whether the node was reachable at build time (its `hash` is valid).
    hashed: Vec<bool>,
    /// Elements by tag symbol, in document order.
    by_tag: HashMap<Symbol, Vec<NodeId>>,
    /// All elements, in document order.
    elements: Vec<NodeId>,
    /// Elements carrying an attribute with the given name, in document order.
    by_attr: HashMap<Symbol, Vec<NodeId>>,
    /// Elements with at least one direct text child, in document order.
    with_text: Vec<NodeId>,
    /// Elements keyed by the concatenation of their direct text children.
    by_text_value: HashMap<Box<str>, Vec<NodeId>>,
    /// `Document::node_count()` at build time, for staleness fingerprinting.
    built_for: usize,
    /// Checksum over the index contents, set once at the end of [`build`].
    /// [`is_intact`](DocIndex::is_intact) recomputes and compares it, so a
    /// posting list mutated after build (bit rot, or the fault-injection
    /// seam's simulated corruption) is detectable before the index is trusted
    /// for query answering.
    checksum: u64,
}

const EMPTY: &[NodeId] = &[];

impl DocIndex {
    /// Build the index in one counting pre-pass (exact container sizing),
    /// one preorder pass (postings, intervals) and one reverse-preorder
    /// pass (subtree sizes and bottom-up hashes).
    pub fn build(doc: &Document) -> DocIndex {
        let n = doc.node_count();
        // Counting pre-pass: one flat arena sweep sizes every posting
        // container exactly, so the preorder pass below never reallocates —
        // repeated `Vec` doublings (each a memcpy of a large postings list)
        // and `HashMap` rehashes dominated the build on large documents.
        // Detached nodes are counted too: a slightly generous capacity is
        // harmless. Per-symbol counts are dense arrays indexed by the
        // interner id, not maps.
        let mut element_total = 0usize;
        let mut text_total = 0usize;
        let mut distinct_tags = 0usize;
        let mut distinct_attrs = 0usize;
        let mut tag_counts: Vec<u32> = Vec::new();
        let mut attr_counts: Vec<u32> = Vec::new();
        for i in 0..n {
            let node = NodeId::from_index(i);
            if doc.kind(node) != NodeKind::Element {
                continue;
            }
            element_total += 1;
            if let Some(sym) = doc.name_sym(node) {
                let s = sym.index();
                if s >= tag_counts.len() {
                    tag_counts.resize(s + 1, 0);
                }
                distinct_tags += usize::from(tag_counts[s] == 0);
                tag_counts[s] += 1;
            }
            for sym in doc.attr_syms(node) {
                let s = sym.index();
                if s >= attr_counts.len() {
                    attr_counts.resize(s + 1, 0);
                }
                distinct_attrs += usize::from(attr_counts[s] == 0);
                attr_counts[s] += 1;
            }
            if doc
                .children(node)
                .iter()
                .any(|&c| doc.kind(c) == NodeKind::Text)
            {
                text_total += 1;
            }
        }
        let mut idx = DocIndex {
            pre: vec![u32::MAX; n],
            end: vec![u32::MAX; n],
            hash: vec![0; n],
            pow: vec![1; n],
            hashed: vec![false; n],
            by_tag: HashMap::with_capacity(distinct_tags),
            elements: Vec::with_capacity(element_total),
            by_attr: HashMap::with_capacity(distinct_attrs),
            with_text: Vec::with_capacity(text_total),
            // Distinct direct-text values are bounded by the number of
            // elements that have direct text at all.
            by_text_value: HashMap::with_capacity(text_total),
            built_for: n,
            checksum: 0,
        };

        // Preorder pass: numbering and postings, in document order.
        let mut pre_list: Vec<NodeId> = Vec::with_capacity(n);
        let mut stack = vec![doc.root()];
        while let Some(node) = stack.pop() {
            idx.pre[node.index()] = pre_list.len() as u32;
            pre_list.push(node);
            if doc.kind(node) == NodeKind::Element {
                idx.elements.push(node);
                if let Some(sym) = doc.name_sym(node) {
                    idx.by_tag
                        .entry(sym)
                        .or_insert_with(|| Vec::with_capacity(tag_counts[sym.index()] as usize))
                        .push(node);
                }
                for sym in doc.attr_syms(node) {
                    let posting = idx
                        .by_attr
                        .entry(sym)
                        .or_insert_with(|| Vec::with_capacity(attr_counts[sym.index()] as usize));
                    // An element appears once even with duplicate names.
                    if posting.last() != Some(&node) {
                        posting.push(node);
                    }
                }
                // Direct-text key: the single-text-child case (the vast
                // majority) borrows the text and only allocates an owned
                // key for the first occurrence of each value; concatenation
                // is reserved for mixed content.
                let mut text_children = doc
                    .children(node)
                    .iter()
                    .filter(|&&c| doc.kind(c) == NodeKind::Text);
                let first = text_children.next();
                if let Some(&first) = first {
                    idx.with_text.push(node);
                    let rest: Vec<NodeId> = text_children.copied().collect();
                    if rest.is_empty() {
                        let value = doc.text(first).unwrap_or("");
                        if let Some(posting) = idx.by_text_value.get_mut(value) {
                            posting.push(node);
                        } else {
                            idx.by_text_value.insert(value.into(), vec![node]);
                        }
                    } else {
                        let mut direct_text = doc.text(first).unwrap_or("").to_string();
                        for c in rest {
                            direct_text.push_str(doc.text(c).unwrap_or(""));
                        }
                        idx.by_text_value
                            .entry(direct_text.into_boxed_str())
                            .or_default()
                            .push(node);
                    }
                }
            }
            for &c in doc.children(node).iter().rev() {
                stack.push(c);
            }
        }

        // Reverse preorder visits children before parents: subtree sizes and
        // structural hashes compose bottom-up in O(1) per node.
        let mut size = vec![0u32; n];
        for &node in pre_list.iter().rev() {
            let i = node.index();
            let mut roll = Roll::new();
            match doc.kind(node) {
                NodeKind::Text => {
                    roll.push_str("t:");
                    roll.push_str(doc.text(node).unwrap_or(""));
                }
                NodeKind::Comment | NodeKind::Pi => {}
                NodeKind::Element | NodeKind::Document => {
                    roll.push_str("e:");
                    roll.push_str(doc.name(node).unwrap_or(""));
                    roll.push_str("[");
                    let mut attrs: Vec<(&str, &str)> = doc.attrs(node).collect();
                    attrs.sort();
                    for (j, (k, v)) in attrs.iter().enumerate() {
                        if j > 0 {
                            roll.push_str(",");
                        }
                        roll.push_str(k);
                        roll.push_str("=");
                        roll.push_str(v);
                    }
                    roll.push_str("](");
                    let mut first = true;
                    for &c in doc.children(node) {
                        if matches!(doc.kind(c), NodeKind::Comment | NodeKind::Pi) {
                            continue;
                        }
                        if !first {
                            roll.push_str(",");
                        }
                        first = false;
                        roll.push_rolled(Roll {
                            hash: idx.hash[c.index()],
                            pow: idx.pow[c.index()],
                        });
                    }
                    roll.push_str(")");
                }
            }
            idx.hash[i] = roll.hash;
            idx.pow[i] = roll.pow;
            idx.hashed[i] = true;
            let children_size: u32 = doc.children(node).iter().map(|c| size[c.index()]).sum();
            size[i] = 1 + children_size;
            idx.end[i] = idx.pre[i] + size[i];
        }

        idx.checksum = idx.compute_checksum();
        idx
    }

    /// FNV-style checksum over the numbering arrays and posting lists.
    /// Per-list hashes are order-dependent (a reordered posting is corrupt);
    /// the map-level accumulation is order-independent because `HashMap`
    /// iteration order is unstable.
    fn compute_checksum(&self) -> u64 {
        const SEED: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(PRIME)
        }
        fn list_hash(list: &[NodeId]) -> u64 {
            let mut h = mix(SEED, list.len() as u64);
            for &n in list {
                h = mix(h, n.index() as u64 + 1);
            }
            h
        }
        let mut h = mix(SEED, self.built_for as u64);
        for &p in &self.pre {
            h = mix(h, p as u64);
        }
        for &e in &self.end {
            h = mix(h, e as u64);
        }
        h = mix(h, list_hash(&self.elements));
        h = mix(h, list_hash(&self.with_text));
        let mut acc: u64 = 0;
        for list in self.by_tag.values() {
            acc = acc.wrapping_add(list_hash(list));
        }
        for list in self.by_attr.values() {
            acc = acc.wrapping_add(list_hash(list).rotate_left(17));
        }
        for list in self.by_text_value.values() {
            acc = acc.wrapping_add(list_hash(list).rotate_left(34));
        }
        mix(h, acc)
    }

    /// Does the index still match the checksum taken at build time? `false`
    /// means a posting list or numbering array was mutated after build and
    /// the index must not be trusted — callers degrade to scan evaluation.
    pub fn is_intact(&self) -> bool {
        self.checksum == self.compute_checksum()
    }

    /// Deliberately corrupt one posting list *without* refreshing the
    /// checksum, so [`is_intact`](DocIndex::is_intact) reports `false`. This
    /// backs the `corrupt_postings` fault-injection seam in integration
    /// tests; it has no production callers.
    pub fn corrupt_for_test(&mut self) {
        if let Some(list) = self.by_tag.values_mut().max_by_key(|v| v.len()) {
            if !list.is_empty() {
                list.pop();
                return;
            }
        }
        if !self.elements.is_empty() {
            self.elements.pop();
            return;
        }
        self.built_for = self.built_for.wrapping_add(1);
    }

    /// Node count of the document this index was built for; a cheap
    /// staleness fingerprint (appending nodes changes it).
    pub fn built_for(&self) -> usize {
        self.built_for
    }

    /// Preorder number of a node, or `None` if it was detached at build time.
    pub fn pre(&self, node: NodeId) -> Option<u32> {
        match self.pre.get(node.index()) {
            Some(&p) if p != u32::MAX => Some(p),
            _ => None,
        }
    }

    /// All elements named `name`, in document order.
    pub fn elements_named<'a>(&'a self, doc: &Document, name: &str) -> &'a [NodeId] {
        doc.lookup_sym(name)
            .map_or(EMPTY, |sym| self.elements_named_sym(sym))
    }

    /// All elements whose tag is `sym`, in document order.
    pub fn elements_named_sym(&self, sym: Symbol) -> &[NodeId] {
        self.by_tag.get(&sym).map_or(EMPTY, Vec::as_slice)
    }

    /// All elements, in document order.
    pub fn elements(&self) -> &[NodeId] {
        &self.elements
    }

    /// Elements carrying an attribute whose name is `sym`, in document order.
    pub fn elements_with_attr_sym(&self, sym: Symbol) -> &[NodeId] {
        self.by_attr.get(&sym).map_or(EMPTY, Vec::as_slice)
    }

    /// Elements with at least one direct text child, in document order.
    pub fn elements_with_text(&self) -> &[NodeId] {
        &self.with_text
    }

    /// Elements whose concatenated direct text equals `value`, in document
    /// order.
    pub fn elements_with_text_value(&self, value: &str) -> &[NodeId] {
        self.by_text_value.get(value).map_or(EMPTY, Vec::as_slice)
    }

    /// Distinct tags with their element counts (the free projection backing
    /// `DocStats::from_index`).
    pub fn tag_counts(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.by_tag.iter().map(|(&sym, v)| (sym, v.len()))
    }

    /// Total number of elements reachable from the root.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Is `node` inside `anc`'s subtree (including `anc` itself)? Two
    /// comparisons on the interval numbering; `false` if either node was
    /// detached at build time.
    pub fn is_descendant_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        match (self.pre(anc), self.pre(node)) {
            (Some(a), Some(d)) => d >= a && d < self.end[anc.index()],
            _ => false,
        }
    }

    /// Is `node` a proper descendant of `anc`?
    pub fn is_descendant(&self, anc: NodeId, node: NodeId) -> bool {
        anc != node && self.is_descendant_or_self(anc, node)
    }

    /// Slice of a document-ordered postings list restricted to `anc`'s
    /// subtree interval, via two binary searches.
    fn range_in<'a>(&self, list: &'a [NodeId], anc: NodeId, include_self: bool) -> &'a [NodeId] {
        let Some(a) = self.pre(anc) else { return EMPTY };
        let e = self.end[anc.index()];
        let lo_bound = if include_self { a } else { a + 1 };
        let lo = list.partition_point(|&n| self.pre[n.index()] < lo_bound);
        let hi = list.partition_point(|&n| self.pre[n.index()] < e);
        &list[lo..hi]
    }

    /// Elements named `sym` that are proper descendants of `anc` (or also
    /// `anc` itself when `include_self`), in document order.
    pub fn named_in(&self, sym: Symbol, anc: NodeId, include_self: bool) -> &[NodeId] {
        self.range_in(self.elements_named_sym(sym), anc, include_self)
    }

    /// Elements in `anc`'s subtree, in document order.
    pub fn elements_in(&self, anc: NodeId, include_self: bool) -> &[NodeId] {
        self.range_in(&self.elements, anc, include_self)
    }

    /// Elements in `anc`'s subtree carrying an attribute named `sym`.
    pub fn with_attr_in(&self, sym: Symbol, anc: NodeId, include_self: bool) -> &[NodeId] {
        self.range_in(self.elements_with_attr_sym(sym), anc, include_self)
    }

    /// Elements in `anc`'s subtree with a direct text child.
    pub fn with_text_in(&self, anc: NodeId, include_self: bool) -> &[NodeId] {
        self.range_in(&self.with_text, anc, include_self)
    }

    /// Size counters for profiling surfaces (index-build spans).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            elements: self.elements.len(),
            distinct_tags: self.by_tag.len(),
            distinct_attrs: self.by_attr.len(),
            text_elements: self.with_text.len(),
            distinct_text_values: self.by_text_value.len(),
        }
    }

    /// Memoized structural hash: the rolling hash of `canonical(doc, node)`.
    /// Nodes detached at build time fall back to hashing their canonical
    /// form directly (rare; keeps the canonical-equal ⇒ hash-equal invariant
    /// unconditional).
    pub fn structural_hash(&self, doc: &Document, node: NodeId) -> u64 {
        if self.hashed.get(node.index()).copied().unwrap_or(false) {
            self.hash[node.index()]
        } else {
            hash_str(&canonical(doc, node))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrity_checksum_detects_corruption() {
        let doc = Document::parse_str("<r><a>x</a><a>y</a><b/></r>").unwrap();
        let idx = DocIndex::build(&doc);
        assert!(idx.is_intact());
        // Clones share the checksum and stay intact.
        let mut bad = idx.clone();
        assert!(bad.is_intact());
        bad.corrupt_for_test();
        assert!(!bad.is_intact(), "corrupted posting must fail verification");
        // The original is untouched.
        assert!(idx.is_intact());
    }

    #[test]
    fn corrupt_for_test_works_on_trivial_documents() {
        // No elements at all: the fallback path must still flip the check.
        let doc = Document::parse_str("<e/>").unwrap();
        let mut idx = DocIndex::build(&doc);
        for _ in 0..3 {
            // Repeated corruption keeps the index non-intact, never panics.
            idx.corrupt_for_test();
            assert!(!idx.is_intact());
        }
    }

    fn fixture() -> Document {
        Document::parse_str(
            "<bib><book year='1999' isbn='1'><title>Data<!--c--> on the Web</title>\
             <author><last>Abiteboul</last></author></book>\
             <book year='2000'><title>XML-GL</title><author><last>Comai</last></author>\
             <price>39</price></book>\
             <paper><title>XML-GL</title><?pi d?></paper></bib>",
        )
        .unwrap()
    }

    #[test]
    fn postings_match_linear_scan() {
        let doc = fixture();
        let idx = DocIndex::build(&doc);
        for tag in ["bib", "book", "title", "author", "last", "price", "paper"] {
            let scanned: Vec<NodeId> = doc.elements_named(tag).collect();
            assert_eq!(idx.elements_named(&doc, tag), &scanned[..], "tag {tag}");
        }
        assert!(idx.elements_named(&doc, "absent").is_empty());
        let all: Vec<NodeId> = doc
            .descendants(doc.root())
            .filter(|&n| doc.kind(n) == NodeKind::Element)
            .collect();
        assert_eq!(idx.elements(), &all[..]);
        assert_eq!(idx.element_count(), all.len());
    }

    #[test]
    fn intervals_agree_with_ancestor_walks() {
        let doc = fixture();
        let idx = DocIndex::build(&doc);
        let nodes: Vec<NodeId> = doc.descendants_or_self(doc.root()).collect();
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(
                    idx.is_descendant_or_self(a, b),
                    doc.is_ancestor_or_self(a, b),
                    "{a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn range_lookups_match_subtree_filters() {
        let doc = fixture();
        let idx = DocIndex::build(&doc);
        let books: Vec<NodeId> = doc.elements_named("book").collect();
        let title = doc.lookup_sym("title").unwrap();
        for &book in &books {
            let expect: Vec<NodeId> = doc
                .descendants(book)
                .filter(|&n| doc.name(n) == Some("title"))
                .collect();
            assert_eq!(idx.named_in(title, book, false), &expect[..]);
            let elems: Vec<NodeId> = doc
                .descendants(book)
                .filter(|&n| doc.kind(n) == NodeKind::Element)
                .collect();
            assert_eq!(idx.elements_in(book, false), &elems[..]);
        }
        // include_self picks up the anchor when it qualifies.
        let book_sym = doc.lookup_sym("book").unwrap();
        assert_eq!(idx.named_in(book_sym, books[0], true), &books[..1]);
        assert!(idx.named_in(book_sym, books[0], false).is_empty());
    }

    #[test]
    fn attr_and_text_postings() {
        let doc = fixture();
        let idx = DocIndex::build(&doc);
        let year = doc.lookup_sym("year").unwrap();
        let with_year: Vec<NodeId> = doc
            .descendants(doc.root())
            .filter(|&n| doc.attr(n, "year").is_some())
            .collect();
        assert_eq!(idx.elements_with_attr_sym(year), &with_year[..]);
        let texty: Vec<NodeId> = doc
            .descendants(doc.root())
            .filter(|&n| {
                doc.kind(n) == NodeKind::Element
                    && doc
                        .children(n)
                        .iter()
                        .any(|&c| doc.kind(c) == NodeKind::Text)
            })
            .collect();
        assert_eq!(idx.elements_with_text(), &texty[..]);
        assert_eq!(idx.elements_with_text_value("39").len(), 1);
        assert_eq!(idx.elements_with_text_value("XML-GL").len(), 2);
        assert!(idx.elements_with_text_value("nope").is_empty());
    }

    #[test]
    fn structural_hash_is_hash_of_canonical() {
        let doc = fixture();
        let idx = DocIndex::build(&doc);
        for n in doc.descendants_or_self(doc.root()) {
            assert_eq!(
                idx.structural_hash(&doc, n),
                hash_str(&canonical(&doc, n)),
                "node {n:?}: memoized hash must equal hash of canonical form"
            );
        }
        // Equal canonical forms (the two XML-GL titles) hash equal.
        let titles: Vec<NodeId> = doc
            .elements_named("title")
            .filter(|&n| doc.text_content(n) == "XML-GL")
            .collect();
        assert_eq!(titles.len(), 2);
        assert_eq!(canonical(&doc, titles[0]), canonical(&doc, titles[1]));
        assert_eq!(
            idx.structural_hash(&doc, titles[0]),
            idx.structural_hash(&doc, titles[1])
        );
    }

    #[test]
    fn stats_count_postings() {
        let doc = fixture();
        let idx = DocIndex::build(&doc);
        let s = idx.stats();
        assert_eq!(s.elements, idx.element_count());
        assert_eq!(s.distinct_tags, 7); // bib book title author last price paper
        assert_eq!(s.distinct_attrs, 2); // year isbn
        assert_eq!(s.text_elements, idx.elements_with_text().len());
        assert_eq!(s.distinct_text_values, 5); // two XML-GL titles share a key
    }

    #[test]
    fn shallow_fingerprint_distinguishes_root_level_changes() {
        let a = Document::parse_str("<r a='1'><x/><y/>t</r>").unwrap();
        let same = Document::parse_str("<r a='1'><x/><y/>t</r>").unwrap();
        assert_eq!(shallow_fingerprint(&a), shallow_fingerprint(&same));
        for other in [
            "<r a='2'><x/><y/>t</r>",    // attr value
            "<r b='1'><x/><y/>t</r>",    // attr name
            "<q a='1'><x/><y/>t</q>",    // root tag
            "<r a='1'><y/><x/>t</r>",    // child order
            "<r a='1'><x/><y/>u</r>",    // direct text
            "<r a='1'><x/><y/><z/></r>", // child list
        ] {
            let b = Document::parse_str(other).unwrap();
            assert_ne!(
                shallow_fingerprint(&a),
                shallow_fingerprint(&b),
                "fingerprint failed to distinguish {other}"
            );
        }
        // Node-count changes below the root are caught via the count term
        // even when the root's immediate children look identical.
        let deep_a = Document::parse_str("<r><x><d/></x></r>").unwrap();
        let deep_b = Document::parse_str("<r><x><d/><d/></x></r>").unwrap();
        assert_ne!(shallow_fingerprint(&deep_a), shallow_fingerprint(&deep_b));
    }

    #[test]
    fn tag_counts_project_postings() {
        let doc = fixture();
        let idx = DocIndex::build(&doc);
        let counts: std::collections::HashMap<&str, usize> = idx
            .tag_counts()
            .map(|(sym, n)| (doc.resolve_sym(sym), n))
            .collect();
        assert_eq!(counts["book"], 2);
        assert_eq!(counts["title"], 3);
        assert_eq!(counts["bib"], 1);
    }
}
