//! Structured diagnostics for the graphical query languages.
//!
//! The paper's central usability claim is that visual queries can be
//! *checked while drawn*: the editor flags ill-formedness, unsafe
//! constructions and schema violations before a query ever runs. This
//! module is the vocabulary for those checks — stable codes
//! ([`Code`], rendered `GQL001`…), severities ([`Severity`]), source spans
//! ([`Span`]), and a [`Report`] that renders both human-readable text and a
//! machine-readable JSON document.
//!
//! It lives in `gql-ssdm` (the crate everything else depends on) so that
//! both language front ends, the unified core and the `gql-analyze` lint
//! framework can produce and consume the same diagnostic type without a
//! dependency cycle.

use std::fmt;

/// A source position (1-based line/column) attached to an AST node or
/// diagnostic. `line == 0` means "no position" (e.g. programs assembled via
/// the builders rather than parsed from DSL text).
///
/// Spans are **metadata, not value**: two ASTs that differ only in spans are
/// the same program, and the DSL printers deliberately do not round-trip
/// positions. `PartialEq`/`Hash` therefore ignore spans entirely — every
/// span compares equal — so structural equality of parsed programs is
/// unaffected by where their tokens sat in the source text.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// The absent span, used by programmatic builders.
    pub fn none() -> Span {
        Span { line: 0, col: 0 }
    }

    pub fn is_none(&self) -> bool {
        self.line == 0
    }
}

// Spans are position metadata: equality and hashing ignore them (see type
// docs). This keeps `Program` equality structural across print/reparse.
impl PartialEq for Span {
    fn eq(&self, _other: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Diagnostic severity, ordered `Hint < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Hint,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Hint => "hint",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The numeric rendering (`GQL001`…) is part of
/// the tool's public interface: codes are never renumbered, only added.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// GQL000 — DSL syntax error (the parser could not produce an AST).
    Syntax,
    /// GQL001 — XML-GL structural ill-formedness (graph shape violations).
    XmlGlIllFormed,
    /// GQL002 — a variable is bound more than once in a rule.
    DuplicateVariable,
    /// GQL003 — a binding or join endpoint escapes a negated subtree.
    NegationScope,
    /// GQL004 — unsafe construct part: references a variable that is never
    /// positively bound on the query side (range restriction).
    UnsafeConstruct,
    /// GQL005 — the query graph is disconnected: independently bound parts
    /// multiply into an accidental cartesian product.
    DisconnectedQuery,
    /// GQL006 — XML-GL query contradicts the document schema (DTD).
    XmlSchemaMismatch,
    /// GQL007 — a predicate is unsatisfiable (e.g. `= "a" and = "b"`).
    ContradictoryPredicate,
    /// GQL008 — a variable is bound but never used.
    UnusedVariable,
    /// GQL009 — cost hint: the plan contains a super-linear join blowup.
    CostBlowup,
    /// GQL010 — WG-Log program is not stratifiable (negation in a cycle).
    NotStratifiable,
    /// GQL011 — WG-Log rule ill-formedness (coloring/shape violations).
    WgLogIllFormed,
    /// GQL012 — WG-Log rule contradicts the schema graph.
    WgSchemaMismatch,
    /// GQL013 — the goal type is neither in the schema nor constructed by
    /// any rule: the answer is provably empty.
    GoalNeverConstructed,
    /// GQL014 — the query is provably empty under the inferred structural
    /// summary of the queried document (no conforming data can match).
    EmptyUnderSummary,
    /// GQL015 — a WG-Log rule is dead: its positive observations can never
    /// be satisfied by the base facts or any live rule's output.
    DeadRule,
    /// GQL016 — an XPath step selects along a path the document's summary
    /// automaton does not contain.
    PathNeverMatches,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Syntax => "GQL000",
            Code::XmlGlIllFormed => "GQL001",
            Code::DuplicateVariable => "GQL002",
            Code::NegationScope => "GQL003",
            Code::UnsafeConstruct => "GQL004",
            Code::DisconnectedQuery => "GQL005",
            Code::XmlSchemaMismatch => "GQL006",
            Code::ContradictoryPredicate => "GQL007",
            Code::UnusedVariable => "GQL008",
            Code::CostBlowup => "GQL009",
            Code::NotStratifiable => "GQL010",
            Code::WgLogIllFormed => "GQL011",
            Code::WgSchemaMismatch => "GQL012",
            Code::GoalNeverConstructed => "GQL013",
            Code::EmptyUnderSummary => "GQL014",
            Code::DeadRule => "GQL015",
            Code::PathNeverMatches => "GQL016",
        }
    }

    /// The severity this code carries unless a producer overrides it.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::Syntax
            | Code::XmlGlIllFormed
            | Code::DuplicateVariable
            | Code::NegationScope
            | Code::UnsafeConstruct
            | Code::NotStratifiable
            | Code::WgLogIllFormed => Severity::Error,
            Code::DisconnectedQuery
            | Code::XmlSchemaMismatch
            | Code::ContradictoryPredicate
            | Code::WgSchemaMismatch
            | Code::GoalNeverConstructed
            | Code::EmptyUnderSummary
            | Code::DeadRule
            | Code::PathNeverMatches => Severity::Warning,
            Code::UnusedVariable | Code::CostBlowup => Severity::Hint,
        }
    }

    /// All codes, in numeric order (used by docs and coverage tests).
    pub fn all() -> &'static [Code] {
        &[
            Code::Syntax,
            Code::XmlGlIllFormed,
            Code::DuplicateVariable,
            Code::NegationScope,
            Code::UnsafeConstruct,
            Code::DisconnectedQuery,
            Code::XmlSchemaMismatch,
            Code::ContradictoryPredicate,
            Code::UnusedVariable,
            Code::CostBlowup,
            Code::NotStratifiable,
            Code::WgLogIllFormed,
            Code::WgSchemaMismatch,
            Code::GoalNeverConstructed,
            Code::EmptyUnderSummary,
            Code::DeadRule,
            Code::PathNeverMatches,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a coded, located, severity-ranked finding about a query
/// program, with an optional `help` suggestion (the "what the editor would
/// tell you" text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub span: Span,
    /// Human label of the rule the finding is in, e.g. `rule 2 (book)`.
    pub rule: Option<String>,
    pub message: String,
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span: Span::none(),
            rule: None,
            message: message.into(),
            help: None,
        }
    }

    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = span;
        self
    }

    pub fn with_rule(mut self, rule: impl Into<String>) -> Diagnostic {
        self.rule = Some(rule.into());
        self
    }

    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    /// `error[GQL003] at 4:7 in rule 2 (book): message (help: …)`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if !self.span.is_none() {
            write!(f, " at {}", self.span)?;
        }
        if let Some(rule) = &self.rule {
            write!(f, " in {rule}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(help) = &self.help {
            write!(f, " (help: {help})")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics with rendering helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Diagnostics at Error severity, e.g. to attach to a refusal.
    pub fn errors(&self) -> Vec<Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.is_error())
            .cloned()
            .collect()
    }

    /// The highest severity present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// One diagnostic per line, in emission order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON report (hand-rolled; the workspace is
    /// dependency-free). Schema:
    /// `{"diagnostics":[{code,severity,line,col,rule,message,help}…],
    ///   "errors":N,"warnings":N,"hints":N}`
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.as_str());
            out.push_str("\",\"line\":");
            out.push_str(&d.span.line.to_string());
            out.push_str(",\"col\":");
            out.push_str(&d.span.col.to_string());
            out.push_str(",\"rule\":");
            match &d.rule {
                Some(r) => {
                    out.push_str(&json_string(r));
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"message\":");
            out.push_str(&json_string(&d.message));
            out.push_str(",\"help\":");
            match &d.help {
                Some(h) => out.push_str(&json_string(h)),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("],\"errors\":");
        out.push_str(&self.count(Severity::Error).to_string());
        out.push_str(",\"warnings\":");
        out.push_str(&self.count(Severity::Warning).to_string());
        out.push_str(",\"hints\":");
        out.push_str(&self.count(Severity::Hint).to_string());
        out.push('}');
        out
    }
}

impl IntoIterator for Report {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.into_iter()
    }
}

impl From<Vec<Diagnostic>> for Report {
    fn from(diagnostics: Vec<Diagnostic>) -> Report {
        Report { diagnostics }
    }
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_metadata_only() {
        assert_eq!(Span::new(3, 9), Span::none());
        let a = Diagnostic::new(Code::UnusedVariable, "x").with_span(Span::new(1, 1));
        let b = Diagnostic::new(Code::UnusedVariable, "x").with_span(Span::new(7, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn display_format() {
        let d = Diagnostic::new(Code::NegationScope, "variable $x escapes")
            .with_span(Span::new(4, 7))
            .with_rule("rule 2 (book)")
            .with_help("bind $x outside the negation");
        assert_eq!(
            d.to_string(),
            "error[GQL003] at 4:7 in rule 2 (book): variable $x escapes \
             (help: bind $x outside the negation)"
        );
        let bare = Diagnostic::new(Code::CostBlowup, "plan multiplies");
        assert_eq!(bare.to_string(), "hint[GQL009]: plan multiplies");
    }

    #[test]
    fn report_counters() {
        let mut r = Report::new();
        assert!(r.is_empty() && !r.has_errors() && r.worst().is_none());
        r.push(Diagnostic::new(Code::UnusedVariable, "a"));
        r.push(Diagnostic::new(Code::DisconnectedQuery, "b"));
        assert_eq!(r.worst(), Some(Severity::Warning));
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Code::DuplicateVariable, "c"));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.errors().len(), 1);
        assert_eq!(r.render().lines().count(), 3);
    }

    #[test]
    fn json_escaping_and_shape() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Code::Syntax, "unexpected \"quote\"\nline two")
                .with_span(Span::new(2, 5)),
        );
        let j = r.to_json();
        assert!(j.contains("\"code\":\"GQL000\""));
        assert!(j.contains("\\\"quote\\\"\\nline two"));
        assert!(j.contains("\"line\":2,\"col\":5"));
        assert!(j.contains("\"errors\":1,\"warnings\":0,\"hints\":0"));
        assert!(j.contains("\"rule\":null"));
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let all = Code::all();
        assert_eq!(all.len(), 17);
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.as_str(), format!("GQL{i:03}"));
        }
    }
}
