//! Streaming XML processing — parse events without building a document.
//!
//! The survey chapter highlights research on evaluating XPath over SAX
//! streams ("no in-memory representation … highly relevant for very large
//! databases"). This module provides that substrate:
//!
//! * [`EventReader`] — a pull parser yielding [`Event`]s over the same XML
//!   subset as [`crate::xml`], in constant memory w.r.t. document size
//!   (the open-element stack is the only growth);
//! * [`StreamPath`] — a streaming evaluator for the navigational core
//!   (`/a/b//c`-style paths of child and descendant steps over element
//!   names and `*`), implemented as the classic stack-of-state-sets
//!   construction.
//!
//! The DOM engine (`gql-xpath`) and [`StreamPath`] agree on this fragment;
//! the property tests pin that equivalence.

use crate::error::{Error, Pos, Result};

/// One parse event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Start tag with decoded attributes.
    Start {
        name: String,
        attrs: Vec<(String, String)>,
    },
    /// End tag (also emitted for self-closing elements).
    End {
        name: String,
    },
    /// Text content (entity-decoded; whitespace-only runs included).
    Text(String),
    Comment(String),
    Pi {
        target: String,
        data: String,
    },
}

/// Pull parser over an XML string.
pub struct EventReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Open-element stack for well-formedness checking.
    stack: Vec<String>,
    /// Queued End event for self-closing tags.
    pending_end: Option<String>,
    prolog_done: bool,
    finished: bool,
    /// Set once the root element has closed; further start tags error.
    root_closed: bool,
}

impl<'a> EventReader<'a> {
    pub fn new(input: &'a str) -> Self {
        EventReader {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            stack: Vec::new(),
            pending_end: None,
            prolog_done: false,
            finished: false,
            root_closed: false,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::xml(Pos::new(self.line, self.col), msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn looking_at(&self, s: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn expect_str(&mut self, s: &[u8]) -> Result<()> {
        if self.looking_at(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", String::from_utf8_lossy(s))))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self) -> Result<String> {
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {}
            _ => return Err(self.err("expected a name")),
        }
        let start = self.pos;
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn decode_entity(&mut self, out: &mut String) -> Result<()> {
        self.bump(); // '&'
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b';') {
            self.bump();
        }
        if self.peek() != Some(b';') {
            return Err(self.err("unterminated entity reference"));
        }
        let name = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.bump();
        match name.as_str() {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let cp = if let Some(hex) =
                    name.strip_prefix("#x").or_else(|| name.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse().ok()
                } else {
                    None
                };
                match cp.and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => return Err(self.err(format!("unknown entity &{name};"))),
                }
            }
        }
        Ok(())
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws();
        // Exact `<?xml` declaration only; `<?xml-stylesheet?>` is a PI.
        if self.looking_at(b"<?xml")
            && matches!(
                self.bytes.get(self.pos + 5),
                Some(b' ' | b'\t' | b'\r' | b'\n' | b'?')
            )
        {
            while !self.looking_at(b"?>") {
                if self.bump().is_none() {
                    return Err(self.err("unterminated XML declaration"));
                }
            }
            self.expect_str(b"?>")?;
        }
        loop {
            self.skip_ws();
            if self.looking_at(b"<!DOCTYPE") {
                let mut depth = 0usize;
                let mut quote: Option<u8> = None;
                loop {
                    match self.bump() {
                        Some(q @ (b'"' | b'\'')) => match quote {
                            Some(open) if open == q => quote = None,
                            Some(_) => {}
                            None => quote = Some(q),
                        },
                        Some(_) if quote.is_some() => {}
                        Some(b'[') => depth += 1,
                        Some(b']') => depth = depth.saturating_sub(1),
                        Some(b'>') if depth == 0 => break,
                        Some(_) => {}
                        None => return Err(self.err("unterminated DOCTYPE")),
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Next event, or `None` at clean end of input.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<Event>> {
        match self.advance() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Event>> {
        if self.finished {
            return Ok(None);
        }
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            if self.stack.is_empty() {
                self.root_closed = true;
                self.check_trailer()?;
            }
            return Ok(Some(Event::End { name }));
        }
        if !self.prolog_done {
            self.skip_prolog()?;
            self.prolog_done = true;
        }
        if self.stack.is_empty() {
            self.skip_ws();
        }
        let Some(b) = self.peek() else {
            if self.stack.is_empty() {
                self.finished = true;
                return Ok(None);
            }
            return Err(self.err(format!(
                "missing closing tag </{}>",
                self.stack.last().expect("nonempty")
            )));
        };
        if b != b'<' {
            // Text run.
            if self.stack.is_empty() {
                return Err(self.err("text is not allowed at the top level"));
            }
            let mut text = String::new();
            loop {
                match self.peek() {
                    Some(b'<') | None => break,
                    Some(b'&') => self.decode_entity(&mut text)?,
                    Some(_) => {
                        let start = self.pos;
                        while matches!(self.peek(), Some(b) if b != b'<' && b != b'&') {
                            self.bump();
                        }
                        text.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                    }
                }
            }
            return Ok(Some(Event::Text(text)));
        }
        if self.looking_at(b"<!--") {
            self.expect_str(b"<!--")?;
            let start = self.pos;
            while !self.looking_at(b"-->") {
                if self.bump().is_none() {
                    return Err(self.err("unterminated comment"));
                }
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.expect_str(b"-->")?;
            return Ok(Some(Event::Comment(text)));
        }
        if self.looking_at(b"<![CDATA[") {
            self.expect_str(b"<![CDATA[")?;
            if self.stack.is_empty() {
                return Err(self.err("CDATA is not allowed at the top level"));
            }
            let start = self.pos;
            while !self.looking_at(b"]]>") {
                if self.bump().is_none() {
                    return Err(self.err("unterminated CDATA"));
                }
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.expect_str(b"]]>")?;
            return Ok(Some(Event::Text(text)));
        }
        if self.looking_at(b"<?") {
            self.expect_str(b"<?")?;
            let target = self.parse_name()?;
            self.skip_ws();
            let start = self.pos;
            while !self.looking_at(b"?>") {
                if self.bump().is_none() {
                    return Err(self.err("unterminated processing instruction"));
                }
            }
            let data = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.expect_str(b"?>")?;
            return Ok(Some(Event::Pi { target, data }));
        }
        if self.looking_at(b"</") {
            self.expect_str(b"</")?;
            let name = self.parse_name()?;
            self.skip_ws();
            self.expect_str(b">")?;
            match self.stack.pop() {
                Some(open) if open == name => {
                    if self.stack.is_empty() {
                        self.root_closed = true;
                        self.check_trailer()?;
                    }
                    Ok(Some(Event::End { name }))
                }
                Some(open) => Err(self.err(format!(
                    "mismatched closing tag </{name}>, expected </{open}>"
                ))),
                None => Err(self.err(format!("stray closing tag </{name}>"))),
            }
        } else {
            // Start tag.
            if self.stack.is_empty() && self.root_closed {
                return Err(self.err("more than one top-level element"));
            }
            self.expect_str(b"<")?;
            let name = self.parse_name()?;
            let mut attrs = Vec::new();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'>') => {
                        self.bump();
                        self.stack.push(name.clone());
                        return Ok(Some(Event::Start { name, attrs }));
                    }
                    Some(b'/') => {
                        self.bump();
                        self.expect_str(b">")?;
                        self.stack.push(name.clone());
                        self.pending_end = Some(name.clone());
                        return Ok(Some(Event::Start { name, attrs }));
                    }
                    Some(b) if Self::is_name_start(b) => {
                        let attr = self.parse_name()?;
                        self.skip_ws();
                        self.expect_str(b"=")?;
                        self.skip_ws();
                        let quote = match self.peek() {
                            Some(q @ (b'"' | b'\'')) => q,
                            _ => return Err(self.err("expected quoted attribute value")),
                        };
                        self.bump();
                        let mut value = String::new();
                        loop {
                            match self.peek() {
                                Some(q) if q == quote => {
                                    self.bump();
                                    break;
                                }
                                Some(b'&') => self.decode_entity(&mut value)?,
                                Some(b'<') => return Err(self.err("'<' in attribute value")),
                                Some(_) => {
                                    let start = self.pos;
                                    while matches!(self.peek(), Some(b) if b != quote && b != b'&' && b != b'<')
                                    {
                                        self.bump();
                                    }
                                    value.push_str(&String::from_utf8_lossy(
                                        &self.bytes[start..self.pos],
                                    ));
                                }
                                None => return Err(self.err("unterminated attribute value")),
                            }
                        }
                        if attrs.iter().any(|(n, _)| n == &attr) {
                            return Err(self.err(format!("duplicate attribute '{attr}'")));
                        }
                        attrs.push((attr, value));
                    }
                    Some(x) => return Err(self.err(format!("unexpected '{}' in tag", x as char))),
                    None => return Err(self.err("unterminated start tag")),
                }
            }
        }
    }

    /// After the root element closes, only whitespace/comments/PIs may follow.
    fn check_trailer(&mut self) -> Result<()> {
        let save = (self.pos, self.line, self.col);
        self.skip_ws();
        if self.peek().is_some() && !self.looking_at(b"<!--") && !self.looking_at(b"<?") {
            if self.looking_at(b"<") && !self.looking_at(b"</") {
                return Err(self.err("more than one top-level element"));
            }
            if !self.looking_at(b"<") {
                return Err(self.err("text after the root element"));
            }
        }
        (self.pos, self.line, self.col) = save;
        Ok(())
    }

    /// Current open-element depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

impl Iterator for EventReader<'_> {
    type Item = Result<Event>;

    fn next(&mut self) -> Option<Self::Item> {
        EventReader::next(self)
    }
}

// ----------------------------------------------------------------------
// Streaming path evaluation
// ----------------------------------------------------------------------

/// One step of a streaming path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStep {
    /// `true` = descendant-or-further (the step crossed a `//`).
    pub deep: bool,
    /// Element name, or `None` for `*`.
    pub name: Option<String>,
}

/// A compiled streaming path: the navigational fragment `/a/b//c` (child
/// and descendant steps, names and `*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPath {
    /// `true` when the path starts with `//` (first step at any depth).
    root_deep: bool,
    steps: Vec<StreamStep>,
}

impl StreamPath {
    /// Parse a path: `/a/b`, `//a//b`, `/a/*//c`.
    pub fn parse(path: &str) -> Result<StreamPath> {
        let mut rest = path;
        let root_deep = if let Some(r) = rest.strip_prefix("//") {
            rest = r;
            true
        } else if let Some(r) = rest.strip_prefix('/') {
            rest = r;
            false
        } else {
            // Relative paths bind at the root element, same as absolute.
            false
        };
        if rest.is_empty() {
            return Err(Error::structure("empty streaming path"));
        }
        if rest.ends_with('/') {
            return Err(Error::structure("trailing '/' in streaming path"));
        }
        let mut steps = Vec::new();
        let mut deep = root_deep;
        let mut first = true;
        for part in rest.split('/') {
            if part.is_empty() {
                // A `//` separator: the *next* step is deep.
                deep = true;
                continue;
            }
            steps.push(StreamStep {
                deep: if first { root_deep } else { deep },
                name: if part == "*" {
                    None
                } else {
                    Some(part.to_string())
                },
            });
            deep = false;
            first = false;
        }
        if steps.is_empty() {
            return Err(Error::structure("empty streaming path"));
        }
        Ok(StreamPath { root_deep, steps })
    }

    /// Run over a document text, returning the number of matching elements
    /// and the concatenated text content of each match.
    ///
    /// Memory: O(depth × path length) — the defining property of streaming
    /// evaluation, irrespective of document length.
    pub fn run(&self, input: &str) -> Result<StreamOutcome> {
        // Active state-sets per open element. A state `i` means "the first
        // i steps are matched by ancestors". State = steps.len() is a match.
        let nsteps = self.steps.len();
        let mut stack: Vec<Vec<usize>> = Vec::new();
        // Open captures: (depth of the matched element, index into captures).
        let mut capturing: Vec<(usize, usize)> = Vec::new();
        let mut captures: Vec<String> = Vec::new();
        let mut count = 0usize;
        let mut reader = EventReader::new(input);
        let mut depth = 0usize;
        while let Some(ev) = reader.next() {
            match ev? {
                Event::Start { name, .. } => {
                    depth += 1;
                    // States active for children of the parent.
                    let parent_states: Vec<usize> = match stack.last() {
                        Some(s) => s.clone(),
                        None => vec![0],
                    };
                    let mut here = Vec::new();
                    for &st in &parent_states {
                        if st < nsteps {
                            let step = &self.steps[st];
                            let name_ok = step.name.as_deref().is_none_or(|n| n == name);
                            if name_ok {
                                push_unique(&mut here, st + 1);
                            }
                            // Deep steps stay available below.
                            if step.deep {
                                push_unique(&mut here, st);
                            }
                        }
                    }
                    if here.contains(&nsteps) {
                        count += 1;
                        capturing.push((depth, captures.len()));
                        captures.push(String::new());
                        // A full match cannot extend further; drop the
                        // terminal state from propagation.
                        here.retain(|&s| s != nsteps);
                    }
                    stack.push(here);
                }
                Event::End { .. } => {
                    if capturing.last().map(|&(d, _)| d) == Some(depth) {
                        capturing.pop();
                    }
                    stack.pop();
                    depth -= 1;
                }
                Event::Text(t) => {
                    // Text belongs to every open capture (nested matches
                    // each collect it, matching `text_content`).
                    for &(_, idx) in &capturing {
                        captures[idx].push_str(&t);
                    }
                }
                Event::Comment(_) | Event::Pi { .. } => {}
            }
        }
        Ok(StreamOutcome {
            count,
            texts: captures,
        })
    }
}

fn push_unique(v: &mut Vec<usize>, x: usize) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// Result of a streaming run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Number of elements matched.
    pub count: usize,
    /// Text content of each match, in document order of the start tags.
    pub texts: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        EventReader::new(src).collect::<Result<Vec<_>>>().unwrap()
    }

    #[test]
    fn event_sequence() {
        let evs = events("<a x='1'>hi<b/></a>");
        assert_eq!(
            evs,
            vec![
                Event::Start {
                    name: "a".into(),
                    attrs: vec![("x".into(), "1".into())]
                },
                Event::Text("hi".into()),
                Event::Start {
                    name: "b".into(),
                    attrs: vec![]
                },
                Event::End { name: "b".into() },
                Event::End { name: "a".into() },
            ]
        );
    }

    #[test]
    fn entities_comments_pis_cdata() {
        let evs = events("<a>&lt;&#65;<!--c--><?p d?><![CDATA[<x>]]></a>");
        assert_eq!(evs[1], Event::Text("<A".into()));
        assert_eq!(evs[2], Event::Comment("c".into()));
        assert_eq!(
            evs[3],
            Event::Pi {
                target: "p".into(),
                data: "d".into()
            }
        );
        assert_eq!(evs[4], Event::Text("<x>".into()));
    }

    #[test]
    fn errors_surface() {
        for bad in [
            "<a><b></a>",
            "<a>",
            "</a>",
            "<a></a><b/>",
            "<a>x</a>y",
            // Comments and PIs may trail the root, further elements may not.
            "<a/><!--c--><b/>",
            "<a/><?pi d?><b/>",
        ] {
            let result: Result<Vec<Event>> = EventReader::new(bad).collect();
            assert!(result.is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn agrees_with_dom_parser_on_generated_docs() {
        let doc = crate::generator::bibliography(crate::generator::BibConfig {
            books: 10,
            people: 5,
            seed: 1,
        });
        let xml = doc.to_xml_string();
        // Start events = number of elements.
        let starts = events(&xml)
            .iter()
            .filter(|e| matches!(e, Event::Start { .. }))
            .count();
        let elements = doc
            .descendants(doc.root())
            .filter(|&n| doc.kind(n) == crate::document::NodeKind::Element)
            .count();
        assert_eq!(starts, elements);
    }

    #[test]
    fn stream_path_basics() {
        let xml = "<bib><book><title>A</title></book><book><title>B</title></book>\
                   <article><title>C</title></article></bib>";
        assert_eq!(
            StreamPath::parse("/bib/book/title")
                .unwrap()
                .run(xml)
                .unwrap()
                .count,
            2
        );
        assert_eq!(
            StreamPath::parse("//title")
                .unwrap()
                .run(xml)
                .unwrap()
                .count,
            3
        );
        assert_eq!(
            StreamPath::parse("/bib/*/title")
                .unwrap()
                .run(xml)
                .unwrap()
                .count,
            3
        );
        let out = StreamPath::parse("/bib/book/title")
            .unwrap()
            .run(xml)
            .unwrap();
        assert_eq!(out.texts, vec!["A", "B"]);
    }

    #[test]
    fn deep_steps_match_at_any_depth() {
        let xml = "<r><a><x><a><b>deep</b></a></x></a><b>shallow-b</b></r>";
        assert_eq!(
            StreamPath::parse("//a//b").unwrap().run(xml).unwrap().count,
            1
        );
        assert_eq!(StreamPath::parse("//b").unwrap().run(xml).unwrap().count, 2);
        assert_eq!(
            StreamPath::parse("/r/a//b")
                .unwrap()
                .run(xml)
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn nested_matches_both_count_and_capture() {
        let xml = "<r><a>out<a>in</a></a></r>";
        let out = StreamPath::parse("//a").unwrap().run(xml).unwrap();
        assert_eq!(out.count, 2);
        assert_eq!(out.texts, vec!["outin", "in"]);
    }

    #[test]
    fn agrees_with_dom_xpath_on_the_shared_fragment() {
        let doc = crate::generator::cityguide(crate::generator::CityConfig {
            restaurants: 15,
            hotels: 5,
            seed: 9,
        });
        let xml = doc.to_xml_string();
        for path in [
            "/cityguide/restaurant/name",
            "//name",
            "//menu/dish",
            "/cityguide/*/city",
            "//restaurant/menu",
            "//nonexistent",
        ] {
            let streamed = StreamPath::parse(path).unwrap().run(&xml).unwrap().count;
            let dom = crate::path::select(&doc, doc.root(), path).len();
            assert_eq!(streamed, dom, "{path}");
        }
    }

    #[test]
    fn text_after_nested_match_closes_goes_to_the_outer_capture() {
        let xml = "<r><a>x<a>mid</a>y</a></r>";
        let out = StreamPath::parse("//a").unwrap().run(xml).unwrap();
        assert_eq!(out.count, 2);
        assert_eq!(out.texts, vec!["xmidy", "mid"]);
    }

    #[test]
    fn parse_errors() {
        assert!(StreamPath::parse("").is_err());
        assert!(StreamPath::parse("/").is_err());
        assert!(StreamPath::parse("//").is_err());
        assert!(StreamPath::parse("/a/").is_err());
        assert!(StreamPath::parse("//title//").is_err());
    }

    #[test]
    fn trailing_comments_and_pis_are_fine() {
        let evs = events("<a/><!--ok--><?pi d?>");
        assert_eq!(evs.len(), 4);
    }

    #[test]
    fn depth_tracking() {
        let mut r = EventReader::new("<a><b><c/></b></a>");
        let mut max = 0;
        while let Some(ev) = r.next() {
            ev.unwrap();
            max = max.max(r.depth());
        }
        assert_eq!(max, 3);
    }
}
