//! ID/IDREF reference resolution — the edges that turn the document tree
//! into a graph.
//!
//! The paper's languages treat semi-structured data as a *graph*: trees plus
//! reference edges established by ID/IDREF attribute pairs. This module
//! scans a document for such pairs and materialises a [`RefGraph`] — the
//! structure WG-Log's instance loader and XML-GL's join evaluation consume.
//!
//! Which attributes act as IDs and which as references is configurable
//! ([`RefConfig`]); the default recognises the conventional attribute names
//! (`id`; `idref`, `idrefs`, `ref`) and any DTD declarations when provided.

use std::collections::HashMap;

use crate::document::{Document, NodeKind};
use crate::dtd::{AttType, Dtd};
use crate::NodeId;

/// Configuration for reference-edge extraction.
#[derive(Debug, Clone)]
pub struct RefConfig {
    /// Attribute names treated as node identifiers.
    pub id_attrs: Vec<String>,
    /// Attribute names treated as single references.
    pub ref_attrs: Vec<String>,
    /// Attribute names treated as whitespace-separated reference lists.
    pub refs_attrs: Vec<String>,
}

impl Default for RefConfig {
    fn default() -> Self {
        RefConfig {
            id_attrs: vec!["id".into()],
            ref_attrs: vec!["idref".into(), "ref".into()],
            refs_attrs: vec!["idrefs".into(), "refs".into()],
        }
    }
}

impl RefConfig {
    /// Derive a configuration from DTD attribute declarations: every
    /// ID-typed attribute becomes an id attribute, and so on. Falls back to
    /// nothing — combine with [`RefConfig::default`] via [`RefConfig::merge`]
    /// if conventional names should also apply.
    pub fn from_dtd(dtd: &Dtd) -> Self {
        let mut cfg = RefConfig {
            id_attrs: vec![],
            ref_attrs: vec![],
            refs_attrs: vec![],
        };
        for elem in dtd.element_names() {
            for decl in dtd.attrs_of(elem) {
                let bucket = match decl.ty {
                    AttType::Id => &mut cfg.id_attrs,
                    AttType::Idref => &mut cfg.ref_attrs,
                    AttType::Idrefs => &mut cfg.refs_attrs,
                    _ => continue,
                };
                if !bucket.contains(&decl.name) {
                    bucket.push(decl.name.clone());
                }
            }
        }
        cfg
    }

    /// Union two configurations.
    pub fn merge(mut self, other: &RefConfig) -> Self {
        for (mine, theirs) in [
            (&mut self.id_attrs, &other.id_attrs),
            (&mut self.ref_attrs, &other.ref_attrs),
            (&mut self.refs_attrs, &other.refs_attrs),
        ] {
            for a in theirs {
                if !mine.contains(a) {
                    mine.push(a.clone());
                }
            }
        }
        self
    }
}

/// One resolved reference edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefEdge {
    /// The element carrying the reference attribute.
    pub from: NodeId,
    /// The element whose id attribute matched.
    pub to: NodeId,
}

/// The reference graph extracted from a document.
#[derive(Debug, Clone, Default)]
pub struct RefGraph {
    /// Identifier value → node carrying it.
    ids: HashMap<String, NodeId>,
    /// All resolved edges.
    edges: Vec<RefEdge>,
    /// Outgoing adjacency.
    out: HashMap<NodeId, Vec<NodeId>>,
    /// Incoming adjacency.
    incoming: HashMap<NodeId, Vec<NodeId>>,
    /// References whose target id did not exist.
    dangling: Vec<(NodeId, String)>,
}

impl RefGraph {
    /// Extract the reference graph using the default configuration.
    pub fn extract(doc: &Document) -> Self {
        Self::extract_with(doc, &RefConfig::default())
    }

    /// Extract with an explicit configuration.
    pub fn extract_with(doc: &Document, cfg: &RefConfig) -> Self {
        let mut g = RefGraph::default();
        // Pass 1: ids.
        for n in doc.descendants(doc.root()) {
            if doc.kind(n) != NodeKind::Element {
                continue;
            }
            for id_attr in &cfg.id_attrs {
                if let Some(v) = doc.attr(n, id_attr) {
                    // First declaration wins, matching XML ID semantics where
                    // duplicates are validity errors surfaced by the DTD layer.
                    g.ids.entry(v.to_string()).or_insert(n);
                }
            }
        }
        // Pass 2: references.
        for n in doc.descendants(doc.root()) {
            if doc.kind(n) != NodeKind::Element {
                continue;
            }
            for ref_attr in &cfg.ref_attrs {
                if let Some(v) = doc.attr(n, ref_attr) {
                    g.add_ref(n, v.trim());
                }
            }
            for refs_attr in &cfg.refs_attrs {
                if let Some(v) = doc.attr(n, refs_attr) {
                    for tok in v.split_whitespace() {
                        g.add_ref(n, tok);
                    }
                }
            }
        }
        g
    }

    fn add_ref(&mut self, from: NodeId, target: &str) {
        match self.ids.get(target) {
            Some(&to) => {
                // Repeated tokens (`refs="p1 p1"`) denote one edge.
                if self.edges.contains(&RefEdge { from, to }) {
                    return;
                }
                self.edges.push(RefEdge { from, to });
                self.out.entry(from).or_default().push(to);
                self.incoming.entry(to).or_default().push(from);
            }
            None => self.dangling.push((from, target.to_string())),
        }
    }

    /// Node carrying a given identifier value.
    pub fn node_by_id(&self, id: &str) -> Option<NodeId> {
        self.ids.get(id).copied()
    }

    /// All resolved edges.
    pub fn edges(&self) -> &[RefEdge] {
        &self.edges
    }

    /// Targets referenced from `node`.
    pub fn targets(&self, node: NodeId) -> &[NodeId] {
        self.out.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes referencing `node`.
    pub fn referrers(&self, node: NodeId) -> &[NodeId] {
        self.incoming.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Unresolved references (source node, missing id).
    pub fn dangling(&self) -> &[(NodeId, String)] {
        &self.dangling
    }

    /// Number of distinct identified nodes.
    pub fn id_count(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<db>\
               <product id='p1' vendor='x'/>\
               <product id='p2'/>\
               <vendor id='v1' refs='p1 p2'/>\
               <order ref='p1'/>\
               <order ref='ghost'/>\
             </db>",
        )
        .unwrap()
    }

    #[test]
    fn extracts_ids_and_edges() {
        let d = doc();
        let g = RefGraph::extract(&d);
        assert_eq!(g.id_count(), 3);
        let p1 = g.node_by_id("p1").unwrap();
        let v1 = g.node_by_id("v1").unwrap();
        assert_eq!(d.name(p1), Some("product"));
        assert_eq!(g.targets(v1).len(), 2);
        assert_eq!(g.referrers(p1).len(), 2); // vendor + first order
    }

    #[test]
    fn dangling_references_reported() {
        let d = doc();
        let g = RefGraph::extract(&d);
        assert_eq!(g.dangling().len(), 1);
        assert_eq!(g.dangling()[0].1, "ghost");
    }

    #[test]
    fn custom_config() {
        let d = Document::parse_str("<db><a key='k1'/><b points-to='k1'/></db>").unwrap();
        let cfg = RefConfig {
            id_attrs: vec!["key".into()],
            ref_attrs: vec!["points-to".into()],
            refs_attrs: vec![],
        };
        let g = RefGraph::extract_with(&d, &cfg);
        assert_eq!(g.edges().len(), 1);
        assert_eq!(d.name(g.edges()[0].to), Some("a"));
    }

    #[test]
    fn config_from_dtd() {
        let dtd = Dtd::parse(
            "<!ELEMENT a EMPTY><!ATTLIST a key ID #REQUIRED>\
             <!ELEMENT b EMPTY><!ATTLIST b tgt IDREF #IMPLIED many IDREFS #IMPLIED>",
        )
        .unwrap();
        let cfg = RefConfig::from_dtd(&dtd);
        assert_eq!(cfg.id_attrs, vec!["key"]);
        assert_eq!(cfg.ref_attrs, vec!["tgt"]);
        assert_eq!(cfg.refs_attrs, vec!["many"]);
        let merged = cfg.merge(&RefConfig::default());
        assert!(merged.id_attrs.contains(&"id".to_string()));
    }

    #[test]
    fn empty_document_yields_empty_graph() {
        let d = Document::parse_str("<empty/>").unwrap();
        let g = RefGraph::extract(&d);
        assert_eq!(g.id_count(), 0);
        assert!(g.edges().is_empty());
        assert!(g.dangling().is_empty());
    }

    #[test]
    fn repeated_reference_tokens_are_one_edge() {
        let d = Document::parse_str("<db><p id='p1'/><v refs='p1 p1' ref='p1'/></db>").unwrap();
        let g = RefGraph::extract(&d);
        assert_eq!(g.edges().len(), 1);
        let v = g.edges()[0].from;
        assert_eq!(g.targets(v).len(), 1);
    }

    #[test]
    fn duplicate_ids_first_wins() {
        let d =
            Document::parse_str("<db><a id='x' n='1'/><b id='x' n='2'/><c ref='x'/></db>").unwrap();
        let g = RefGraph::extract(&d);
        let target = g.node_by_id("x").unwrap();
        assert_eq!(d.name(target), Some("a"));
        assert_eq!(g.edges().len(), 1);
    }
}
