//! Deterministic synthetic dataset generators.
//!
//! Three dataset families reproduce the shapes of the databases the paper's
//! worked examples query:
//!
//! * [`bibliography`] — the book/author database behind the XML-GL figures
//!   (BOOK with isbn, title, price, AUTHORs; plus PERSON records with
//!   optional FULLADDR used by the aggregation figure F4);
//! * [`cityguide`] — the restaurant/hotel city guide behind the WG-Log
//!   figures (restaurants *offering* menus, F1);
//! * [`greengrocer`] — the product/vendor database used throughout the
//!   survey chapter, with vendor names joinable across sections (F5/Q6).
//!
//! Plus [`webgraph`] — the hyperdocument graph behind the GraphLog figures
//! (regular paths, transitive closure) — and two structural generators for
//! benchmarks and property tests: [`deep_chain`] (deep-wildcard stress) and
//! [`random_tree`].
//!
//! All generators are pure functions of their parameters — the same
//! `(scale, seed)` always produces byte-identical documents, so benchmark
//! runs are reproducible.

use crate::rng::Rng;

use crate::document::Document;
use crate::NodeId;

const FIRST_NAMES: &[&str] = &[
    "Ada", "Grace", "Edsger", "Donald", "Barbara", "Alan", "Serafino", "Letizia", "Stefano",
    "Sara", "Piero", "Ernesto", "Dan", "Peter", "Mary", "Victor", "Rosa", "Hugo", "Ines", "Koji",
];
const LAST_NAMES: &[&str] = &[
    "Lovelace",
    "Hopper",
    "Dijkstra",
    "Knuth",
    "Liskov",
    "Turing",
    "Amati",
    "Tanca",
    "Ceri",
    "Comai",
    "Fraternali",
    "Damiani",
    "Suciu",
    "Buneman",
    "Shaw",
    "Vianu",
    "Luna",
    "Prado",
    "Sato",
    "Weber",
];
const TITLE_WORDS: &[&str] = &[
    "Data",
    "Web",
    "Semi-Structured",
    "Queries",
    "Graphs",
    "Patterns",
    "Logic",
    "Views",
    "Streams",
    "Trees",
    "Models",
    "Systems",
    "Foundations",
    "Principles",
    "Languages",
];
const PUBLISHERS: &[&str] = &[
    "Morgan Kaufmann",
    "Addison-Wesley",
    "Springer",
    "ACM Press",
    "North-Holland",
];
const CITIES: &[&str] = &[
    "Milano", "Torino", "Roma", "Firenze", "Bologna", "Napoli", "Venezia", "Genova",
];
const CUISINES: &[&str] = &[
    "italian", "french", "japanese", "indian", "greek", "mexican",
];
const DISHES: &[&str] = &[
    "risotto",
    "osso buco",
    "ratatouille",
    "sashimi",
    "tikka",
    "moussaka",
    "mole",
    "polenta",
    "gnocchi",
    "tempura",
    "dal",
    "souvlaki",
];
const PRODUCTS: &[&str] = &[
    "cabbage", "cherry", "apple", "leek", "pear", "tomato", "plum", "carrot", "fig", "grape",
    "melon", "kale", "olive", "quince", "radish",
];
const VENDOR_NAMES: &[&str] = &[
    "DeRuiter",
    "Lafayette",
    "VanDam",
    "Rossi",
    "Marchetti",
    "Okada",
    "Berger",
    "Dupont",
    "VanHouten",
    "Bianchi",
];
const COUNTRIES: &[&str] = &["holland", "france", "italy", "japan", "germany"];

fn pick<'a>(rng: &mut Rng, pool: &'a [&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// Parameters for [`bibliography`].
#[derive(Debug, Clone, Copy)]
pub struct BibConfig {
    /// Number of `book` elements.
    pub books: usize,
    /// Number of `person` records in the companion `people` section.
    pub people: usize,
    /// RNG seed — equal seeds give byte-identical output.
    pub seed: u64,
}

impl Default for BibConfig {
    fn default() -> Self {
        BibConfig {
            books: 50,
            people: 30,
            seed: 7,
        }
    }
}

/// Generate the bibliography dataset.
///
/// Shape:
/// ```text
/// bib
/// ├── book* (isbn, year)  title, price, author{1..3}(first-name,last-name), publisher?, editor-ref(ref→person)?
/// └── people
///     └── person* (id)    firstname, lastname, fulladdr? | address?
/// ```
pub fn bibliography(cfg: BibConfig) -> Document {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut d = Document::new();
    let bib = d.add_element(d.root(), "bib");
    let books = d.add_element(bib, "books");
    for i in 0..cfg.books {
        let book = d.add_element(books, "book");
        d.set_attr(book, "isbn", &format!("isbn-{i:05}"))
            .expect("element attr");
        d.set_attr(book, "year", &(1985 + (i % 40)).to_string())
            .expect("element attr");
        let title = format!(
            "{} {} {}",
            pick(&mut rng, TITLE_WORDS),
            pick(&mut rng, TITLE_WORDS),
            pick(&mut rng, TITLE_WORDS)
        );
        d.add_text_element(book, "title", &title);
        let price = 5.0 + rng.gen_range(0..9000) as f64 / 100.0;
        d.add_text_element(book, "price", &format!("{price:.2}"));
        for _ in 0..rng.gen_range(1..=3usize) {
            let author = d.add_element(book, "author");
            d.add_text_element(author, "first-name", pick(&mut rng, FIRST_NAMES));
            d.add_text_element(author, "last-name", pick(&mut rng, LAST_NAMES));
        }
        if rng.gen_bool(0.8) {
            d.add_text_element(book, "publisher", pick(&mut rng, PUBLISHERS));
        }
        if cfg.people > 0 && rng.gen_bool(0.4) {
            let editor = d.add_element(book, "editor");
            let pid = rng.gen_range(0..cfg.people);
            d.set_attr(editor, "ref", &format!("p{pid}"))
                .expect("element attr");
        }
    }
    let people = d.add_element(bib, "people");
    for i in 0..cfg.people {
        let person = d.add_element(people, "person");
        d.set_attr(person, "id", &format!("p{i}"))
            .expect("element attr");
        d.add_text_element(person, "firstname", pick(&mut rng, FIRST_NAMES));
        d.add_text_element(person, "lastname", pick(&mut rng, LAST_NAMES));
        if rng.gen_bool(0.6) {
            let addr = d.add_element(person, "fulladdr");
            d.add_text_element(
                addr,
                "street",
                &format!("{} Way {}", pick(&mut rng, LAST_NAMES), i),
            );
            d.add_text_element(addr, "city", pick(&mut rng, CITIES));
        } else if rng.gen_bool(0.5) {
            d.add_text_element(person, "address", pick(&mut rng, CITIES));
        }
    }
    d
}

/// Parameters for [`cityguide`].
#[derive(Debug, Clone, Copy)]
pub struct CityConfig {
    pub restaurants: usize,
    pub hotels: usize,
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            restaurants: 40,
            hotels: 15,
            seed: 11,
        }
    }
}

/// Generate the WG-Log city-guide dataset.
///
/// Shape:
/// ```text
/// cityguide
/// ├── restaurant* (id, category)  name, address(city,street), menu{0..3}(name,price,dish*), near-ref(ref→hotel)?
/// └── hotel* (id, stars)          name, address(city,street)
/// ```
/// Roughly 25% of restaurants offer no menu — exactly the distinction the
/// F1 query ("restaurants offering menus") selects on.
pub fn cityguide(cfg: CityConfig) -> Document {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut d = Document::new();
    let guide = d.add_element(d.root(), "cityguide");
    for i in 0..cfg.restaurants {
        let r = d.add_element(guide, "restaurant");
        d.set_attr(r, "id", &format!("r{i}")).expect("element attr");
        d.set_attr(r, "category", pick(&mut rng, CUISINES))
            .expect("element attr");
        d.add_text_element(
            r,
            "name",
            &format!("Trattoria {}", pick(&mut rng, LAST_NAMES)),
        );
        let addr = d.add_element(r, "address");
        d.add_text_element(addr, "city", pick(&mut rng, CITIES));
        d.add_text_element(
            addr,
            "street",
            &format!("Via {} {}", pick(&mut rng, LAST_NAMES), i),
        );
        let menus = if rng.gen_bool(0.75) {
            rng.gen_range(1..=3usize)
        } else {
            0
        };
        for m in 0..menus {
            let menu = d.add_element(r, "menu");
            d.add_text_element(menu, "name", &format!("menu-{m}"));
            let price = 10 + rng.gen_range(0..60);
            d.add_text_element(menu, "price", &price.to_string());
            for _ in 0..rng.gen_range(2..=4usize) {
                d.add_text_element(menu, "dish", pick(&mut rng, DISHES));
            }
        }
        if cfg.hotels > 0 && rng.gen_bool(0.5) {
            let near = d.add_element(r, "near");
            d.set_attr(near, "ref", &format!("h{}", rng.gen_range(0..cfg.hotels)))
                .expect("element attr");
        }
    }
    for i in 0..cfg.hotels {
        let h = d.add_element(guide, "hotel");
        d.set_attr(h, "id", &format!("h{i}")).expect("element attr");
        d.set_attr(h, "stars", &rng.gen_range(1..=5).to_string())
            .expect("element attr");
        d.add_text_element(h, "name", &format!("Hotel {}", pick(&mut rng, LAST_NAMES)));
        let addr = d.add_element(h, "address");
        d.add_text_element(addr, "city", pick(&mut rng, CITIES));
        d.add_text_element(
            addr,
            "street",
            &format!("Corso {} {}", pick(&mut rng, LAST_NAMES), i),
        );
    }
    d
}

/// Parameters for [`greengrocer`].
#[derive(Debug, Clone, Copy)]
pub struct GrocerConfig {
    pub products: usize,
    pub vendors: usize,
    pub seed: u64,
}

impl Default for GrocerConfig {
    fn default() -> Self {
        GrocerConfig {
            products: 60,
            vendors: 8,
            seed: 13,
        }
    }
}

/// Generate the greengrocer dataset.
///
/// Shape:
/// ```text
/// greengrocer
/// ├── products
/// │   └── product*  type, name, price(unit,value), vendor
/// └── vendors
///     └── vendor*   country, name
/// ```
/// `product/vendor` text equals some `vendors/vendor/name` text — the
/// value-based join of F5/Q6.
pub fn greengrocer(cfg: GrocerConfig) -> Document {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut d = Document::new();
    let shop = d.add_element(d.root(), "greengrocer");
    let vendors_used: Vec<&str> = (0..cfg.vendors.max(1))
        .map(|i| VENDOR_NAMES[i % VENDOR_NAMES.len()])
        .collect();
    let products = d.add_element(shop, "products");
    for _ in 0..cfg.products {
        let p = d.add_element(products, "product");
        let ty = if rng.gen_bool(0.5) {
            "vegetable"
        } else {
            "fruit"
        };
        d.add_text_element(p, "type", ty);
        d.add_text_element(p, "name", pick(&mut rng, PRODUCTS));
        let price = d.add_element(p, "price");
        d.add_text_element(
            price,
            "unit",
            if rng.gen_bool(0.5) { "piece" } else { "kilo" },
        );
        let value = rng.gen_range(10..600) as f64 / 100.0;
        d.add_text_element(price, "value", &format!("{value:.2}"));
        let v = vendors_used[rng.gen_range(0..vendors_used.len())];
        d.add_text_element(p, "vendor", v);
    }
    let vendors = d.add_element(shop, "vendors");
    for (i, name) in vendors_used.iter().enumerate() {
        let v = d.add_element(vendors, "vendor");
        d.add_text_element(v, "country", COUNTRIES[i % COUNTRIES.len()]);
        d.add_text_element(v, "name", name);
    }
    d
}

/// Parameters for [`webgraph`].
#[derive(Debug, Clone, Copy)]
pub struct WebConfig {
    /// Number of `doc` elements.
    pub docs: usize,
    /// Outgoing `link` references per document (capped by `docs`).
    pub links_per_doc: usize,
    /// Fraction (0–100) of documents that carry an `index` reference.
    pub index_percent: u32,
    pub seed: u64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            docs: 50,
            links_per_doc: 3,
            index_percent: 30,
            seed: 17,
        }
    }
}

/// Generate the hyperdocument dataset behind the GraphLog figures: `doc`
/// elements with `link` and `index` reference children — the workload for
/// regular paths and transitive closure (Q10-style queries).
///
/// ```text
/// web
/// └── doc* (id)   title, link(ref→doc)*, index(ref→doc)?
/// ```
pub fn webgraph(cfg: WebConfig) -> Document {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut d = Document::new();
    let web = d.add_element(d.root(), "web");
    let n = cfg.docs.max(1);
    for i in 0..n {
        let doc = d.add_element(web, "doc");
        d.set_attr(doc, "id", &format!("d{i}"))
            .expect("element attr");
        d.add_text_element(
            doc,
            "title",
            &format!("{} {}", pick(&mut rng, TITLE_WORDS), i),
        );
        for _ in 0..cfg.links_per_doc.min(n.saturating_sub(1)) {
            let mut target = rng.gen_range(0..n);
            if target == i {
                target = (target + 1) % n;
            }
            let link = d.add_element(doc, "link");
            d.set_attr(link, "ref", &format!("d{target}"))
                .expect("element attr");
        }
        if rng.gen_range(0..100) < cfg.index_percent as usize {
            let idx = d.add_element(doc, "index");
            d.set_attr(idx, "ref", &format!("d{}", rng.gen_range(0..n)))
                .expect("element attr");
        }
    }
    d
}

/// A degenerate deep document: a chain of `level` elements of depth `depth`,
/// each level carrying `fanout` `leaf` children. Stresses descendant-axis
/// and deep-wildcard evaluation.
pub fn deep_chain(depth: usize, fanout: usize) -> Document {
    let mut d = Document::new();
    let root = d.add_element(d.root(), "deep");
    let mut cur = root;
    for i in 0..depth {
        for f in 0..fanout {
            d.add_text_element(cur, "leaf", &format!("{i}.{f}"));
        }
        cur = d.add_element(cur, "level");
        d.set_attr(cur, "n", &i.to_string()).expect("element attr");
    }
    d.add_text_element(cur, "target", "bottom");
    d
}

/// Knobs for [`random_tree_with`]. The defaults reproduce the historical
/// [`random_tree`] shape *byte for byte*: every non-default knob draws its
/// extra randomness strictly after the legacy draws for a node, so turning a
/// knob never perturbs the prefix stream of an existing `(scale, seed)` call.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Number of element nodes (including the `root` wrapper).
    pub nodes: usize,
    /// RNG seed — equal configs give byte-identical output.
    pub seed: u64,
    /// Tag vocabulary; the legacy set is `["a", "b", "c", "d"]`.
    pub tags: &'static [&'static str],
    /// Probability a node carries a `t{i}` text child.
    pub text_prob: f64,
    /// Probability a node carries the `k="{i}"` counter attribute.
    pub attr_prob: f64,
    /// Tag skew exponent. `0.0` is the legacy uniform pick; larger values
    /// concentrate probability mass on the early tags (a rough Zipf), so
    /// postings lists and hash buckets see realistic hot-tag stress instead
    /// of a flat distribution.
    pub tag_skew: f64,
    /// Up to this many extra attributes per node, drawn from a small
    /// attribute-name pool with low-cardinality values (stresses attribute
    /// postings and equal-value hash paths).
    pub max_extra_attrs: usize,
    /// Probability a node is followed by a sibling text run in its parent,
    /// producing mixed element/text content.
    pub mixed_text_prob: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            nodes: 100,
            seed: 0,
            tags: &["a", "b", "c", "d"],
            text_prob: 0.3,
            attr_prob: 0.2,
            tag_skew: 0.0,
            max_extra_attrs: 0,
            mixed_text_prob: 0.0,
        }
    }
}

/// Attribute-name pool for [`TreeConfig::max_extra_attrs`]; values are drawn
/// from a 4-value domain so equal attribute sets (and thus equal canonical
/// forms across distinct nodes) occur often.
const EXTRA_ATTRS: &[&str] = &["lang", "kind", "rank"];

/// A random tree over a small tag vocabulary, for property tests: `n` element
/// nodes attached under uniformly random earlier elements. Equivalent to
/// [`random_tree_with`] at the default knobs.
pub fn random_tree(n: usize, seed: u64) -> Document {
    random_tree_with(&TreeConfig {
        nodes: n,
        seed,
        ..TreeConfig::default()
    })
}

/// [`random_tree`] with explicit [`TreeConfig`] knobs.
pub fn random_tree_with(cfg: &TreeConfig) -> Document {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut d = Document::new();
    let root = d.add_element(d.root(), "root");
    let mut nodes: Vec<NodeId> = vec![root];
    for i in 1..cfg.nodes.max(1) {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let ti = if cfg.tag_skew <= 0.0 {
            rng.gen_range(0..cfg.tags.len())
        } else {
            // u^(1+skew) pushes mass toward index 0 while staying one draw.
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            ((u.powf(1.0 + cfg.tag_skew) * cfg.tags.len() as f64) as usize).min(cfg.tags.len() - 1)
        };
        let el = d.add_element(parent, cfg.tags[ti]);
        if rng.gen_bool(cfg.text_prob) {
            d.add_text(el, &format!("t{i}"));
        }
        if rng.gen_bool(cfg.attr_prob) {
            d.set_attr(el, "k", &i.to_string()).expect("element attr");
        }
        // Every draw below is gated on a non-default knob, preserving the
        // legacy stream byte for byte at the defaults.
        if cfg.max_extra_attrs > 0 {
            for _ in 0..rng.gen_range(0..=cfg.max_extra_attrs) {
                let name = EXTRA_ATTRS[rng.gen_range(0..EXTRA_ATTRS.len())];
                let value = format!("v{}", rng.gen_range(0..4));
                d.set_attr(el, name, &value).expect("element attr");
            }
        }
        if cfg.mixed_text_prob > 0.0 && rng.gen_bool(cfg.mixed_text_prob) {
            d.add_text(parent, &format!("m{i}"));
        }
        nodes.push(el);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path;

    #[test]
    fn bibliography_is_deterministic() {
        let a = bibliography(BibConfig::default()).to_xml_string();
        let b = bibliography(BibConfig::default()).to_xml_string();
        assert_eq!(a, b);
        let c = bibliography(BibConfig {
            seed: 8,
            ..Default::default()
        })
        .to_xml_string();
        assert_ne!(a, c);
    }

    #[test]
    fn bibliography_shape() {
        let d = bibliography(BibConfig {
            books: 10,
            people: 5,
            seed: 1,
        });
        assert_eq!(path::select(&d, d.root(), "bib/books/book").len(), 10);
        assert_eq!(path::select(&d, d.root(), "bib/people/person").len(), 5);
        // Every book has a title and a price.
        for book in path::select(&d, d.root(), "bib/books/book") {
            assert!(path::select_first(&d, book, "title").is_some());
            let price = path::select_text(&d, book, "price").unwrap();
            assert!(price.parse::<f64>().is_ok());
            assert!(d.attr(book, "isbn").is_some());
        }
    }

    #[test]
    fn bibliography_editor_refs_resolve() {
        let d = bibliography(BibConfig {
            books: 40,
            people: 10,
            seed: 3,
        });
        let graph = crate::idref::RefGraph::extract(&d);
        assert!(graph.dangling().is_empty());
        assert_eq!(graph.id_count(), 10);
    }

    #[test]
    fn cityguide_shape() {
        let d = cityguide(CityConfig {
            restaurants: 20,
            hotels: 5,
            seed: 2,
        });
        let restaurants = path::select(&d, d.root(), "cityguide/restaurant");
        assert_eq!(restaurants.len(), 20);
        let with_menu = restaurants
            .iter()
            .filter(|&&r| path::select_first(&d, r, "menu").is_some())
            .count();
        // Some but not all restaurants offer menus — F1 needs both kinds.
        assert!(with_menu > 0 && with_menu < 20, "with_menu={with_menu}");
        assert_eq!(path::select(&d, d.root(), "cityguide/hotel").len(), 5);
    }

    #[test]
    fn cityguide_refs_resolve() {
        let d = cityguide(CityConfig {
            restaurants: 30,
            hotels: 6,
            seed: 5,
        });
        let graph = crate::idref::RefGraph::extract(&d);
        assert!(graph.dangling().is_empty());
    }

    #[test]
    fn greengrocer_join_targets_exist() {
        let d = greengrocer(GrocerConfig {
            products: 25,
            vendors: 4,
            seed: 9,
        });
        let vendor_names: Vec<String> =
            path::select(&d, d.root(), "greengrocer/vendors/vendor/name")
                .iter()
                .map(|&n| d.text_content(n))
                .collect();
        assert_eq!(vendor_names.len(), 4);
        for p in path::select(&d, d.root(), "greengrocer/products/product") {
            let v = path::select_text(&d, p, "vendor").unwrap();
            assert!(
                vendor_names.contains(&v),
                "product vendor {v} not in vendors section"
            );
        }
    }

    #[test]
    fn webgraph_refs_resolve_and_no_self_links() {
        let d = webgraph(WebConfig {
            docs: 30,
            links_per_doc: 3,
            index_percent: 50,
            seed: 2,
        });
        let graph = crate::idref::RefGraph::extract(&d);
        assert!(graph.dangling().is_empty());
        assert_eq!(graph.id_count(), 30);
        for doc in path::select(&d, d.root(), "web/doc") {
            let id = d.attr(doc, "id").unwrap();
            for link in path::select(&d, doc, "link") {
                assert_ne!(d.attr(link, "ref"), Some(id), "self link on {id}");
            }
        }
        // Determinism.
        let d2 = webgraph(WebConfig {
            docs: 30,
            links_per_doc: 3,
            index_percent: 50,
            seed: 2,
        });
        assert_eq!(d.to_xml_string(), d2.to_xml_string());
    }

    #[test]
    fn deep_chain_depth() {
        let d = deep_chain(50, 2);
        let levels = path::select(&d, d.root(), "//level");
        assert_eq!(levels.len(), 50);
        let target = path::select(&d, d.root(), "//target");
        assert_eq!(target.len(), 1);
        assert_eq!(d.depth(target[0]), 52); // deep + 50 levels + target
        assert_eq!(path::select(&d, d.root(), "//leaf").len(), 100);
    }

    #[test]
    fn random_tree_node_budget() {
        let d = random_tree(200, 4);
        // 200 elements + optional text children + document node.
        assert!(d.live_node_count() >= 200);
        let d2 = random_tree(200, 4);
        assert_eq!(d.to_xml_string(), d2.to_xml_string());
    }

    /// The config refactor must not change existing `(scale, seed)` output:
    /// these hashes were captured from the pre-knob implementation.
    #[test]
    fn random_tree_is_byte_identical_to_legacy() {
        for (n, seed, len, hash) in [
            (200usize, 4u64, 1717usize, 0xf0658463f51974edu64),
            (50, 1, 451, 0x5cfc8fa0db2ceac0),
            (500, 99, 4517, 0x0faa0ccfc1c2406a),
        ] {
            let xml = random_tree(n, seed).to_xml_string();
            assert_eq!(xml.len(), len, "random_tree({n},{seed}) length drifted");
            assert_eq!(
                crate::index::hash_str(&xml),
                hash,
                "random_tree({n},{seed}) content drifted"
            );
        }
    }

    #[test]
    fn tree_knobs_extend_the_shape() {
        let base = TreeConfig {
            nodes: 300,
            seed: 7,
            ..TreeConfig::default()
        };
        // Skew concentrates tags: the hottest tag gets a strictly larger
        // share than under the uniform pick.
        let uniform = random_tree_with(&base);
        let skewed = random_tree_with(&TreeConfig {
            tag_skew: 2.0,
            ..base.clone()
        });
        let hottest = |d: &Document| {
            let mut counts = std::collections::HashMap::new();
            for n in d.descendants(d.root()) {
                if let Some(name) = d.name(n) {
                    *counts.entry(name.to_string()).or_insert(0usize) += 1;
                }
            }
            counts.values().copied().max().unwrap_or(0)
        };
        assert!(hottest(&skewed) > hottest(&uniform));

        // Extra attributes appear, from the extra pool only.
        let attrs = random_tree_with(&TreeConfig {
            max_extra_attrs: 2,
            ..base.clone()
        });
        let extra = attrs
            .descendants(attrs.root())
            .flat_map(|n| {
                attrs
                    .attrs(n)
                    .map(|(k, _)| k.to_string())
                    .collect::<Vec<_>>()
            })
            .filter(|k| EXTRA_ATTRS.contains(&k.as_str()))
            .count();
        assert!(extra > 0, "no extra attributes generated");

        // Mixed text produces text runs between element siblings.
        let mixed = random_tree_with(&TreeConfig {
            mixed_text_prob: 0.5,
            ..base
        });
        let has_mixed = mixed.descendants(mixed.root()).any(|n| {
            let kids = mixed.children(n);
            kids.len() >= 2
                && kids
                    .iter()
                    .any(|&c| mixed.kind(c) == crate::document::NodeKind::Text)
                && kids
                    .iter()
                    .any(|&c| mixed.kind(c) == crate::document::NodeKind::Element)
        });
        assert!(has_mixed, "no mixed element/text content generated");

        // Every knobbed variant still parses its own serialization.
        for doc in [&uniform, &skewed, &attrs, &mixed] {
            Document::parse_str(&doc.to_xml_string()).expect("self-parse");
        }
    }
}
