//! The arena-based document store.
//!
//! A [`Document`] owns every node of one semi-structured document in a flat
//! arena, addressed by [`NodeId`]. The tree shape is stored as parent links
//! plus ordered child vectors; names are interned [`Symbol`]s. A synthetic
//! *document node* (kind [`NodeKind::Document`]) is always present as the
//! arena root so that parsing and construction never special-case the top
//! level.
//!
//! Document order (pre-order position, the order XPath and XML-GL ordered
//! matching are defined over) is computed lazily and cached; any structural
//! mutation invalidates the cache.

use std::cmp::Ordering;
use std::sync::OnceLock;

use crate::arena::{Interner, NodeId, Symbol};
use crate::error::{Error, Result};

/// Classification of nodes stored in a [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The synthetic arena root; exactly one per document.
    Document,
    /// An element with a tag name, attributes and ordered children.
    Element,
    /// A text node; leaf.
    Text,
    /// A comment; leaf. Preserved by the parser so serialisation round-trips.
    Comment,
    /// A processing instruction with target (stored as the node name) and data.
    Pi,
}

#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    /// Element tag name or PI target.
    name: Option<Symbol>,
    /// Text / comment content or PI data.
    text: Option<Box<str>>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Attribute name/value pairs in the order they were set.
    attrs: Vec<(Symbol, Box<str>)>,
}

impl NodeData {
    fn leaf(kind: NodeKind, name: Option<Symbol>, text: Option<Box<str>>) -> Self {
        NodeData {
            kind,
            name,
            text,
            parent: None,
            children: Vec::new(),
            attrs: Vec::new(),
        }
    }
}

/// An in-memory semi-structured document.
///
/// All navigation accessors take `&self`; all structural mutation takes
/// `&mut self`. Node ids stay valid for the lifetime of the document —
/// detached nodes are kept in the arena (there is no garbage collection;
/// documents are built once and queried many times, matching the workload of
/// the paper's engines).
#[derive(Debug)]
pub struct Document {
    nodes: Vec<NodeData>,
    interner: Interner,
    root: NodeId,
    /// Lazily computed pre-order positions, invalidated on mutation.
    /// `OnceLock` (not `RefCell`) so a `&Document` can be shared across
    /// threads by the parallel matcher.
    order: OnceLock<Vec<u32>>,
}

impl Clone for Document {
    fn clone(&self) -> Self {
        Document {
            nodes: self.nodes.clone(),
            interner: self.interner.clone(),
            root: self.root,
            // The clone recomputes document order on first use.
            order: OnceLock::new(),
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Create an empty document containing only the synthetic document node.
    pub fn new() -> Self {
        let mut doc = Document {
            nodes: Vec::new(),
            interner: Interner::new(),
            root: NodeId(0),
            order: OnceLock::new(),
        };
        doc.nodes
            .push(NodeData::leaf(NodeKind::Document, None, None));
        doc
    }

    /// Parse an XML string into a fresh document. See [`crate::xml`] for the
    /// supported subset.
    pub fn parse_str(input: &str) -> Result<Self> {
        crate::xml::parse(input)
    }

    /// Serialize the document back to XML (compact form).
    pub fn to_xml_string(&self) -> String {
        crate::xml::write(self, false)
    }

    /// Serialize the document to indented XML.
    pub fn to_xml_pretty(&self) -> String {
        crate::xml::write(self, true)
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn push(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(data);
        self.invalidate_order();
        id
    }

    /// Create a detached element node.
    pub fn create_element(&mut self, name: &str) -> NodeId {
        let sym = self.interner.intern(name);
        self.push(NodeData::leaf(NodeKind::Element, Some(sym), None))
    }

    /// Create a detached text node.
    pub fn create_text(&mut self, text: &str) -> NodeId {
        self.push(NodeData::leaf(NodeKind::Text, None, Some(text.into())))
    }

    /// Create a detached comment node.
    pub fn create_comment(&mut self, text: &str) -> NodeId {
        self.push(NodeData::leaf(NodeKind::Comment, None, Some(text.into())))
    }

    /// Create a detached processing-instruction node.
    pub fn create_pi(&mut self, target: &str, data: &str) -> NodeId {
        let sym = self.interner.intern(target);
        self.push(NodeData::leaf(NodeKind::Pi, Some(sym), Some(data.into())))
    }

    /// Append a detached node as the last child of `parent`.
    ///
    /// Fails if `child` already has a parent (detach it first), if `parent`
    /// is a leaf kind, or if the edge would create a cycle.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.check(parent)?;
        self.check(child)?;
        if child == self.root {
            return Err(Error::structure("the document node cannot be a child"));
        }
        match self.nodes[parent.index()].kind {
            NodeKind::Document | NodeKind::Element => {}
            k => {
                return Err(Error::structure(format!(
                    "{k:?} nodes cannot have children"
                )))
            }
        }
        if self.nodes[child.index()].parent.is_some() {
            return Err(Error::structure(format!("{child} already has a parent")));
        }
        // Cycle check: parent must not be inside child's subtree.
        let mut cur = Some(parent);
        while let Some(n) = cur {
            if n == child {
                return Err(Error::structure("append would create a cycle"));
            }
            cur = self.nodes[n.index()].parent;
        }
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
        self.invalidate_order();
        Ok(())
    }

    /// Detach `node` from its parent (no-op if already detached). The node
    /// and its subtree remain usable and can be re-appended elsewhere.
    pub fn detach(&mut self, node: NodeId) -> Result<()> {
        self.check(node)?;
        if node == self.root {
            return Err(Error::structure("cannot detach the document node"));
        }
        if let Some(p) = self.nodes[node.index()].parent.take() {
            let siblings = &mut self.nodes[p.index()].children;
            if let Some(pos) = siblings.iter().position(|&c| c == node) {
                siblings.remove(pos);
            }
            self.invalidate_order();
        }
        Ok(())
    }

    /// Set (or replace) an attribute on an element.
    pub fn set_attr(&mut self, node: NodeId, name: &str, value: &str) -> Result<()> {
        self.check(node)?;
        if self.nodes[node.index()].kind != NodeKind::Element {
            return Err(Error::structure("attributes are only valid on elements"));
        }
        let sym = self.interner.intern(name);
        let attrs = &mut self.nodes[node.index()].attrs;
        if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == sym) {
            slot.1 = value.into();
        } else {
            attrs.push((sym, value.into()));
        }
        Ok(())
    }

    /// Remove an attribute; returns whether it was present.
    pub fn remove_attr(&mut self, node: NodeId, name: &str) -> Result<bool> {
        self.check(node)?;
        let Some(sym) = self.interner.get(name) else {
            return Ok(false);
        };
        let attrs = &mut self.nodes[node.index()].attrs;
        let before = attrs.len();
        attrs.retain(|(n, _)| *n != sym);
        Ok(attrs.len() != before)
    }

    /// Convenience: create an element, append it under `parent`, return it.
    pub fn add_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        let el = self.create_element(name);
        self.append_child(parent, el)
            .expect("fresh element is appendable");
        el
    }

    /// Convenience: create a text node under `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let t = self.create_text(text);
        self.append_child(parent, t)
            .expect("fresh text node is appendable");
        t
    }

    /// Convenience: element with a single text child — the dominant shape in
    /// semi-structured datasets (`<name>DeRuiter</name>`).
    pub fn add_text_element(&mut self, parent: NodeId, name: &str, text: &str) -> NodeId {
        let el = self.add_element(parent, name);
        self.add_text(el, text);
        el
    }

    /// Deep-copy the subtree rooted at `node` from `src` into `self`,
    /// returning the new (detached) root. Used by construction engines when
    /// materialising query results.
    pub fn import_subtree(&mut self, src: &Document, node: NodeId) -> NodeId {
        let data = &src.nodes[node.index()];
        let new = match data.kind {
            NodeKind::Document => {
                // A whole document has no tag of its own: graft its children
                // under a fresh `document` element so the import is always a
                // single well-formed subtree.
                self.create_element("document")
            }
            NodeKind::Element => {
                let name = src.interner.resolve(data.name.expect("elements are named"));
                let el = self.create_element(name);
                for (n, v) in &data.attrs {
                    let name = src.interner.resolve(*n);
                    self.set_attr(el, name, v).expect("element accepts attrs");
                }
                el
            }
            NodeKind::Text => self.create_text(data.text.as_deref().unwrap_or("")),
            NodeKind::Comment => self.create_comment(data.text.as_deref().unwrap_or("")),
            NodeKind::Pi => {
                let target = src.interner.resolve(data.name.expect("PIs are named"));
                self.create_pi(target, data.text.as_deref().unwrap_or(""))
            }
        };
        if matches!(data.kind, NodeKind::Element | NodeKind::Document) {
            for &c in &data.children {
                let imported = self.import_subtree(src, c);
                self.append_child(new, imported)
                    .expect("imported child is fresh");
            }
        }
        new
    }

    // ------------------------------------------------------------------
    // Navigation
    // ------------------------------------------------------------------

    fn check(&self, node: NodeId) -> Result<()> {
        if node.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(Error::invalid_node(format!("{node} out of range")))
        }
    }

    /// The synthetic document node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The first element child of the document node, if any.
    pub fn root_element(&self) -> Option<NodeId> {
        self.child_elements(self.root).next()
    }

    /// Kind of a node.
    #[inline]
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.index()].kind
    }

    /// Tag name (elements) or target (PIs).
    pub fn name(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.index()]
            .name
            .map(|s| self.interner.resolve(s))
    }

    /// Interned tag name; faster to compare than strings.
    #[inline]
    pub fn name_sym(&self, node: NodeId) -> Option<Symbol> {
        self.nodes[node.index()].name
    }

    /// Text content of a text/comment/PI node (not recursive).
    pub fn text(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.index()].text.as_deref()
    }

    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Ordered children (all kinds).
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Ordered element children.
    pub fn child_elements(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node)
            .iter()
            .copied()
            .filter(|&c| self.kind(c) == NodeKind::Element)
    }

    /// Element children with a given tag name.
    pub fn child_elements_named<'a>(
        &'a self,
        node: NodeId,
        name: &str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let sym = self.interner.get(name);
        self.child_elements(node)
            .filter(move |&c| sym.is_some() && self.name_sym(c) == sym)
    }

    /// Attributes of an element in set order.
    pub fn attrs(&self, node: NodeId) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.nodes[node.index()]
            .attrs
            .iter()
            .map(move |(n, v)| (self.interner.resolve(*n), v.as_ref()))
    }

    /// Attribute names of an element as interned symbols, in set order —
    /// the resolution-free sibling of [`attrs`](Document::attrs) for index
    /// builds, which would otherwise hash every name string back through
    /// the interner.
    pub fn attr_syms(&self, node: NodeId) -> impl Iterator<Item = Symbol> + '_ {
        self.nodes[node.index()].attrs.iter().map(|(n, _)| *n)
    }

    /// Value of one attribute.
    pub fn attr(&self, node: NodeId, name: &str) -> Option<&str> {
        let sym = self.interner.get(name)?;
        self.nodes[node.index()]
            .attrs
            .iter()
            .find(|(n, _)| *n == sym)
            .map(|(_, v)| v.as_ref())
    }

    /// Number of attributes on a node.
    pub fn attr_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()].attrs.len()
    }

    /// Pre-order iterator over the subtree rooted at `node`, including
    /// `node` itself.
    pub fn descendants_or_self(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![node],
        }
    }

    /// Pre-order iterator over proper descendants of `node`.
    pub fn descendants(&self, node: NodeId) -> Descendants<'_> {
        let mut stack: Vec<NodeId> = self.children(node).to_vec();
        stack.reverse();
        Descendants { doc: self, stack }
    }

    /// All elements in the document with the given tag, in document order.
    pub fn elements_named<'a>(&'a self, name: &str) -> impl Iterator<Item = NodeId> + 'a {
        let sym = self.interner.get(name);
        self.descendants(self.root).filter(move |&n| {
            self.kind(n) == NodeKind::Element && sym.is_some() && self.name_sym(n) == sym
        })
    }

    /// Concatenated text of all descendant text nodes — XPath's `string()`.
    pub fn text_content(&self, node: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(node, &mut out);
        out
    }

    fn collect_text(&self, node: NodeId, out: &mut String) {
        match self.kind(node) {
            NodeKind::Text => out.push_str(self.text(node).unwrap_or("")),
            NodeKind::Comment | NodeKind::Pi => {}
            NodeKind::Element | NodeKind::Document => {
                for &c in self.children(node) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Total number of arena slots (includes detached nodes and the document
    /// node). Useful as a size metric for benches.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from the document node.
    pub fn live_node_count(&self) -> usize {
        self.descendants_or_self(self.root).count()
    }

    /// Depth of a node (document node has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = self.parent(node);
        while let Some(p) = cur {
            d += 1;
            cur = self.parent(p);
        }
        d
    }

    /// Zero-based position among same-parent siblings; 0 for detached nodes.
    pub fn sibling_index(&self, node: NodeId) -> usize {
        match self.parent(node) {
            Some(p) => self
                .children(p)
                .iter()
                .position(|&c| c == node)
                .unwrap_or(0),
            None => 0,
        }
    }

    /// The following sibling, if any.
    pub fn next_sibling(&self, node: NodeId) -> Option<NodeId> {
        let p = self.parent(node)?;
        let siblings = self.children(p);
        let i = siblings.iter().position(|&c| c == node)?;
        siblings.get(i + 1).copied()
    }

    /// The preceding sibling, if any.
    pub fn prev_sibling(&self, node: NodeId) -> Option<NodeId> {
        let p = self.parent(node)?;
        let siblings = self.children(p);
        let i = siblings.iter().position(|&c| c == node)?;
        i.checked_sub(1).map(|j| siblings[j])
    }

    /// Whether `anc` is `node` or one of its ancestors.
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n == anc {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    // ------------------------------------------------------------------
    // Document order
    // ------------------------------------------------------------------

    fn invalidate_order(&mut self) {
        self.order = OnceLock::new();
    }

    fn ensure_order(&self) -> &Vec<u32> {
        self.order.get_or_init(|| {
            let mut order = vec![u32::MAX; self.nodes.len()];
            let mut counter = 0u32;
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                order[n.index()] = counter;
                counter += 1;
                for &c in self.children(n).iter().rev() {
                    stack.push(c);
                }
            }
            order
        })
    }

    /// Pre-order position of a node; detached nodes sort after all attached
    /// ones (position `u32::MAX`).
    pub fn order_key(&self, node: NodeId) -> u32 {
        self.ensure_order()[node.index()]
    }

    /// Compare two nodes by document order.
    pub fn doc_order_cmp(&self, a: NodeId, b: NodeId) -> Ordering {
        self.order_key(a).cmp(&self.order_key(b))
    }

    /// Sort a node list into document order and drop duplicates — the
    /// normalisation every engine applies to result node-sets.
    pub fn sort_dedup_doc_order(&self, nodes: &mut Vec<NodeId>) {
        let order = self.ensure_order();
        // Detached nodes all share the sentinel key; tie-break on the id so
        // equal nodes become adjacent and dedup removes them.
        nodes.sort_by_key(|n| (order[n.index()], n.index()));
        nodes.dedup();
    }

    // ------------------------------------------------------------------
    // Interner access
    // ------------------------------------------------------------------

    /// Intern a name in this document's symbol table.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Look up a name without interning.
    pub fn lookup_sym(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    /// Resolve a symbol to its string.
    pub fn resolve_sym(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }
}

/// Pre-order traversal iterator returned by [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        let children = self.doc.children(n);
        self.stack.extend(children.iter().rev().copied());
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let root = d.add_element(d.root(), "bib");
        let book = d.add_element(root, "book");
        d.set_attr(book, "isbn", "42").unwrap();
        let title = d.add_text_element(book, "title", "Data on the Web");
        (d, root, book, title)
    }

    #[test]
    fn build_and_navigate() {
        let (d, root, book, title) = sample();
        assert_eq!(d.root_element(), Some(root));
        assert_eq!(d.name(root), Some("bib"));
        assert_eq!(d.parent(book), Some(root));
        assert_eq!(d.children(root), &[book]);
        assert_eq!(d.attr(book, "isbn"), Some("42"));
        assert_eq!(d.attr(book, "missing"), None);
        assert_eq!(d.text_content(title), "Data on the Web");
        assert_eq!(d.depth(title), 3);
    }

    #[test]
    fn text_content_concatenates_across_children() {
        let mut d = Document::new();
        let r = d.add_element(d.root(), "p");
        d.add_text(r, "Hello, ");
        let b = d.add_element(r, "b");
        d.add_text(b, "world");
        d.add_text(r, "!");
        assert_eq!(d.text_content(r), "Hello, world!");
    }

    #[test]
    fn comments_and_pis_are_excluded_from_text_content() {
        let mut d = Document::new();
        let r = d.add_element(d.root(), "p");
        d.add_text(r, "a");
        let c = d.create_comment("nope");
        d.append_child(r, c).unwrap();
        let pi = d.create_pi("t", "nope");
        d.append_child(r, pi).unwrap();
        d.add_text(r, "b");
        assert_eq!(d.text_content(r), "ab");
    }

    #[test]
    fn append_rejects_cycle() {
        let (mut d, root, book, _) = sample();
        d.detach(root).unwrap();
        let err = d.append_child(book, root).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn append_rejects_double_parenting() {
        let (mut d, _root, book, _) = sample();
        let other = d.create_element("other");
        d.append_child(other, book).unwrap_err();
    }

    #[test]
    fn append_rejects_children_on_leaves() {
        let mut d = Document::new();
        let t = d.create_text("x");
        let e = d.create_element("e");
        assert!(d.append_child(t, e).is_err());
    }

    #[test]
    fn detach_and_reattach() {
        let (mut d, root, book, _) = sample();
        d.detach(book).unwrap();
        assert_eq!(d.children(root), &[] as &[NodeId]);
        assert_eq!(d.parent(book), None);
        let other = d.add_element(root, "other");
        d.append_child(other, book).unwrap();
        assert_eq!(d.parent(book), Some(other));
    }

    #[test]
    fn detach_document_node_fails() {
        let mut d = Document::new();
        assert!(d.detach(d.root()).is_err());
    }

    #[test]
    fn set_attr_replaces() {
        let (mut d, _, book, _) = sample();
        d.set_attr(book, "isbn", "43").unwrap();
        assert_eq!(d.attr(book, "isbn"), Some("43"));
        assert_eq!(d.attr_count(book), 1);
    }

    #[test]
    fn remove_attr() {
        let (mut d, _, book, _) = sample();
        assert!(d.remove_attr(book, "isbn").unwrap());
        assert!(!d.remove_attr(book, "isbn").unwrap());
        assert_eq!(d.attr(book, "isbn"), None);
    }

    #[test]
    fn attrs_on_text_rejected() {
        let mut d = Document::new();
        let t = d.create_text("x");
        assert!(d.set_attr(t, "a", "b").is_err());
    }

    #[test]
    fn descendants_preorder() {
        let (d, root, book, title) = sample();
        let order: Vec<NodeId> = d.descendants_or_self(root).collect();
        assert_eq!(order[0], root);
        assert_eq!(order[1], book);
        assert_eq!(order[2], title);
        assert_eq!(order.len(), 4); // + text node
        let proper: Vec<NodeId> = d.descendants(root).collect();
        assert_eq!(proper.len(), 3);
        assert!(!proper.contains(&root));
    }

    #[test]
    fn doc_order_after_mutation() {
        let (mut d, root, book, _) = sample();
        assert_eq!(d.doc_order_cmp(root, book), Ordering::Less);
        let b2 = d.add_element(root, "book2");
        // order cache must have been invalidated and recomputed
        assert_eq!(d.doc_order_cmp(book, b2), Ordering::Less);
        d.detach(book).unwrap();
        // detached nodes sort last
        assert_eq!(d.doc_order_cmp(b2, book), Ordering::Less);
    }

    #[test]
    fn sort_dedup() {
        let (d, root, book, title) = sample();
        let mut v = vec![title, root, book, root];
        d.sort_dedup_doc_order(&mut v);
        assert_eq!(v, vec![root, book, title]);
    }

    #[test]
    fn elements_named_scans_whole_document() {
        let mut d = Document::new();
        let r = d.add_element(d.root(), "r");
        let a1 = d.add_element(r, "a");
        let b = d.add_element(r, "b");
        let a2 = d.add_element(b, "a");
        let found: Vec<NodeId> = d.elements_named("a").collect();
        assert_eq!(found, vec![a1, a2]);
        assert!(d.elements_named("zzz").next().is_none());
    }

    #[test]
    fn siblings() {
        let mut d = Document::new();
        let r = d.add_element(d.root(), "r");
        let a = d.add_element(r, "a");
        let b = d.add_element(r, "b");
        let c = d.add_element(r, "c");
        assert_eq!(d.next_sibling(a), Some(b));
        assert_eq!(d.prev_sibling(c), Some(b));
        assert_eq!(d.prev_sibling(a), None);
        assert_eq!(d.next_sibling(c), None);
        assert_eq!(d.sibling_index(b), 1);
    }

    #[test]
    fn import_whole_document_wraps_in_a_document_element() {
        let src = Document::parse_str("<r><a/>text</r>").unwrap();
        let mut dst = Document::new();
        let copied = dst.import_subtree(&src, src.root());
        assert_eq!(dst.name(copied), Some("document"));
        assert_eq!(dst.text_content(copied), "text");
    }

    #[test]
    fn sort_dedup_handles_detached_duplicates() {
        let mut d = Document::new();
        let r = d.add_element(d.root(), "r");
        let x = d.add_element(r, "x");
        let y = d.add_element(r, "y");
        d.detach(x).unwrap();
        d.detach(y).unwrap();
        let mut v = vec![x, y, x, y, r];
        d.sort_dedup_doc_order(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], r);
    }

    #[test]
    fn import_subtree_deep_copies() {
        let (src, _, book, _) = sample();
        let mut dst = Document::new();
        let copied = dst.import_subtree(&src, book);
        dst.append_child(dst.root(), copied).unwrap();
        assert_eq!(dst.name(copied), Some("book"));
        assert_eq!(dst.attr(copied, "isbn"), Some("42"));
        assert_eq!(dst.text_content(copied), "Data on the Web");
        // Fully independent: mutating dst does not affect src.
        assert_eq!(src.text_content(book), "Data on the Web");
    }

    #[test]
    fn is_ancestor_or_self() {
        let (d, root, book, title) = sample();
        assert!(d.is_ancestor_or_self(root, title));
        assert!(d.is_ancestor_or_self(book, book));
        assert!(!d.is_ancestor_or_self(title, book));
    }

    #[test]
    fn live_vs_total_node_count() {
        let (mut d, _, book, _) = sample();
        let total = d.node_count();
        d.detach(book).unwrap();
        assert_eq!(d.node_count(), total);
        assert!(d.live_node_count() < total);
    }
}
