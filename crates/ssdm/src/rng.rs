//! A small, dependency-free deterministic PRNG.
//!
//! The dataset generators (and the property-test harnesses downstream) need
//! reproducible pseudo-randomness, not cryptographic quality. This is
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA '14): a 64-bit counter run through a finalizer with
//! full period 2^64, excellent equidistribution for this purpose, and a
//! trivially seedable, byte-identical-across-platforms state.

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudorandom generator. Equal seeds give equal streams.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. The same seed always yields the same sequence.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in the given range. Panics on an empty range.
    pub fn gen_range<R: UsizeRange>(&mut self, range: R) -> usize {
        let (lo, hi) = range.bounds(); // half-open [lo, hi)
        assert!(lo < hi, "gen_range on empty range");
        let span = (hi - lo) as u64;
        // Modulo bias is < span / 2^64 — irrelevant at generator scale.
        lo + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// Ranges [`Rng::gen_range`] accepts, normalized to half-open bounds.
pub trait UsizeRange {
    fn bounds(self) -> (usize, usize);
}

impl UsizeRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl UsizeRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn bool_probability_roughly_honoured() {
        let mut r = Rng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Rng::seed_from_u64(3);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(0..8)] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "{buckets:?}");
        }
    }
}
