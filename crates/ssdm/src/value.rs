//! Typed atomic values and comparison semantics.
//!
//! Semi-structured data carries all leaf content as text; predicates in the
//! query languages compare that text either as strings or as numbers. This
//! module centralises the coercion rules (modeled on XPath 1.0) so that all
//! three engines — XML-GL, WG-Log and the XPath baseline — agree on what
//! `price > 20` means.

use std::cmp::Ordering;
use std::fmt;

/// An atomic value: string, IEEE double, or boolean.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
}

impl Value {
    /// Parse a literal the way query predicates interpret constants: a valid
    /// number becomes [`Value::Num`]; everything else stays a string.
    pub fn from_literal(s: &str) -> Value {
        match parse_number(s) {
            Some(n) => Value::Num(n),
            None => Value::Str(s.to_string()),
        }
    }

    /// XPath `number()` coercion. Strings that are not numbers become NaN.
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Str(s) => parse_number(s).unwrap_or(f64::NAN),
        }
    }

    /// XPath `string()` coercion.
    pub fn to_text(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Num(n) => format_number(*n),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// XPath `boolean()` coercion: non-empty strings and non-zero, non-NaN
    /// numbers are true.
    pub fn to_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Whether the value is (coercible to) a number.
    pub fn is_numeric(&self) -> bool {
        !self.to_number().is_nan()
    }

    /// Equality under coercion: if either side is numeric both are compared
    /// as numbers, if either is boolean both as booleans, else as strings.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Bool(_), _) | (_, Value::Bool(_)) => self.to_bool() == other.to_bool(),
            (Value::Num(_), _) | (_, Value::Num(_)) => self.to_number() == other.to_number(),
            (Value::Str(a), Value::Str(b)) => a == b,
        }
    }

    /// Ordering under coercion. Numeric comparison when both sides coerce to
    /// numbers; lexicographic otherwise. `None` for NaN-vs-number cases
    /// where no order is defined.
    pub fn loose_cmp(&self, other: &Value) -> Option<Ordering> {
        let (a, b) = (self.to_number(), other.to_number());
        if !a.is_nan() && !b.is_nan() {
            return a.partial_cmp(&b);
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// Comparison operators shared by every query formalism in the workspace
/// (XML-GL predicates, WG-Log constraints, the algebra's filters). The
/// ordering operators coerce through [`Value::loose_cmp`]; `Eq`/`Ne` use
/// [`Value::loose_eq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Contains,
    StartsWith,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "contains",
            CmpOp::StartsWith => "starts-with",
        }
    }

    pub fn from_symbol(s: &str) -> Option<Self> {
        Some(match s {
            "=" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "contains" => CmpOp::Contains,
            "starts-with" => CmpOp::StartsWith,
            _ => return None,
        })
    }

    /// Evaluate against a data value and a constant.
    pub fn eval(self, data: &str, constant: &str) -> bool {
        let d = Value::from_literal(data);
        let c = Value::from_literal(constant);
        match self {
            CmpOp::Eq => d.loose_eq(&c),
            CmpOp::Ne => !d.loose_eq(&c),
            CmpOp::Lt => d.loose_cmp(&c) == Some(Ordering::Less),
            CmpOp::Le => matches!(d.loose_cmp(&c), Some(Ordering::Less | Ordering::Equal)),
            CmpOp::Gt => d.loose_cmp(&c) == Some(Ordering::Greater),
            CmpOp::Ge => {
                matches!(d.loose_cmp(&c), Some(Ordering::Greater | Ordering::Equal))
            }
            CmpOp::Contains => data.contains(constant),
            CmpOp::StartsWith => data.starts_with(constant),
        }
    }
}

/// Parse an XPath-style number: optional sign, digits, optional fraction.
/// Surrounding ASCII whitespace is ignored; anything else fails.
pub fn parse_number(s: &str) -> Option<f64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    let rest = t.strip_prefix('-').unwrap_or(t);
    let mut parts = rest.splitn(2, '.');
    let int = parts.next().unwrap_or("");
    let frac = parts.next();
    let digits_ok = |p: &str| !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit());
    let ok = match frac {
        None => digits_ok(int),
        Some(fr) => {
            // ".5" and "5." are both accepted, "." alone is not.
            (int.is_empty() || digits_ok(int))
                && (fr.is_empty() || digits_ok(fr))
                && !(int.is_empty() && fr.is_empty())
        }
    };
    if ok {
        t.parse::<f64>().ok()
    } else {
        None
    }
}

/// Format a number the XPath way: integers print without a fractional part.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_classification() {
        assert_eq!(Value::from_literal("42"), Value::Num(42.0));
        assert_eq!(Value::from_literal("-3.5"), Value::Num(-3.5));
        assert_eq!(Value::from_literal(".5"), Value::Num(0.5));
        assert_eq!(Value::from_literal("0.59"), Value::Num(0.59));
        assert_eq!(Value::from_literal("abc"), Value::Str("abc".into()));
        assert_eq!(Value::from_literal("1e3"), Value::Str("1e3".into())); // no exponents in XPath 1.0
        assert_eq!(Value::from_literal(""), Value::Str(String::new()));
        assert_eq!(Value::from_literal("4 2"), Value::Str("4 2".into()));
    }

    #[test]
    fn number_coercion() {
        assert_eq!(Value::Str(" 7 ".into()).to_number(), 7.0);
        assert!(Value::Str("x".into()).to_number().is_nan());
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::Bool(false).to_number(), 0.0);
    }

    #[test]
    fn bool_coercion() {
        assert!(Value::Str("x".into()).to_bool());
        assert!(!Value::Str("".into()).to_bool());
        assert!(Value::Num(0.1).to_bool());
        assert!(!Value::Num(0.0).to_bool());
        assert!(!Value::Num(f64::NAN).to_bool());
    }

    #[test]
    fn string_coercion_formats_integers_plainly() {
        assert_eq!(Value::Num(3.0).to_text(), "3");
        assert_eq!(Value::Num(3.25).to_text(), "3.25");
        assert_eq!(Value::Num(-0.0).to_text(), "0");
        assert_eq!(Value::Num(f64::NAN).to_text(), "NaN");
        assert_eq!(Value::Num(f64::INFINITY).to_text(), "Infinity");
        assert_eq!(Value::Num(f64::NEG_INFINITY).to_text(), "-Infinity");
    }

    #[test]
    fn loose_eq_coerces_numbers() {
        assert!(Value::Str("10".into()).loose_eq(&Value::Num(10.0)));
        assert!(!Value::Str("10".into()).loose_eq(&Value::Str("10.0".into())));
        assert!(Value::Num(10.0).loose_eq(&Value::Str("10.0".into())));
        assert!(Value::Bool(true).loose_eq(&Value::Str("yes".into())));
        assert!(Value::Bool(false).loose_eq(&Value::Str("".into())));
    }

    #[test]
    fn loose_cmp_numeric_first() {
        assert_eq!(
            Value::Str("9".into()).loose_cmp(&Value::Str("10".into())),
            Some(Ordering::Less)
        );
        // Pure string comparison when not numeric.
        assert_eq!(
            Value::Str("apple".into()).loose_cmp(&Value::Str("banana".into())),
            Some(Ordering::Less)
        );
        // NaN against a number: undefined.
        assert_eq!(Value::Str("x".into()).loose_cmp(&Value::Num(1.0)), None);
    }

    #[test]
    fn parse_number_edges() {
        assert_eq!(parse_number("5."), Some(5.0));
        assert_eq!(parse_number("-5."), Some(-5.0));
        assert_eq!(parse_number("."), None);
        assert_eq!(parse_number("-"), None);
        assert_eq!(parse_number("--5"), None);
        assert_eq!(parse_number("5.5.5"), None);
    }
}
