//! XML subset parser and serializer.
//!
//! Supports the slice of XML the semi-structured data model needs: elements,
//! attributes (single- or double-quoted), text, comments, processing
//! instructions, CDATA sections, the five predefined entities plus numeric
//! character references, and an (ignored) XML declaration / DOCTYPE line.
//! Not supported: namespaces-as-semantics (prefixed names are kept verbatim
//! as plain names), external entities, and parameter entities.
//!
//! By default whitespace-only text nodes between elements are dropped — the
//! engines operate on data-oriented documents where such nodes are
//! formatting noise. [`ParseOptions::keep_whitespace`] retains them.

use crate::document::{Document, NodeKind};
use crate::error::{Error, Pos, Result};
use crate::NodeId;

/// Knobs for [`parse_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseOptions {
    /// Keep text nodes that consist only of whitespace.
    pub keep_whitespace: bool,
}

/// Parse with default options.
pub fn parse(input: &str) -> Result<Document> {
    parse_with(input, ParseOptions::default())
}

/// Parse an XML string into a [`Document`].
pub fn parse_with(input: &str, opts: ParseOptions) -> Result<Document> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        opts,
    };
    let mut doc = Document::new();
    let root = doc.root();
    p.skip_prolog(&mut doc, root)?;
    let mut saw_element = false;
    loop {
        p.skip_ws();
        if p.eof() {
            break;
        }
        if p.peek() != Some(b'<') {
            return Err(p.err("text content is not allowed at the top level"));
        }
        match p.peek2() {
            Some(b'!') => {
                if p.looking_at(b"<!--") {
                    let c = p.parse_comment(&mut doc)?;
                    doc.append_child(root, c).expect("top-level comment");
                } else {
                    return Err(p.err("unexpected markup at top level"));
                }
            }
            Some(b'?') => {
                let pi = p.parse_pi(&mut doc)?;
                doc.append_child(root, pi).expect("top-level PI");
            }
            _ => {
                if saw_element {
                    return Err(p.err("more than one top-level element"));
                }
                let el = p.parse_element(&mut doc)?;
                doc.append_child(root, el).expect("top-level element");
                saw_element = true;
            }
        }
    }
    if !saw_element {
        return Err(p.err("document has no root element"));
    }
    Ok(doc)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    opts: ParseOptions,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error::xml(Pos::new(self.line, self.col), msg)
    }

    fn eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn looking_at(&self, s: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.peek() {
            Some(x) if x == b => {
                self.bump();
                Ok(())
            }
            Some(x) => Err(self.err(format!("expected '{}', found '{}'", b as char, x as char))),
            None => Err(self.err(format!("expected '{}', found end of input", b as char))),
        }
    }

    fn expect_str(&mut self, s: &[u8]) -> Result<()> {
        if self.looking_at(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", String::from_utf8_lossy(s))))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skip XML declaration and a DOCTYPE line (internal subsets are skipped
    /// by bracket counting; their content is not interpreted here — use the
    /// [`crate::dtd`] module to parse DTDs on their own).
    fn skip_prolog(&mut self, doc: &mut Document, root: NodeId) -> Result<()> {
        self.skip_ws();
        // Only the exact declaration target `xml` is a declaration;
        // `<?xml-stylesheet …?>` is an ordinary PI and must be kept.
        if self.looking_at(b"<?xml")
            && matches!(
                self.bytes.get(self.pos + 5),
                Some(b' ' | b'\t' | b'\r' | b'\n' | b'?')
            )
        {
            while !self.looking_at(b"?>") {
                if self.bump().is_none() {
                    return Err(self.err("unterminated XML declaration"));
                }
            }
            self.expect_str(b"?>")?;
        }
        loop {
            self.skip_ws();
            if self.looking_at(b"<!--") {
                let c = self.parse_comment(doc)?;
                doc.append_child(root, c).expect("prolog comment");
                continue;
            }
            if self.looking_at(b"<!DOCTYPE") {
                let mut depth = 0usize;
                let mut quote: Option<u8> = None;
                loop {
                    match self.bump() {
                        Some(q @ (b'"' | b'\'')) => match quote {
                            Some(open) if open == q => quote = None,
                            Some(_) => {}
                            None => quote = Some(q),
                        },
                        Some(_) if quote.is_some() => {}
                        Some(b'[') => depth += 1,
                        Some(b']') => depth = depth.saturating_sub(1),
                        Some(b'>') if depth == 0 => break,
                        Some(_) => {}
                        None => return Err(self.err("unterminated DOCTYPE")),
                    }
                }
                continue;
            }
            break;
        }
        Ok(())
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self) -> Result<String> {
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {}
            _ => return Err(self.err("expected a name")),
        }
        let start = self.pos;
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?
            .to_string())
    }

    fn parse_entity(&mut self, out: &mut String) -> Result<()> {
        // self.peek() == '&'
        self.bump();
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b';') {
            self.bump();
        }
        if self.peek() != Some(b';') {
            return Err(self.err("unterminated entity reference"));
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in entity"))?
            .to_string();
        self.bump(); // ';'
        match name.as_str() {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                if let Some(rest) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    let cp = u32::from_str_radix(rest, 16)
                        .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| self.err(format!("invalid code point {cp:#x}")))?,
                    );
                } else if let Some(rest) = name.strip_prefix('#') {
                    let cp = rest
                        .parse::<u32>()
                        .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| self.err(format!("invalid code point {cp}")))?,
                    );
                } else {
                    return Err(self.err(format!("unknown entity &{name};")));
                }
            }
        }
        Ok(())
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => self.parse_entity(&mut out)?,
                Some(b'<') => return Err(self.err("'<' is not allowed in attribute values")),
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != quote && b != b'&' && b != b'<') {
                        self.bump();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in attribute"))?,
                    );
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    fn parse_comment(&mut self, doc: &mut Document) -> Result<NodeId> {
        self.expect_str(b"<!--")?;
        let start = self.pos;
        while !self.looking_at(b"-->") {
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in comment"))?
            .to_string();
        self.expect_str(b"-->")?;
        Ok(doc.create_comment(&text))
    }

    fn parse_pi(&mut self, doc: &mut Document) -> Result<NodeId> {
        self.expect_str(b"<?")?;
        let target = self.parse_name()?;
        self.skip_ws();
        let start = self.pos;
        while !self.looking_at(b"?>") {
            if self.bump().is_none() {
                return Err(self.err("unterminated processing instruction"));
            }
        }
        let data = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in PI"))?
            .to_string();
        self.expect_str(b"?>")?;
        Ok(doc.create_pi(&target, &data))
    }

    fn parse_cdata(&mut self, doc: &mut Document) -> Result<NodeId> {
        self.expect_str(b"<![CDATA[")?;
        let start = self.pos;
        while !self.looking_at(b"]]>") {
            if self.bump().is_none() {
                return Err(self.err("unterminated CDATA section"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in CDATA"))?
            .to_string();
        self.expect_str(b"]]>")?;
        Ok(doc.create_text(&text))
    }

    fn parse_element(&mut self, doc: &mut Document) -> Result<NodeId> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let el = doc.create_element(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b'/') => {
                    self.bump();
                    self.expect(b'>')?;
                    return Ok(el);
                }
                Some(b) if Self::is_name_start(b) => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    if doc.attr(el, &attr).is_some() {
                        return Err(self.err(format!("duplicate attribute '{attr}'")));
                    }
                    doc.set_attr(el, &attr, &value)
                        .expect("element accepts attrs");
                }
                Some(x) => return Err(self.err(format!("unexpected '{}' in tag", x as char))),
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content.
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("missing closing tag </{name}>"))),
                Some(b'<') => {
                    self.flush_text(doc, el, &mut text);
                    if self.looking_at(b"</") {
                        self.expect_str(b"</")?;
                        let close = self.parse_name()?;
                        if close != name {
                            return Err(self.err(format!(
                                "mismatched closing tag </{close}>, expected </{name}>"
                            )));
                        }
                        self.skip_ws();
                        self.expect(b'>')?;
                        return Ok(el);
                    } else if self.looking_at(b"<!--") {
                        let c = self.parse_comment(doc)?;
                        doc.append_child(el, c).expect("fresh comment");
                    } else if self.looking_at(b"<![CDATA[") {
                        let t = self.parse_cdata(doc)?;
                        doc.append_child(el, t).expect("fresh cdata text");
                    } else if self.looking_at(b"<?") {
                        let pi = self.parse_pi(doc)?;
                        doc.append_child(el, pi).expect("fresh PI");
                    } else {
                        let child = self.parse_element(doc)?;
                        doc.append_child(el, child).expect("fresh element");
                    }
                }
                Some(b'&') => self.parse_entity(&mut text)?,
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'<' && b != b'&') {
                        self.bump();
                    }
                    text.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in text"))?,
                    );
                }
            }
        }
    }

    fn flush_text(&self, doc: &mut Document, parent: NodeId, text: &mut String) {
        if text.is_empty() {
            return;
        }
        let keep = self.opts.keep_whitespace || !text.chars().all(char::is_whitespace);
        if keep {
            let t = doc.create_text(text);
            doc.append_child(parent, t).expect("fresh text");
        }
        text.clear();
    }
}

// ----------------------------------------------------------------------
// Serialisation
// ----------------------------------------------------------------------

/// Escape text-node content.
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

/// Escape attribute-value content (double-quote convention).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serialize a document. With `pretty`, element-only content is indented
/// two spaces per level; mixed content is left untouched so text round-trips.
pub fn write(doc: &Document, pretty: bool) -> String {
    let mut out = String::new();
    for &c in doc.children(doc.root()) {
        write_node(doc, c, pretty, 0, &mut out);
        if pretty {
            out.push('\n');
        }
    }
    out
}

fn has_text_child(doc: &Document, node: NodeId) -> bool {
    doc.children(node)
        .iter()
        .any(|&c| doc.kind(c) == NodeKind::Text)
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_node(doc: &Document, node: NodeId, pretty: bool, level: usize, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Document => {
            for &c in doc.children(node) {
                write_node(doc, c, pretty, level, out);
            }
        }
        NodeKind::Text => escape_text(doc.text(node).unwrap_or(""), out),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(doc.text(node).unwrap_or(""));
            out.push_str("-->");
        }
        NodeKind::Pi => {
            out.push_str("<?");
            out.push_str(doc.name(node).unwrap_or(""));
            let data = doc.text(node).unwrap_or("");
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
        NodeKind::Element => {
            let name = doc.name(node).unwrap_or("");
            out.push('<');
            out.push_str(name);
            for (a, v) in doc.attrs(node) {
                out.push(' ');
                out.push_str(a);
                out.push_str("=\"");
                escape_attr(v, out);
                out.push('"');
            }
            let children = doc.children(node);
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let indent_children = pretty && !has_text_child(doc, node);
            for &c in children {
                if indent_children {
                    out.push('\n');
                    indent(out, level + 1);
                }
                write_node(doc, c, pretty, level + 1, out);
            }
            if indent_children {
                out.push('\n');
                indent(out, level);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let doc = parse("<a><b x='1'>hi</b></a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.name(a), Some("a"));
        let b = doc.child_elements(a).next().unwrap();
        assert_eq!(doc.attr(b, "x"), Some("1"));
        assert_eq!(doc.text_content(b), "hi");
    }

    #[test]
    fn parse_self_closing_and_empty() {
        let doc = parse("<a><b/><c></c></a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.child_elements(a).count(), 2);
    }

    #[test]
    fn entities_decode() {
        let doc = parse("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.text_content(a), "<&>\"'AB");
    }

    #[test]
    fn entities_in_attrs() {
        let doc = parse("<a t=\"&quot;x&quot; &amp; y\"/>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.attr(a, "t"), Some("\"x\" & y"));
    }

    #[test]
    fn unknown_entity_is_error() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn cdata_is_literal_text() {
        let doc = parse("<a><![CDATA[<not-a-tag> & stuff]]></a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.text_content(a), "<not-a-tag> & stuff");
    }

    #[test]
    fn comments_and_pis_survive() {
        let doc = parse("<a><!-- note --><?target data?></a>").unwrap();
        let a = doc.root_element().unwrap();
        let kinds: Vec<NodeKind> = doc.children(a).iter().map(|&c| doc.kind(c)).collect();
        assert_eq!(kinds, vec![NodeKind::Comment, NodeKind::Pi]);
    }

    #[test]
    fn doctype_with_quoted_bracket_is_skipped_whole() {
        let doc = parse("<!DOCTYPE a [<!ENTITY e \"]\">]><a/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("a"));
    }

    #[test]
    fn xml_stylesheet_pi_is_preserved() {
        let doc = parse("<?xml-stylesheet href=\"s.xsl\"?><a/>").unwrap();
        let xml = doc.to_xml_string();
        assert!(xml.contains("<?xml-stylesheet"), "{xml}");
        // And the real declaration still skips.
        let doc = parse("<?xml version=\"1.0\"?><a/>").unwrap();
        assert!(
            !doc.to_xml_string().contains("<?xml"),
            "declaration must not persist"
        );
    }

    #[test]
    fn prolog_and_doctype_are_skipped() {
        let doc = parse("<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("a"));
    }

    #[test]
    fn whitespace_text_dropped_by_default() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.children(a).len(), 1);
        let kept = parse_with(
            "<a>\n  <b/>\n</a>",
            ParseOptions {
                keep_whitespace: true,
            },
        )
        .unwrap();
        let a = kept.root_element().unwrap();
        assert_eq!(kept.children(a).len(), 3);
    }

    #[test]
    fn mismatched_tags_error_mentions_both() {
        let err = parse("<a><b></c></a>").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("</c>") && msg.contains("</b>"), "{msg}");
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<a>\n<b attr></b></a>").unwrap_err();
        match err {
            crate::Error::Xml { pos, .. } => assert_eq!(pos.line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_attr_rejected() {
        assert!(parse("<a x='1' x='2'/>").is_err());
    }

    #[test]
    fn two_roots_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn text_at_top_level_rejected() {
        assert!(parse("hello<a/>").is_err());
    }

    #[test]
    fn write_escapes() {
        let mut d = Document::new();
        let a = d.add_element(d.root(), "a");
        d.set_attr(a, "t", "a\"<&").unwrap();
        d.add_text(a, "1 < 2 & 3 > 2");
        let xml = write(&d, false);
        assert_eq!(xml, "<a t=\"a&quot;&lt;&amp;\">1 &lt; 2 &amp; 3 &gt; 2</a>");
    }

    #[test]
    fn roundtrip_compact() {
        let src = "<bib><book isbn=\"1\"><title>A &amp; B</title><author><last>X</last></author></book><book isbn=\"2\"/></bib>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_xml_string(), src);
    }

    #[test]
    fn pretty_printing_indents_element_content_only() {
        let doc = parse("<a><b>text stays inline</b><c><d/></c></a>").unwrap();
        let pretty = write(&doc, true);
        assert!(pretty.contains("<b>text stays inline</b>"));
        assert!(pretty.contains("\n    <d/>"));
        // Pretty output must re-parse to an equivalent document.
        let re = parse(&pretty).unwrap();
        assert_eq!(re.to_xml_string(), doc.to_xml_string());
    }

    #[test]
    fn unterminated_constructs_fail() {
        for src in ["<a>", "<a", "<!-- x", "<a><![CDATA[x", "<?pi", "<a t=\"v>"] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
    }
}
