//! Error type shared by the parsing and validation layers of `gql-ssdm`.

use std::fmt;

/// Result alias used throughout `gql-ssdm`.
pub type Result<T> = std::result::Result<T, Error>;

/// A source position (1-based line and column) inside parsed text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl Pos {
    pub const fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }

    /// Position of the very first character.
    pub const fn start() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced while parsing XML / DTD text or validating documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical or syntactic XML error at a position.
    Xml { pos: Pos, msg: String },
    /// Syntactic DTD error at a position.
    Dtd { pos: Pos, msg: String },
    /// A document failed DTD validation.
    Validation { msg: String },
    /// A node id was used with a document it does not belong to, or after
    /// structural surgery invalidated it.
    InvalidNode { msg: String },
    /// Structural mutation rejected (e.g. appending a node under one of its
    /// own descendants, which would create a cycle).
    Structure { msg: String },
}

impl Error {
    pub fn xml(pos: Pos, msg: impl Into<String>) -> Self {
        Error::Xml {
            pos,
            msg: msg.into(),
        }
    }

    pub fn dtd(pos: Pos, msg: impl Into<String>) -> Self {
        Error::Dtd {
            pos,
            msg: msg.into(),
        }
    }

    pub fn validation(msg: impl Into<String>) -> Self {
        Error::Validation { msg: msg.into() }
    }

    pub fn invalid_node(msg: impl Into<String>) -> Self {
        Error::InvalidNode { msg: msg.into() }
    }

    pub fn structure(msg: impl Into<String>) -> Self {
        Error::Structure { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml { pos, msg } => write!(f, "XML error at {pos}: {msg}"),
            Error::Dtd { pos, msg } => write!(f, "DTD error at {pos}: {msg}"),
            Error::Validation { msg } => write!(f, "validation error: {msg}"),
            Error::InvalidNode { msg } => write!(f, "invalid node: {msg}"),
            Error::Structure { msg } => write!(f, "structure error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::xml(Pos::new(3, 14), "unexpected '<'");
        assert_eq!(e.to_string(), "XML error at 3:14: unexpected '<'");
    }

    #[test]
    fn display_variants() {
        assert!(Error::validation("bad").to_string().contains("validation"));
        assert!(Error::invalid_node("n")
            .to_string()
            .contains("invalid node"));
        assert!(Error::structure("s").to_string().contains("structure"));
        assert!(Error::dtd(Pos::start(), "d").to_string().contains("DTD"));
    }

    #[test]
    fn pos_start_is_1_1() {
        assert_eq!(Pos::start(), Pos::new(1, 1));
        assert_eq!(Pos::start().to_string(), "1:1");
    }
}
