//! DTD parsing and validation.
//!
//! XML-GL can express document schemas with more structural expressive power
//! than DTDs (unordered content, xor arcs); to demonstrate the translation
//! both ways (experiment **F3**) this module implements the DTD side:
//!
//! * a parser for `<!ELEMENT …>` and `<!ATTLIST …>` declarations with the
//!   full content-particle grammar (`EMPTY`, `ANY`, mixed `(#PCDATA|…)*`,
//!   sequences, choices, `?`/`*`/`+`);
//! * a validator that checks a [`Document`] against a [`Dtd`] by compiling
//!   each content model to a Thompson NFA and simulating it over the child
//!   sequence, plus attribute-declaration checks (required/fixed/enumerated)
//!   and document-wide ID uniqueness / IDREF resolution.

use std::collections::{HashMap, HashSet};

use crate::document::{Document, NodeKind};
use crate::error::{Error, Pos, Result};
use crate::NodeId;

/// How often a content particle may repeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rep {
    One,
    Opt,
    Star,
    Plus,
}

impl Rep {
    fn suffix(self) -> &'static str {
        match self {
            Rep::One => "",
            Rep::Opt => "?",
            Rep::Star => "*",
            Rep::Plus => "+",
        }
    }
}

/// A content particle: name, sequence or choice, each with a repetition.
#[derive(Debug, Clone, PartialEq)]
pub enum Cp {
    Name(String, Rep),
    Seq(Vec<Cp>, Rep),
    Choice(Vec<Cp>, Rep),
}

impl Cp {
    /// Render back to DTD concrete syntax.
    pub fn to_dtd_string(&self) -> String {
        match self {
            Cp::Name(n, r) => format!("{n}{}", r.suffix()),
            Cp::Seq(items, r) => {
                let inner: Vec<String> = items.iter().map(Cp::to_dtd_string).collect();
                format!("({}){}", inner.join(","), r.suffix())
            }
            Cp::Choice(items, r) => {
                let inner: Vec<String> = items.iter().map(Cp::to_dtd_string).collect();
                format!("({}){}", inner.join("|"), r.suffix())
            }
        }
    }
}

/// Content model of an element declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentModel {
    Empty,
    Any,
    /// `(#PCDATA)` or `(#PCDATA|a|b)*` — text freely mixed with the listed
    /// element names.
    Mixed(Vec<String>),
    /// Element content following a content particle.
    Children(Cp),
}

/// Declared attribute types.
#[derive(Debug, Clone, PartialEq)]
pub enum AttType {
    Cdata,
    Id,
    Idref,
    Idrefs,
    NmToken,
    NmTokens,
    Enumeration(Vec<String>),
}

/// Attribute default declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum AttDefault {
    Required,
    Implied,
    Fixed(String),
    Default(String),
}

/// One attribute declaration inside an ATTLIST.
#[derive(Debug, Clone, PartialEq)]
pub struct AttDecl {
    pub name: String,
    pub ty: AttType,
    pub default: AttDefault,
}

/// A parsed DTD: element declarations plus attribute lists.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    elements: HashMap<String, ContentModel>,
    /// element name -> its attribute declarations, in declaration order.
    attlists: HashMap<String, Vec<AttDecl>>,
    /// Preserves element declaration order for serialisation.
    element_order: Vec<String>,
}

impl Dtd {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse the *internal subset* syntax: a sequence of `<!ELEMENT …>` and
    /// `<!ATTLIST …>` declarations (comments allowed).
    pub fn parse(input: &str) -> Result<Dtd> {
        let mut p = DtdParser {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        };
        let mut dtd = Dtd::new();
        loop {
            p.skip_ws_and_comments()?;
            if p.eof() {
                break;
            }
            if p.looking_at(b"<!ELEMENT") {
                let (name, model) = p.parse_element_decl()?;
                if dtd.elements.contains_key(&name) {
                    return Err(p.err(format!("duplicate declaration of element '{name}'")));
                }
                dtd.element_order.push(name.clone());
                dtd.elements.insert(name, model);
            } else if p.looking_at(b"<!ATTLIST") {
                let (elem, decls) = p.parse_attlist_decl()?;
                dtd.attlists.entry(elem).or_default().extend(decls);
            } else {
                return Err(p.err("expected <!ELEMENT or <!ATTLIST declaration"));
            }
        }
        Ok(dtd)
    }

    /// Add an element declaration programmatically.
    pub fn declare_element(&mut self, name: &str, model: ContentModel) {
        if !self.elements.contains_key(name) {
            self.element_order.push(name.to_string());
        }
        self.elements.insert(name.to_string(), model);
    }

    /// Add an attribute declaration programmatically.
    pub fn declare_attr(&mut self, elem: &str, decl: AttDecl) {
        self.attlists
            .entry(elem.to_string())
            .or_default()
            .push(decl);
    }

    pub fn element(&self, name: &str) -> Option<&ContentModel> {
        self.elements.get(name)
    }

    pub fn attrs_of(&self, elem: &str) -> &[AttDecl] {
        self.attlists.get(elem).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Declared element names in declaration order.
    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.element_order.iter().map(String::as_str)
    }

    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Serialize back to internal-subset syntax.
    pub fn to_dtd_string(&self) -> String {
        let mut out = String::new();
        for name in &self.element_order {
            let model = &self.elements[name];
            let body = match model {
                ContentModel::Empty => "EMPTY".to_string(),
                ContentModel::Any => "ANY".to_string(),
                ContentModel::Mixed(names) if names.is_empty() => "(#PCDATA)".to_string(),
                ContentModel::Mixed(names) => format!("(#PCDATA|{})*", names.join("|")),
                ContentModel::Children(cp) => match cp {
                    // Content particles at the top level are already wrapped
                    // in parens by the grammar.
                    Cp::Seq(..) | Cp::Choice(..) => cp.to_dtd_string(),
                    Cp::Name(..) => format!("({})", cp.to_dtd_string()),
                },
            };
            out.push_str(&format!("<!ELEMENT {name} {body}>\n"));
            if let Some(decls) = self.attlists.get(name) {
                for d in decls {
                    let ty = match &d.ty {
                        AttType::Cdata => "CDATA".to_string(),
                        AttType::Id => "ID".to_string(),
                        AttType::Idref => "IDREF".to_string(),
                        AttType::Idrefs => "IDREFS".to_string(),
                        AttType::NmToken => "NMTOKEN".to_string(),
                        AttType::NmTokens => "NMTOKENS".to_string(),
                        AttType::Enumeration(vs) => format!("({})", vs.join("|")),
                    };
                    let default = match &d.default {
                        AttDefault::Required => "#REQUIRED".to_string(),
                        AttDefault::Implied => "#IMPLIED".to_string(),
                        AttDefault::Fixed(v) => format!("#FIXED \"{v}\""),
                        AttDefault::Default(v) => format!("\"{v}\""),
                    };
                    out.push_str(&format!("<!ATTLIST {name} {} {ty} {default}>\n", d.name));
                }
            }
        }
        out
    }

    /// Validate a document. Returns the list of violations (empty = valid).
    pub fn validate(&self, doc: &Document) -> Vec<String> {
        let mut violations = Vec::new();
        let mut ids: HashSet<String> = HashSet::new();
        let mut idrefs: Vec<(String, String)> = Vec::new(); // (element, ref)
        if let Some(root) = doc.root_element() {
            self.validate_node(doc, root, &mut violations, &mut ids, &mut idrefs);
        } else {
            violations.push("document has no root element".to_string());
        }
        for (elem, r) in idrefs {
            if !ids.contains(&r) {
                violations.push(format!("IDREF '{r}' on <{elem}> does not match any ID"));
            }
        }
        violations
    }

    /// Shorthand: validate and convert violations into an error.
    pub fn check(&self, doc: &Document) -> Result<()> {
        let v = self.validate(doc);
        if v.is_empty() {
            Ok(())
        } else {
            Err(Error::validation(v.join("; ")))
        }
    }

    fn validate_node(
        &self,
        doc: &Document,
        node: NodeId,
        violations: &mut Vec<String>,
        ids: &mut HashSet<String>,
        idrefs: &mut Vec<(String, String)>,
    ) {
        let name = doc.name(node).unwrap_or("").to_string();
        match self.elements.get(&name) {
            None => violations.push(format!("element <{name}> is not declared")),
            Some(model) => self.validate_content(doc, node, &name, model, violations),
        }
        self.validate_attrs(doc, node, &name, violations, ids, idrefs);
        for child in doc.child_elements(node) {
            self.validate_node(doc, child, violations, ids, idrefs);
        }
    }

    fn validate_content(
        &self,
        doc: &Document,
        node: NodeId,
        name: &str,
        model: &ContentModel,
        violations: &mut Vec<String>,
    ) {
        let has_text = doc.children(node).iter().any(|&c| {
            doc.kind(c) == NodeKind::Text && !doc.text(c).unwrap_or("").trim().is_empty()
        });
        let child_names: Vec<String> = doc
            .child_elements(node)
            .map(|c| doc.name(c).unwrap_or("").to_string())
            .collect();
        match model {
            ContentModel::Any => {}
            ContentModel::Empty => {
                if has_text || !child_names.is_empty() {
                    violations.push(format!("<{name}> is declared EMPTY but has content"));
                }
            }
            ContentModel::Mixed(allowed) => {
                for c in &child_names {
                    if !allowed.contains(c) {
                        violations
                            .push(format!("<{c}> is not allowed in mixed content of <{name}>"));
                    }
                }
            }
            ContentModel::Children(cp) => {
                if has_text {
                    violations.push(format!("<{name}> has element content but contains text"));
                }
                let nfa = Nfa::compile(cp);
                if !nfa.accepts(&child_names) {
                    violations.push(format!(
                        "children of <{name}> ({}) do not match content model {}",
                        child_names.join(","),
                        cp.to_dtd_string()
                    ));
                }
            }
        }
    }

    fn validate_attrs(
        &self,
        doc: &Document,
        node: NodeId,
        name: &str,
        violations: &mut Vec<String>,
        ids: &mut HashSet<String>,
        idrefs: &mut Vec<(String, String)>,
    ) {
        let decls = self.attrs_of(name);
        for d in decls {
            let actual = doc.attr(node, &d.name);
            match (&d.default, actual) {
                (AttDefault::Required, None) => violations.push(format!(
                    "required attribute '{}' missing on <{name}>",
                    d.name
                )),
                (AttDefault::Fixed(v), Some(a)) if a != v => violations.push(format!(
                    "attribute '{}' on <{name}> must have fixed value \"{v}\", found \"{a}\"",
                    d.name
                )),
                _ => {}
            }
            if let Some(v) = actual {
                match &d.ty {
                    AttType::Enumeration(allowed) if !allowed.iter().any(|x| x == v) => {
                        violations.push(format!(
                            "attribute '{}'=\"{v}\" on <{name}> not in enumeration ({})",
                            d.name,
                            allowed.join("|")
                        ));
                    }
                    AttType::Id if !ids.insert(v.to_string()) => {
                        violations.push(format!("duplicate ID \"{v}\" on <{name}>"));
                    }
                    AttType::Idref => idrefs.push((name.to_string(), v.to_string())),
                    AttType::Idrefs => {
                        for tok in v.split_whitespace() {
                            idrefs.push((name.to_string(), tok.to_string()));
                        }
                    }
                    _ => {}
                }
            }
        }
        // Undeclared attributes are violations only when the element has an
        // ATTLIST (lenient mode for undeclared elements keeps partial DTDs
        // usable — XML-GL schemas are routinely partial).
        if !decls.is_empty() {
            for (a, _) in doc.attrs(node) {
                if !decls.iter().any(|d| d.name == a) {
                    violations.push(format!("attribute '{a}' on <{name}> is not declared"));
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Content-model NFA (Thompson construction, subset simulation)
// ----------------------------------------------------------------------

#[derive(Debug)]
struct Nfa {
    /// transitions[state] = (label, target); label None = epsilon.
    transitions: Vec<Vec<(Option<String>, usize)>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    fn compile(cp: &Cp) -> Nfa {
        let mut nfa = Nfa {
            transitions: vec![Vec::new(), Vec::new()],
            start: 0,
            accept: 1,
        };
        let (s, a) = (0, 1);
        nfa.build(cp, s, a);
        nfa
    }

    fn new_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn eps(&mut self, from: usize, to: usize) {
        self.transitions[from].push((None, to));
    }

    fn build(&mut self, cp: &Cp, from: usize, to: usize) {
        let rep = match cp {
            Cp::Name(_, r) | Cp::Seq(_, r) | Cp::Choice(_, r) => *r,
        };
        // Inner fragment between f and t without repetition.
        let (f, t) = (self.new_state(), self.new_state());
        match cp {
            Cp::Name(n, _) => self.transitions[f].push((Some(n.clone()), t)),
            Cp::Seq(items, _) => {
                let mut cur = f;
                for (i, item) in items.iter().enumerate() {
                    let next = if i + 1 == items.len() {
                        t
                    } else {
                        self.new_state()
                    };
                    self.build_norep(item, cur, next);
                    cur = next;
                }
                if items.is_empty() {
                    self.eps(f, t);
                }
            }
            Cp::Choice(items, _) => {
                for item in items {
                    self.build_norep(item, f, t);
                }
                if items.is_empty() {
                    self.eps(f, t);
                }
            }
        }
        match rep {
            Rep::One => {
                self.eps(from, f);
                self.eps(t, to);
            }
            Rep::Opt => {
                self.eps(from, f);
                self.eps(t, to);
                self.eps(from, to);
            }
            Rep::Star => {
                self.eps(from, f);
                self.eps(t, to);
                self.eps(from, to);
                self.eps(t, f);
            }
            Rep::Plus => {
                self.eps(from, f);
                self.eps(t, to);
                self.eps(t, f);
            }
        }
    }

    /// Build a sub-particle honouring *its own* repetition flag.
    fn build_norep(&mut self, cp: &Cp, from: usize, to: usize) {
        self.build(cp, from, to);
    }

    fn closure(&self, states: &mut HashSet<usize>) {
        let mut stack: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for (label, t) in &self.transitions[s] {
                if label.is_none() && states.insert(*t) {
                    stack.push(*t);
                }
            }
        }
    }

    fn accepts(&self, input: &[String]) -> bool {
        let mut current: HashSet<usize> = HashSet::new();
        current.insert(self.start);
        self.closure(&mut current);
        for sym in input {
            let mut next = HashSet::new();
            for &s in &current {
                for (label, t) in &self.transitions[s] {
                    if label.as_deref() == Some(sym.as_str()) {
                        next.insert(*t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            self.closure(&mut next);
            current = next;
        }
        current.contains(&self.accept)
    }
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

struct DtdParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> DtdParser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error::dtd(Pos::new(self.line, self.col), msg)
    }

    fn eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn looking_at(&self, s: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.peek() {
            Some(x) if x == b => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err(format!("expected '{}'", b as char))),
        }
    }

    fn expect_str(&mut self, s: &[u8]) -> Result<()> {
        if self.looking_at(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", String::from_utf8_lossy(s))))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.looking_at(b"<!--") {
                while !self.looking_at(b"-->") {
                    if self.bump().is_none() {
                        return Err(self.err("unterminated comment"));
                    }
                }
                self.expect_str(b"-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'))
        {
            self.bump();
        }
        if start == self.pos {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_rep(&mut self) -> Rep {
        match self.peek() {
            Some(b'?') => {
                self.bump();
                Rep::Opt
            }
            Some(b'*') => {
                self.bump();
                Rep::Star
            }
            Some(b'+') => {
                self.bump();
                Rep::Plus
            }
            _ => Rep::One,
        }
    }

    fn parse_element_decl(&mut self) -> Result<(String, ContentModel)> {
        self.expect_str(b"<!ELEMENT")?;
        self.skip_ws();
        let name = self.parse_name()?;
        self.skip_ws();
        let model = if self.looking_at(b"EMPTY") {
            self.expect_str(b"EMPTY")?;
            ContentModel::Empty
        } else if self.looking_at(b"ANY") {
            self.expect_str(b"ANY")?;
            ContentModel::Any
        } else if self.looking_at(b"PCDATA") {
            // Tolerated shorthand used in some papers: `<!ELEMENT t PCDATA>`.
            self.expect_str(b"PCDATA")?;
            ContentModel::Mixed(Vec::new())
        } else if self.peek() == Some(b'(') {
            // Look ahead for #PCDATA to decide mixed vs children.
            let save = (self.pos, self.line, self.col);
            self.bump();
            self.skip_ws();
            if self.looking_at(b"#PCDATA") {
                self.expect_str(b"#PCDATA")?;
                let mut names = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'|') => {
                            self.bump();
                            self.skip_ws();
                            names.push(self.parse_name()?);
                        }
                        Some(b')') => {
                            self.bump();
                            break;
                        }
                        _ => return Err(self.err("expected '|' or ')' in mixed content")),
                    }
                }
                if !names.is_empty() {
                    self.expect(b'*')?;
                } else if self.peek() == Some(b'*') {
                    self.bump();
                }
                ContentModel::Mixed(names)
            } else {
                (self.pos, self.line, self.col) = save;
                let cp = self.parse_group()?;
                ContentModel::Children(cp)
            }
        } else {
            return Err(self.err("expected a content model"));
        };
        self.skip_ws();
        self.expect(b'>')?;
        Ok((name, model))
    }

    /// Parse a parenthesised group, returning a Seq or Choice particle.
    fn parse_group(&mut self) -> Result<Cp> {
        self.expect(b'(')?;
        let mut items = vec![self.parse_cp()?];
        self.skip_ws();
        let mut sep: Option<u8> = None;
        loop {
            match self.peek() {
                Some(b')') => {
                    self.bump();
                    break;
                }
                Some(c @ (b',' | b'|')) => {
                    if let Some(s) = sep {
                        if s != c {
                            return Err(self.err("cannot mix ',' and '|' in one group"));
                        }
                    }
                    sep = Some(c);
                    self.bump();
                    self.skip_ws();
                    items.push(self.parse_cp()?);
                    self.skip_ws();
                }
                _ => return Err(self.err("expected ',', '|' or ')'")),
            }
        }
        let rep = self.parse_rep();
        Ok(match sep {
            Some(b'|') => Cp::Choice(items, rep),
            _ if items.len() == 1 => {
                // `(x)?` — propagate the group repetition onto the single item
                // unless the item already carries one (then keep the wrapper).
                let single = items.pop().expect("one item");
                match (&single, rep) {
                    (_, Rep::One) => single,
                    (Cp::Name(n, Rep::One), r) => Cp::Name(n.clone(), r),
                    _ => Cp::Seq(vec![single], rep),
                }
            }
            _ => Cp::Seq(items, rep),
        })
    }

    fn parse_cp(&mut self) -> Result<Cp> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.parse_group()
        } else {
            let name = self.parse_name()?;
            let rep = self.parse_rep();
            Ok(Cp::Name(name, rep))
        }
    }

    fn parse_attlist_decl(&mut self) -> Result<(String, Vec<AttDecl>)> {
        self.expect_str(b"<!ATTLIST")?;
        self.skip_ws();
        let elem = self.parse_name()?;
        let mut decls = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'>') {
                self.bump();
                break;
            }
            let name = self.parse_name()?;
            self.skip_ws();
            let ty = if self.peek() == Some(b'(') {
                self.bump();
                let mut values = Vec::new();
                loop {
                    self.skip_ws();
                    values.push(self.parse_name()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b'|') => {
                            self.bump();
                        }
                        Some(b')') => {
                            self.bump();
                            break;
                        }
                        _ => return Err(self.err("expected '|' or ')' in enumeration")),
                    }
                }
                AttType::Enumeration(values)
            } else {
                let t = self.parse_name()?;
                match t.as_str() {
                    "CDATA" => AttType::Cdata,
                    "ID" => AttType::Id,
                    "IDREF" => AttType::Idref,
                    "IDREFS" => AttType::Idrefs,
                    "NMTOKEN" => AttType::NmToken,
                    "NMTOKENS" => AttType::NmTokens,
                    other => return Err(self.err(format!("unsupported attribute type {other}"))),
                }
            };
            self.skip_ws();
            let default = if self.looking_at(b"#REQUIRED") {
                self.expect_str(b"#REQUIRED")?;
                AttDefault::Required
            } else if self.looking_at(b"#IMPLIED") {
                self.expect_str(b"#IMPLIED")?;
                AttDefault::Implied
            } else if self.looking_at(b"#FIXED") {
                self.expect_str(b"#FIXED")?;
                self.skip_ws();
                AttDefault::Fixed(self.parse_quoted()?)
            } else {
                AttDefault::Default(self.parse_quoted()?)
            };
            decls.push(AttDecl { name, ty, default });
        }
        Ok((elem, decls))
    }

    fn parse_quoted(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted value")),
        };
        self.bump();
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != quote) {
            self.bump();
        }
        if self.eof() {
            return Err(self.err("unterminated quoted value"));
        }
        let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.bump();
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    /// The BOOK DTD from the paper's figure XML-GL-DTD2.
    pub const BOOK_DTD: &str = r#"
        <!ELEMENT BOOK (title?,price,AUTHOR*)>
        <!ATTLIST BOOK isbn CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT price (#PCDATA)>
        <!ELEMENT AUTHOR (first-name,last-name)>
        <!ELEMENT first-name (#PCDATA)>
        <!ELEMENT last-name (#PCDATA)>
    "#;

    #[test]
    fn parse_book_dtd() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        assert_eq!(dtd.element_count(), 6);
        match dtd.element("BOOK").unwrap() {
            ContentModel::Children(Cp::Seq(items, Rep::One)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], Cp::Name("title".into(), Rep::Opt));
                assert_eq!(items[2], Cp::Name("AUTHOR".into(), Rep::Star));
            }
            other => panic!("unexpected model {other:?}"),
        }
        assert_eq!(dtd.attrs_of("BOOK").len(), 1);
        assert_eq!(dtd.attrs_of("BOOK")[0].ty, AttType::Cdata);
        assert_eq!(dtd.attrs_of("BOOK")[0].default, AttDefault::Required);
    }

    #[test]
    fn valid_book_document() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        let doc = Document::parse_str(
            "<BOOK isbn='1'><title>T</title><price>10</price>\
             <AUTHOR><first-name>A</first-name><last-name>B</last-name></AUTHOR></BOOK>",
        )
        .unwrap();
        assert_eq!(dtd.validate(&doc), Vec::<String>::new());
    }

    #[test]
    fn optional_title_may_be_absent() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        let doc = Document::parse_str("<BOOK isbn='1'><price>10</price></BOOK>").unwrap();
        assert!(dtd.validate(&doc).is_empty());
    }

    #[test]
    fn missing_price_is_a_violation() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        let doc = Document::parse_str("<BOOK isbn='1'><title>T</title></BOOK>").unwrap();
        let v = dtd.validate(&doc);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("content model"));
    }

    #[test]
    fn wrong_order_is_a_violation() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        let doc =
            Document::parse_str("<BOOK isbn='1'><price>10</price><title>T</title></BOOK>").unwrap();
        assert!(!dtd.validate(&doc).is_empty());
    }

    #[test]
    fn missing_required_attr() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        let doc = Document::parse_str("<BOOK><price>1</price></BOOK>").unwrap();
        let v = dtd.validate(&doc);
        assert!(
            v.iter().any(|m| m.contains("required attribute 'isbn'")),
            "{v:?}"
        );
    }

    #[test]
    fn undeclared_element() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        let doc = Document::parse_str("<PAMPHLET/>").unwrap();
        let v = dtd.validate(&doc);
        assert!(v.iter().any(|m| m.contains("not declared")));
    }

    #[test]
    fn enumeration_and_fixed() {
        let dtd = Dtd::parse(
            "<!ELEMENT item (#PCDATA)>\
             <!ATTLIST item kind (fruit|vegetable) #REQUIRED version CDATA #FIXED \"1\">",
        )
        .unwrap();
        let ok = Document::parse_str("<item kind='fruit' version='1'>x</item>").unwrap();
        assert!(dtd.validate(&ok).is_empty());
        let bad_kind = Document::parse_str("<item kind='meat' version='1'>x</item>").unwrap();
        assert!(dtd
            .validate(&bad_kind)
            .iter()
            .any(|m| m.contains("enumeration")));
        let bad_fixed = Document::parse_str("<item kind='fruit' version='2'>x</item>").unwrap();
        assert!(dtd.validate(&bad_fixed).iter().any(|m| m.contains("fixed")));
    }

    #[test]
    fn id_uniqueness_and_idref_resolution() {
        let dtd = Dtd::parse(
            "<!ELEMENT db (node*)>\
             <!ELEMENT node EMPTY>\
             <!ATTLIST node id ID #REQUIRED ref IDREF #IMPLIED>",
        )
        .unwrap();
        let ok = Document::parse_str("<db><node id='a' ref='b'/><node id='b'/></db>").unwrap();
        assert!(dtd.validate(&ok).is_empty());
        let dup = Document::parse_str("<db><node id='a'/><node id='a'/></db>").unwrap();
        assert!(dtd
            .validate(&dup)
            .iter()
            .any(|m| m.contains("duplicate ID")));
        let dangling = Document::parse_str("<db><node id='a' ref='zz'/></db>").unwrap();
        assert!(dtd
            .validate(&dangling)
            .iter()
            .any(|m| m.contains("does not match any ID")));
    }

    #[test]
    fn idrefs_multi_token() {
        let dtd = Dtd::parse(
            "<!ELEMENT db (n*)><!ELEMENT n EMPTY>\
             <!ATTLIST n id ID #IMPLIED refs IDREFS #IMPLIED>",
        )
        .unwrap();
        let doc = Document::parse_str("<db><n id='a'/><n id='b'/><n refs='a b'/></db>").unwrap();
        assert!(dtd.validate(&doc).is_empty());
        let bad = Document::parse_str("<db><n id='a'/><n refs='a c'/></db>").unwrap();
        assert!(bad.node_count() > 0);
        assert!(dtd.validate(&bad).iter().any(|m| m.contains("'c'")));
    }

    #[test]
    fn mixed_content() {
        let dtd = Dtd::parse(
            "<!ELEMENT p (#PCDATA|em|strong)*><!ELEMENT em (#PCDATA)><!ELEMENT strong (#PCDATA)>",
        )
        .unwrap();
        let ok = Document::parse_str("<p>a<em>b</em>c<strong>d</strong></p>").unwrap();
        assert!(dtd.validate(&ok).is_empty());
        let bad = Document::parse_str("<p>a<code>b</code></p>").unwrap();
        // <code> is both not-allowed-in-mixed and undeclared.
        let v = dtd.validate(&bad);
        assert!(v.iter().any(|m| m.contains("mixed content")));
    }

    #[test]
    fn choices_and_nesting() {
        let dtd = Dtd::parse(
            "<!ELEMENT r ((a|b)+,c?)><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>",
        )
        .unwrap();
        for (xml, valid) in [
            ("<r><a/></r>", true),
            ("<r><b/><a/><c/></r>", true),
            ("<r><c/></r>", false),
            ("<r><a/><c/><c/></r>", false),
            ("<r/>", false),
        ] {
            let doc = Document::parse_str(xml).unwrap();
            assert_eq!(dtd.validate(&doc).is_empty(), valid, "{xml}");
        }
    }

    #[test]
    fn empty_and_any() {
        let dtd = Dtd::parse("<!ELEMENT e EMPTY><!ELEMENT w ANY>").unwrap();
        assert!(dtd
            .validate(&Document::parse_str("<e/>").unwrap())
            .is_empty());
        assert!(!dtd
            .validate(&Document::parse_str("<e>x</e>").unwrap())
            .is_empty());
        let w = Document::parse_str("<w>text<e/></w>").unwrap();
        assert!(dtd.validate(&w).is_empty());
    }

    #[test]
    fn element_content_with_text_is_violation() {
        let dtd = Dtd::parse("<!ELEMENT r (a)><!ELEMENT a EMPTY>").unwrap();
        let doc = Document::parse_str("<r>oops<a/></r>").unwrap();
        assert!(dtd
            .validate(&doc)
            .iter()
            .any(|m| m.contains("contains text")));
    }

    #[test]
    fn serialisation_roundtrip() {
        let dtd = Dtd::parse(BOOK_DTD).unwrap();
        let text = dtd.to_dtd_string();
        let re = Dtd::parse(&text).unwrap();
        assert_eq!(re.to_dtd_string(), text);
        assert_eq!(re.element_count(), dtd.element_count());
    }

    #[test]
    fn mixing_separators_rejected() {
        assert!(Dtd::parse("<!ELEMENT r (a,b|c)>").is_err());
    }

    #[test]
    fn duplicate_element_decl_rejected() {
        assert!(Dtd::parse("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>").is_err());
    }

    #[test]
    fn comments_between_decls() {
        let dtd = Dtd::parse("<!-- books --><!ELEMENT a EMPTY><!-- done -->").unwrap();
        assert_eq!(dtd.element_count(), 1);
    }
}
