//! # gql-ssdm — semi-structured data model
//!
//! The storage substrate every query engine in this workspace runs on. It
//! provides:
//!
//! * an arena-based document store ([`Document`]) with `u32` node ids,
//!   interned names, ordered children and attribute tables — a tree that
//!   becomes a *graph* once ID/IDREF reference edges are resolved
//!   ([`idref`]);
//! * a parser and serializer for a practical XML subset ([`xml`]);
//! * a DTD parser and validator ([`dtd`]) used by the XML-GL schema
//!   formalism;
//! * typed atomic values with XPath-style coercion ([`value`]);
//! * navigation helpers ([`path`]);
//! * deterministic synthetic dataset generators ([`generator`]) reproducing
//!   the shapes of the datasets the paper's worked examples query
//!   (bibliography, city guide, greengrocer).
//!
//! ```
//! use gql_ssdm::Document;
//!
//! let doc = Document::parse_str("<bib><book isbn='1'><title>T</title></book></bib>").unwrap();
//! let bib = doc.root_element().unwrap();
//! assert_eq!(doc.name(bib), Some("bib"));
//! let book = doc.child_elements(bib).next().unwrap();
//! assert_eq!(doc.attr(book, "isbn"), Some("1"));
//! ```

pub mod arena;
pub mod diag;
pub mod document;
pub mod dtd;
pub mod error;
pub mod generator;
pub mod idref;
pub mod index;
pub mod path;
pub mod rng;
pub mod stream;
pub mod summary;
pub mod value;
pub mod xml;

pub use arena::{NodeId, Symbol};
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use document::{Document, NodeKind};
pub use error::{Error, Result};
pub use index::{shallow_fingerprint, DocIndex, IndexStats};
pub use summary::{PathId, Summary, SummaryStats};
pub use value::{CmpOp, Value};
