//! # Structural summaries (DataGuides) inferred from documents
//!
//! Most documents arrive without a DTD, so the static checks of the paper's
//! editors have nothing to check against. A [`Summary`] recovers the missing
//! schema by observation: it is a *strong DataGuide* in the Lore sense — a
//! deterministic automaton over root-to-element tag paths, where every state
//! (a [`PathId`]) records how many document elements sit on that path,
//! whether they carry direct text, which attributes they carry (and how
//! often), plus the ID/IDREF reference edges that make the tree a graph.
//!
//! The summary is a sound abstraction: every element of the document lies on
//! exactly one summary path, and every per-path `count` is exact at build
//! time. Consumers (the `gql-infer` crate) interpret queries against the
//! automaton to decide satisfiability and derive cardinality upper bounds;
//! the soundness argument lives in DESIGN.md.
//!
//! Totals per tag are derived from the existing [`DocIndex`] postings when
//! one is available ([`Summary::from_index`]) — the per-path refinement then
//! only redistributes counts the postings already pin down.

use std::collections::{BTreeMap, HashMap};

use crate::document::{Document, NodeKind};
use crate::idref::RefGraph;
use crate::index::DocIndex;

/// Index of a state in the summary's path automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

impl PathId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One automaton state: all document elements reachable by the same
/// root-to-element tag path.
#[derive(Debug, Clone)]
pub struct PathNode {
    /// Element tag of this step ("" for the virtual document root).
    pub tag: String,
    /// Parent state; `None` only for the virtual root.
    pub parent: Option<PathId>,
    /// Distance from the virtual root (root element paths have depth 1).
    pub depth: u32,
    /// Number of document elements on this path.
    pub count: u64,
    /// How many of them have at least one direct text child.
    pub text_count: u64,
    /// Attribute name → number of elements on this path carrying it.
    /// Ordered so rendering and iteration are deterministic.
    pub attrs: BTreeMap<String, u64>,
    /// Child states, in first-discovery (document) order.
    pub children: Vec<PathId>,
}

/// Counters describing a built [`Summary`], for profiling surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryStats {
    /// Automaton states, excluding the virtual root.
    pub paths: usize,
    /// Deepest path (root elements are depth 1).
    pub max_depth: u32,
    /// Elements covered (equals the document's reachable element count).
    pub elements: u64,
    /// Resolved ID/IDREF reference edges.
    pub ref_edges: usize,
    /// References whose target id did not exist.
    pub dangling_refs: usize,
}

/// The inferred structural summary of one document. Immutable, and valid
/// only for the document shape it was built from (callers rebuild on
/// mutation, as the resident cache in `gql-core` does).
#[derive(Debug, Clone)]
pub struct Summary {
    paths: Vec<PathNode>,
    /// All states with a given tag, in state order.
    by_tag: HashMap<String, Vec<PathId>>,
    /// Elements per tag across all paths (the postings projection).
    tag_totals: HashMap<String, u64>,
    /// Elements carrying each attribute name, across all paths.
    attr_totals: HashMap<String, u64>,
    /// Total reachable elements.
    elements: u64,
    /// Resolved ID/IDREF edges and the names that produced them.
    ref_edges: usize,
    dangling_refs: usize,
    ref_attr_names: Vec<String>,
    /// `Document::node_count()` at build time, for staleness checks.
    built_for: usize,
}

/// The virtual root state: the document node above the root element(s).
pub const ROOT_PATH: PathId = PathId(0);

impl Summary {
    /// Infer the summary with a single preorder walk plus a reference scan.
    pub fn build(doc: &Document) -> Summary {
        Self::infer(doc, None)
    }

    /// Infer the summary, deriving the per-tag totals from an existing
    /// [`DocIndex`]'s postings instead of re-counting them. The index must
    /// have been built for the same document shape.
    pub fn from_index(doc: &Document, idx: &DocIndex) -> Summary {
        Self::infer(doc, Some(idx))
    }

    fn infer(doc: &Document, idx: Option<&DocIndex>) -> Summary {
        let mut s = Summary {
            paths: vec![PathNode {
                tag: String::new(),
                parent: None,
                depth: 0,
                count: 1,
                text_count: 0,
                attrs: BTreeMap::new(),
                children: Vec::new(),
            }],
            by_tag: HashMap::new(),
            tag_totals: HashMap::new(),
            attr_totals: HashMap::new(),
            elements: 0,
            ref_edges: 0,
            dangling_refs: 0,
            ref_attr_names: Vec::new(),
            built_for: doc.node_count(),
        };

        // Transition table built on the fly: (state, child tag) → state.
        let mut trans: HashMap<(PathId, Box<str>), PathId> = HashMap::new();
        // Top-level text (stray whitespace between root elements) still
        // counts as text presence at the virtual root.
        if doc
            .children(doc.root())
            .iter()
            .any(|&c| doc.kind(c) == NodeKind::Text)
        {
            s.paths[0].text_count = 1;
        }
        // Explicit stack keeps the walk allocation-bounded on deep trees.
        let mut stack: Vec<(crate::NodeId, PathId)> = doc
            .children(doc.root())
            .iter()
            .rev()
            .map(|&c| (c, ROOT_PATH))
            .collect();
        while let Some((node, at)) = stack.pop() {
            if doc.kind(node) != NodeKind::Element {
                continue;
            }
            let tag = doc.name(node).unwrap_or("");
            let pid = match trans.get(&(at, Box::from(tag))) {
                Some(&p) => p,
                None => {
                    let pid = PathId(s.paths.len() as u32);
                    s.paths.push(PathNode {
                        tag: tag.to_string(),
                        parent: Some(at),
                        depth: s.paths[at.index()].depth + 1,
                        count: 0,
                        text_count: 0,
                        attrs: BTreeMap::new(),
                        children: Vec::new(),
                    });
                    s.paths[at.index()].children.push(pid);
                    s.by_tag.entry(tag.to_string()).or_default().push(pid);
                    trans.insert((at, Box::from(tag)), pid);
                    pid
                }
            };
            let p = &mut s.paths[pid.index()];
            p.count += 1;
            s.elements += 1;
            let mut has_text = false;
            for (k, _) in doc.attrs(node) {
                *p.attrs.entry(k.to_string()).or_insert(0) += 1;
                *s.attr_totals.entry(k.to_string()).or_insert(0) += 1;
            }
            for &c in doc.children(node).iter().rev() {
                match doc.kind(c) {
                    NodeKind::Element => stack.push((c, pid)),
                    NodeKind::Text => has_text = true,
                    _ => {}
                }
            }
            if has_text {
                s.paths[pid.index()].text_count += 1;
            }
        }

        // Per-tag totals: project them off the postings when an index is at
        // hand (they are already counted there), else fold the path counts.
        match idx {
            Some(idx) => {
                for (sym, n) in idx.tag_counts() {
                    s.tag_totals
                        .insert(doc.resolve_sym(sym).to_string(), n as u64);
                }
            }
            None => {
                for p in &s.paths[1..] {
                    *s.tag_totals.entry(p.tag.clone()).or_insert(0) += p.count;
                }
            }
        }

        // Reference edges: the ID/IDREF resolution that turns the tree into
        // a graph. Names follow the conventional default configuration.
        let refs = RefGraph::extract(doc);
        s.ref_edges = refs.edges().len();
        s.dangling_refs = refs.dangling().len();
        let cfg = crate::idref::RefConfig::default();
        for name in cfg.ref_attrs.iter().chain(cfg.refs_attrs.iter()) {
            if s.attr_totals.contains_key(name.as_str()) {
                s.ref_attr_names.push(name.clone());
            }
        }
        s
    }

    /// The virtual root state (count 1, empty tag).
    pub fn root(&self) -> PathId {
        ROOT_PATH
    }

    pub fn node(&self, p: PathId) -> &PathNode {
        &self.paths[p.index()]
    }

    /// All states, virtual root first.
    pub fn path_count(&self) -> usize {
        self.paths.len() - 1
    }

    /// All element states (excludes the virtual root), in discovery order.
    pub fn element_paths(&self) -> impl Iterator<Item = PathId> + '_ {
        (1..self.paths.len() as u32).map(PathId)
    }

    /// States whose element tag is `tag`.
    pub fn paths_with_tag(&self, tag: &str) -> &[PathId] {
        self.by_tag.get(tag).map_or(&[], Vec::as_slice)
    }

    /// Total elements named `tag` anywhere in the document.
    pub fn tag_total(&self, tag: &str) -> u64 {
        self.tag_totals.get(tag).copied().unwrap_or(0)
    }

    /// Total elements carrying an attribute named `name`.
    pub fn attr_total(&self, name: &str) -> u64 {
        self.attr_totals.get(name).copied().unwrap_or(0)
    }

    /// Total reachable elements.
    pub fn element_count(&self) -> u64 {
        self.elements
    }

    /// Every element tag occurring in the document.
    pub fn tag_names(&self) -> impl Iterator<Item = &str> {
        self.tag_totals.keys().map(String::as_str)
    }

    /// Every attribute name occurring in the document.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.attr_totals.keys().map(String::as_str)
    }

    /// Child state of `p` for tag `tag`, if the path exists.
    pub fn child_named(&self, p: PathId, tag: &str) -> Option<PathId> {
        self.paths[p.index()]
            .children
            .iter()
            .copied()
            .find(|&c| self.paths[c.index()].tag == tag)
    }

    /// All proper descendant states of `p`, in preorder.
    pub fn descendants(&self, p: PathId) -> Vec<PathId> {
        let mut out = Vec::new();
        let mut stack: Vec<PathId> = self.paths[p.index()].children.to_vec();
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend(self.paths[c.index()].children.iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Resolved ID/IDREF edges in the summarised document.
    pub fn ref_edge_count(&self) -> usize {
        self.ref_edges
    }

    /// References whose target identifier did not exist.
    pub fn dangling_ref_count(&self) -> usize {
        self.dangling_refs
    }

    /// Reference-attribute names that are present in the document.
    pub fn ref_attr_names(&self) -> &[String] {
        &self.ref_attr_names
    }

    /// Node count of the document this summary was inferred from.
    pub fn built_for(&self) -> usize {
        self.built_for
    }

    /// The `/tag/tag/...` string of a state (virtual root renders as `/`).
    pub fn path_string(&self, p: PathId) -> String {
        if p == ROOT_PATH {
            return "/".to_string();
        }
        let mut parts = Vec::new();
        let mut cur = Some(p);
        while let Some(c) = cur {
            if c == ROOT_PATH {
                break;
            }
            parts.push(self.paths[c.index()].tag.as_str());
            cur = self.paths[c.index()].parent;
        }
        parts.reverse();
        format!("/{}", parts.join("/"))
    }

    /// Size counters for profiling surfaces.
    pub fn stats(&self) -> SummaryStats {
        SummaryStats {
            paths: self.path_count(),
            max_depth: self.paths.iter().map(|p| p.depth).max().unwrap_or(0),
            elements: self.elements,
            ref_edges: self.ref_edges,
            dangling_refs: self.dangling_refs,
        }
    }

    /// Human-readable DataGuide: one line per path with its count, text
    /// presence and attributes — what `gql-analyze --explain`-style tooling
    /// prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut stack: Vec<PathId> = self.paths[0].children.iter().rev().copied().collect();
        while let Some(p) = stack.pop() {
            let n = &self.paths[p.index()];
            out.push_str(&format!("{} ×{}", self.path_string(p), n.count));
            if n.text_count > 0 {
                out.push_str(&format!(" text×{}", n.text_count));
            }
            for (a, c) in &n.attrs {
                out.push_str(&format!(" @{a}×{c}"));
            }
            out.push('\n');
            stack.extend(n.children.iter().rev().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Document {
        Document::parse_str(
            "<bib><book year='1994'><title>TCP/IP</title><author><last>S</last></author></book>\
             <book year='2000'><title>Web</title><author><last>A</last></author>\
             <author><last>B</last></author></book>\
             <article><title>GL</title></article></bib>",
        )
        .unwrap()
    }

    #[test]
    fn paths_partition_the_elements() {
        let doc = fixture();
        let s = Summary::build(&doc);
        let total: u64 = s.element_paths().map(|p| s.node(p).count).sum();
        assert_eq!(total, s.element_count());
        let idx = DocIndex::build(&doc);
        assert_eq!(total as usize, idx.element_count());
    }

    #[test]
    fn counts_and_structure_match_the_document() {
        let doc = fixture();
        let s = Summary::build(&doc);
        assert_eq!(s.tag_total("book"), 2);
        assert_eq!(s.tag_total("title"), 3);
        assert_eq!(s.tag_total("nope"), 0);
        assert_eq!(s.attr_total("year"), 2);
        // Distinct paths: /bib, /bib/book, /bib/book/title,
        // /bib/book/author, /bib/book/author/last, /bib/article,
        // /bib/article/title.
        assert_eq!(s.path_count(), 7);
        // `title` sits on two distinct paths with 2 + 1 occurrences.
        let titles = s.paths_with_tag("title");
        assert_eq!(titles.len(), 2);
        let counts: Vec<u64> = titles.iter().map(|&p| s.node(p).count).collect();
        assert_eq!(counts.iter().sum::<u64>(), 3);
        // The author path carries 3 elements (1 + 2) with no text.
        let authors = s.paths_with_tag("author");
        assert_eq!(authors.len(), 1);
        assert_eq!(s.node(authors[0]).count, 3);
        assert_eq!(s.node(authors[0]).text_count, 0);
        // Every title has direct text.
        for &t in titles {
            assert_eq!(s.node(t).count, s.node(t).text_count);
        }
    }

    #[test]
    fn path_strings_and_navigation() {
        let doc = fixture();
        let s = Summary::build(&doc);
        let bib = s.child_named(s.root(), "bib").unwrap();
        let book = s.child_named(bib, "book").unwrap();
        assert_eq!(s.path_string(book), "/bib/book");
        assert_eq!(s.path_string(s.root()), "/");
        assert_eq!(s.node(book).depth, 2);
        assert!(s.child_named(book, "article").is_none());
        // Descendants of /bib/book: title, author, author/last.
        assert_eq!(s.descendants(book).len(), 3);
        let attr = s.node(book).attrs.get("year").copied();
        assert_eq!(attr, Some(2));
    }

    #[test]
    fn from_index_agrees_with_build() {
        let doc = fixture();
        let idx = DocIndex::build(&doc);
        let a = Summary::build(&doc);
        let b = Summary::from_index(&doc, &idx);
        assert_eq!(a.path_count(), b.path_count());
        for tag in ["bib", "book", "title", "author", "last", "article"] {
            assert_eq!(a.tag_total(tag), b.tag_total(tag), "tag {tag}");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn reference_edges_are_counted() {
        let doc = Document::parse_str(
            "<g><p id='a'><link ref='b'/></p><p id='b'/><q ref='missing'/></g>",
        )
        .unwrap();
        let s = Summary::build(&doc);
        assert_eq!(s.ref_edge_count(), 1);
        assert_eq!(s.dangling_ref_count(), 1);
        assert_eq!(s.ref_attr_names(), &["ref".to_string()]);
    }

    #[test]
    fn render_lists_every_path() {
        let doc = fixture();
        let s = Summary::build(&doc);
        let text = s.render();
        assert_eq!(text.lines().count(), s.path_count());
        assert!(text.contains("/bib/book ×2 @year×2"));
        assert!(text.contains("/bib/book/title ×2 text×2"));
        assert!(text.contains("/bib/article/title ×1 text×1"));
    }

    #[test]
    fn empty_document_summarises_cleanly() {
        let doc = Document::new();
        let s = Summary::build(&doc);
        assert_eq!(s.path_count(), 0);
        assert_eq!(s.element_count(), 0);
        assert_eq!(s.stats().max_depth, 0);
        assert_eq!(s.render(), "");
    }
}
