//! DTD validator edge cases: mixed content with repeated names, enumerated
//! and FIXED attribute interplay, and ID/IDREF resolution across nested
//! subtrees (forward references, dangling refs buried deep in the tree).

use gql_ssdm::dtd::{AttDefault, AttType, ContentModel, Dtd};
use gql_ssdm::Document;

#[test]
fn mixed_content_accepts_repeated_names_in_any_order() {
    let dtd = Dtd::parse(
        "<!ELEMENT p (#PCDATA|em|code)*><!ELEMENT em (#PCDATA)><!ELEMENT code (#PCDATA)>",
    )
    .unwrap();
    // Mixed content is unordered and unbounded: the same child name may
    // repeat arbitrarily, interleaved with text, in any order.
    for xml in [
        "<p><em>a</em><em>b</em><em>c</em></p>",
        "<p>t<code>x</code>t<em>y</em>t<code>z</code><em>w</em></p>",
        "<p></p>",
    ] {
        let doc = Document::parse_str(xml).unwrap();
        assert_eq!(dtd.validate(&doc), Vec::<String>::new(), "{xml}");
    }
    let bad = Document::parse_str("<p><em>a</em><b>no</b><em>c</em></p>").unwrap();
    let v = dtd.validate(&bad);
    assert!(
        v.iter().any(|m| m.contains("mixed content")),
        "repeated allowed names must not mask the disallowed one: {v:?}"
    );
}

#[test]
fn repeated_name_in_mixed_declaration_roundtrips() {
    // `(#PCDATA|em|em)*` is odd but well-formed input; the validator must
    // treat the duplicate as a plain member and serialisation must keep it.
    let dtd = Dtd::parse("<!ELEMENT p (#PCDATA|em|em)*><!ELEMENT em (#PCDATA)>").unwrap();
    match dtd.element("p").unwrap() {
        ContentModel::Mixed(names) => assert_eq!(names, &["em".to_string(), "em".to_string()]),
        other => panic!("expected mixed model, got {other:?}"),
    }
    let doc = Document::parse_str("<p><em>a</em><em>b</em></p>").unwrap();
    assert!(dtd.validate(&doc).is_empty());
    let re = Dtd::parse(&dtd.to_dtd_string()).unwrap();
    assert_eq!(re.to_dtd_string(), dtd.to_dtd_string());
}

#[test]
fn enumerated_attr_with_fixed_default() {
    // An enumeration combined with #FIXED: only the fixed value is legal,
    // and an off-enumeration value trips both checks.
    let dtd = Dtd::parse(
        "<!ELEMENT job EMPTY>\
         <!ATTLIST job state (open|closed) #FIXED \"open\">",
    )
    .unwrap();
    assert_eq!(
        dtd.attrs_of("job")[0].default,
        AttDefault::Fixed("open".into())
    );
    let ok = Document::parse_str("<job state='open'/>").unwrap();
    assert!(dtd.validate(&ok).is_empty());
    // Absent is fine: #FIXED constrains the value only when present.
    let absent = Document::parse_str("<job/>").unwrap();
    assert!(dtd.validate(&absent).is_empty());
    let wrong_member = Document::parse_str("<job state='closed'/>").unwrap();
    let v = dtd.validate(&wrong_member);
    assert!(v.iter().any(|m| m.contains("fixed value")), "{v:?}");
    let off_enum = Document::parse_str("<job state='pending'/>").unwrap();
    let v = dtd.validate(&off_enum);
    assert!(v.iter().any(|m| m.contains("enumeration")), "{v:?}");
    assert!(v.iter().any(|m| m.contains("fixed value")), "{v:?}");
}

#[test]
fn enumeration_is_case_sensitive_and_whole_token() {
    let dtd = Dtd::parse("<!ELEMENT e EMPTY><!ATTLIST e k (ab|cd) #IMPLIED>").unwrap();
    match &dtd.attrs_of("e")[0].ty {
        AttType::Enumeration(vs) => assert_eq!(vs, &["ab".to_string(), "cd".to_string()]),
        other => panic!("expected enumeration, got {other:?}"),
    }
    for (xml, valid) in [
        ("<e k='ab'/>", true),
        ("<e k='AB'/>", false),
        ("<e k='a'/>", false),
        ("<e k='abcd'/>", false),
    ] {
        let doc = Document::parse_str(xml).unwrap();
        assert_eq!(dtd.validate(&doc).is_empty(), valid, "{xml}");
    }
}

const GRAPH_DTD: &str = "<!ELEMENT g (part*)>\
     <!ELEMENT part (part*,wire*)>\
     <!ELEMENT wire EMPTY>\
     <!ATTLIST part id ID #REQUIRED>\
     <!ATTLIST wire to IDREF #REQUIRED>";

#[test]
fn idref_resolves_forward_and_across_subtrees() {
    let dtd = Dtd::parse(GRAPH_DTD).unwrap();
    // The wire deep inside the first subtree points at an ID declared later
    // in a sibling subtree; IDs are document-global, so this is valid.
    let doc = Document::parse_str(
        "<g><part id='a'><part id='a1'><wire to='b1'/></part></part>\
         <part id='b'><part id='b1'><wire to='a'/></part></part></g>",
    )
    .unwrap();
    assert_eq!(dtd.validate(&doc), Vec::<String>::new());
}

#[test]
fn dangling_idref_in_nested_subtree_is_reported() {
    let dtd = Dtd::parse(GRAPH_DTD).unwrap();
    let doc = Document::parse_str(
        "<g><part id='a'><part id='a1'><part id='a2'><wire to='ghost'/></part></part></part>\
         <part id='b'><wire to='a2'/></part></g>",
    )
    .unwrap();
    let v = dtd.validate(&doc);
    // Exactly the buried ref is dangling; the valid cross-subtree ref to
    // 'a2' must not be flagged along with it.
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].contains("'ghost'") && v[0].contains("does not match any ID"));
}

#[test]
fn duplicate_id_in_different_subtrees_is_reported_once() {
    let dtd = Dtd::parse(GRAPH_DTD).unwrap();
    let doc = Document::parse_str(
        "<g><part id='x'/><part id='y'><part id='x'><wire to='y'/></part></part></g>",
    )
    .unwrap();
    let v = dtd.validate(&doc);
    assert_eq!(
        v.iter().filter(|m| m.contains("duplicate ID")).count(),
        1,
        "{v:?}"
    );
    // The ref to the duplicated ID still resolves (first declaration wins).
    assert!(!v.iter().any(|m| m.contains("does not match any ID")));
}
