//! Structural-summary (DataGuide) behaviour on the reference-heavy
//! generators: the webgraph hyperdocument and the ID/IDREF graph it induces.
//! Pins down that the walk-based and index-based constructions agree, that
//! reference accounting matches the generator's invariants, and that the
//! summary is deterministic per seed.

use gql_ssdm::generator::{webgraph, WebConfig};
use gql_ssdm::idref::RefGraph;
use gql_ssdm::{DocIndex, Document, Summary};

fn cfg(seed: u64) -> WebConfig {
    WebConfig {
        docs: 40,
        links_per_doc: 3,
        index_percent: 50,
        seed,
    }
}

#[test]
fn webgraph_summary_build_and_from_index_agree() {
    for seed in [1u64, 17, 99] {
        let doc = webgraph(cfg(seed));
        let idx = DocIndex::build(&doc);
        let walked = Summary::build(&doc);
        let indexed = Summary::from_index(&doc, &idx);
        assert_eq!(walked.stats(), indexed.stats(), "seed {seed}");
    }
}

#[test]
fn webgraph_summary_counts_match_generator_invariants() {
    let c = cfg(17);
    let doc = webgraph(c);
    let s = Summary::build(&doc);
    // Every doc gets exactly links_per_doc links; index children are
    // probabilistic, so bound them by [0, docs].
    assert_eq!(s.tag_total("doc"), c.docs as u64);
    assert_eq!(s.tag_total("title"), c.docs as u64);
    assert_eq!(s.tag_total("link"), (c.docs * c.links_per_doc) as u64);
    assert!(s.tag_total("index") <= c.docs as u64);
    // The generator only ever targets existing d0..d{n-1} ids, so the
    // summary's reference accounting must see every edge and no dangles.
    assert_eq!(
        s.ref_edge_count() as u64,
        s.tag_total("link") + s.tag_total("index")
    );
    assert_eq!(s.dangling_ref_count(), 0);
    // Shape: web → doc → {title, link, index} is the whole DataGuide.
    let paths: Vec<String> = (0..s.path_count())
        .map(|i| s.path_string(gql_ssdm::PathId(i as u32)))
        .collect();
    for expect in ["/web", "/web/doc", "/web/doc/title", "/web/doc/link"] {
        assert!(
            paths.iter().any(|p| p == expect),
            "missing {expect}: {paths:?}"
        );
    }
    assert!(!paths.iter().any(|p| p.contains("doc/doc")), "{paths:?}");
}

#[test]
fn webgraph_summary_is_deterministic_per_seed() {
    let a = Summary::build(&webgraph(cfg(23))).render();
    let b = Summary::build(&webgraph(cfg(23))).render();
    assert_eq!(a, b);
}

#[test]
fn refgraph_and_summary_agree_on_webgraph_edges() {
    let doc = webgraph(cfg(5));
    let refs = RefGraph::extract(&doc);
    let s = Summary::build(&doc);
    assert_eq!(refs.id_count(), cfg(5).docs);
    assert_eq!(refs.edges().len(), s.ref_edge_count());
    assert!(refs.dangling().is_empty());
    assert_eq!(s.dangling_ref_count(), 0);
}

#[test]
fn summary_counts_dangling_refs_in_nested_subtrees() {
    // Hand-built idref graph: one resolvable ref and one dangling ref
    // buried two levels deep — the summary must count exactly the dangle.
    let mut d = Document::new();
    let g = d.add_element(d.root(), "g");
    let a = d.add_element(g, "part");
    d.set_attr(a, "id", "a").unwrap();
    let a1 = d.add_element(a, "part");
    d.set_attr(a1, "id", "a1").unwrap();
    let w1 = d.add_element(a1, "wire");
    d.set_attr(w1, "ref", "a").unwrap();
    let w2 = d.add_element(a1, "wire");
    d.set_attr(w2, "ref", "ghost").unwrap();
    let s = Summary::build(&d);
    // ref_edges counts only resolved edges; the dangle is tallied apart.
    assert_eq!(s.ref_edge_count(), 1);
    assert_eq!(s.dangling_ref_count(), 1);
    let idx = DocIndex::build(&d);
    assert_eq!(s.stats(), Summary::from_index(&d, &idx).stats());
}
