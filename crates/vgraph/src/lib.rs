//! # gql-vgraph — typed attributed multigraph infrastructure
//!
//! Both graphical query languages in this workspace — XML-GL and WG-Log —
//! *are* graphs: their diagrams consist of typed nodes (element boxes, text
//! circles, attribute dots, aggregation triangles) connected by typed edges
//! (containment, reference, join, construction binding). This crate provides
//! the shared graph container ([`Graph`]) and the algorithms the language
//! crates and the layout engine need: topological sorting, strongly
//! connected components, reachability, undirected components, and BFS
//! layering.
//!
//! The container is a directed multigraph with stable indices: nodes and
//! edges are never removed, only added (diagrams are built once, then
//! analysed), which keeps ids valid and the representation compact.
//!
//! ```
//! use gql_vgraph::Graph;
//!
//! let mut g: Graph<&str, ()> = Graph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! g.add_edge(a, b, ());
//! assert!(gql_vgraph::algo::toposort(&g).is_ok());
//! ```

pub mod algo;
pub mod graph;

pub use graph::{EdgeIx, Graph, NodeIx};
