//! Graph algorithms used by diagram validation, stratification and layout.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeIx};

/// Error returned by [`toposort`] when the graph contains a cycle; carries
/// one node that participates in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cycle(pub NodeIx);

/// Kahn topological sort. Returns nodes in an order where every edge points
/// forward, or a [`Cycle`] witness.
pub fn toposort<N, E>(g: &Graph<N, E>) -> Result<Vec<NodeIx>, Cycle> {
    let mut indeg: Vec<usize> = g.node_indices().map(|n| g.in_degree(n)).collect();
    let mut queue: VecDeque<NodeIx> = g.node_indices().filter(|n| indeg[n.index()] == 0).collect();
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for s in g.successors(n) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push_back(s);
            }
        }
    }
    if order.len() == g.node_count() {
        Ok(order)
    } else {
        let witness = g
            .node_indices()
            .find(|n| indeg[n.index()] > 0)
            .expect("cycle implies a node with remaining in-degree");
        Err(Cycle(witness))
    }
}

/// Whether the directed graph is acyclic.
pub fn is_acyclic<N, E>(g: &Graph<N, E>) -> bool {
    toposort(g).is_ok()
}

/// Nodes reachable from `start` following edge direction (includes `start`).
pub fn reachable<N, E>(g: &Graph<N, E>, start: NodeIx) -> Vec<NodeIx> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![start];
    let mut out = Vec::new();
    seen[start.index()] = true;
    while let Some(n) = stack.pop() {
        out.push(n);
        for s in g.successors(n) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    out
}

/// Weakly connected components; `result[i]` is the component id of node i,
/// ids are dense starting at 0.
pub fn components<N, E>(g: &Graph<N, E>) -> Vec<usize> {
    let mut comp = vec![usize::MAX; g.node_count()];
    let mut next = 0;
    for start in g.node_indices() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start.index()] = next;
        while let Some(n) = stack.pop() {
            for m in g.neighbours(n) {
                if comp[m.index()] == usize::MAX {
                    comp[m.index()] = next;
                    stack.push(m);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of weakly connected components.
pub fn component_count<N, E>(g: &Graph<N, E>) -> usize {
    components(g).iter().copied().max().map_or(0, |m| m + 1)
}

/// Tarjan strongly connected components. Returns the list of SCCs in
/// reverse topological order (standard Tarjan emission order); each SCC is
/// a list of node indices.
pub fn tarjan_scc<N, E>(g: &Graph<N, E>) -> Vec<Vec<NodeIx>> {
    struct State<'a, N, E> {
        g: &'a Graph<N, E>,
        index: Vec<Option<u32>>,
        lowlink: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<NodeIx>,
        counter: u32,
        sccs: Vec<Vec<NodeIx>>,
    }

    // Iterative Tarjan to avoid stack overflow on deep diagrams.
    enum Frame {
        Enter(NodeIx),
        Continue(NodeIx, usize),
    }

    let mut st = State {
        g,
        index: vec![None; g.node_count()],
        lowlink: vec![0; g.node_count()],
        on_stack: vec![false; g.node_count()],
        stack: Vec::new(),
        counter: 0,
        sccs: Vec::new(),
    };

    for root in g.node_indices() {
        if st.index[root.index()].is_some() {
            continue;
        }
        let mut frames = vec![Frame::Enter(root)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    st.index[v.index()] = Some(st.counter);
                    st.lowlink[v.index()] = st.counter;
                    st.counter += 1;
                    st.stack.push(v);
                    st.on_stack[v.index()] = true;
                    frames.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, succ_i) => {
                    let succs: Vec<NodeIx> = st.g.successors(v).collect();
                    if let Some(&w) = succs.get(succ_i) {
                        frames.push(Frame::Continue(v, succ_i + 1));
                        match st.index[w.index()] {
                            None => frames.push(Frame::Enter(w)),
                            Some(widx) => {
                                if st.on_stack[w.index()] {
                                    st.lowlink[v.index()] = st.lowlink[v.index()].min(widx);
                                }
                            }
                        }
                    } else {
                        // All successors processed: close v.
                        if st.lowlink[v.index()] == st.index[v.index()].expect("visited") {
                            let mut scc = Vec::new();
                            loop {
                                let w = st.stack.pop().expect("stack nonempty in SCC pop");
                                st.on_stack[w.index()] = false;
                                scc.push(w);
                                if w == v {
                                    break;
                                }
                            }
                            st.sccs.push(scc);
                        }
                        // Propagate lowlink to parent Continue frame if any.
                        if let Some(Frame::Continue(p, _)) = frames.last() {
                            let p = *p;
                            st.lowlink[p.index()] =
                                st.lowlink[p.index()].min(st.lowlink[v.index()]);
                        }
                    }
                }
            }
        }
    }
    st.sccs
}

/// BFS distance layering from a set of sources: `result[i] = Some(distance)`
/// for reachable nodes.
pub fn bfs_layers<N, E>(g: &Graph<N, E>, sources: &[NodeIx]) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        let d = dist[n.index()].expect("queued nodes have distances");
        for s in g.successors(n) {
            if dist[s.index()].is_none() {
                dist[s.index()] = Some(d + 1);
                queue.push_back(s);
            }
        }
    }
    dist
}

/// Longest-path layering for a DAG: every node gets the length of the
/// longest path from any source to it. Used by the Sugiyama layout's layer
/// assignment. Errors with a [`Cycle`] witness on cyclic input.
pub fn longest_path_layers<N, E>(g: &Graph<N, E>) -> Result<Vec<usize>, Cycle> {
    let order = toposort(g)?;
    let mut layer = vec![0usize; g.node_count()];
    for n in order {
        for s in g.successors(n) {
            layer[s.index()] = layer[s.index()].max(layer[n.index()] + 1);
        }
    }
    Ok(layer)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Graph<usize, ()> {
        let mut g = Graph::new();
        let nodes: Vec<NodeIx> = (0..n).map(|i| g.add_node(i)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g
    }

    #[test]
    fn toposort_chain() {
        let g = chain(5);
        let order = toposort(&g).unwrap();
        let pos: Vec<usize> = order.iter().map(|n| n.index()).collect();
        assert_eq!(pos, vec![0, 1, 2, 3, 4]);
        assert!(is_acyclic(&g));
    }

    #[test]
    fn toposort_detects_cycle() {
        let mut g = chain(3);
        g.add_edge(NodeIx(2), NodeIx(0), ());
        assert!(toposort(&g).is_err());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(toposort(&g), Err(Cycle(a)));
    }

    #[test]
    fn reachable_respects_direction() {
        let g = chain(4);
        assert_eq!(reachable(&g, NodeIx(1)).len(), 3);
        assert_eq!(reachable(&g, NodeIx(3)), vec![NodeIx(3)]);
    }

    #[test]
    fn weak_components() {
        let mut g = chain(3);
        let x = g.add_node(99);
        let y = g.add_node(100);
        g.add_edge(y, x, ()); // second component, edge direction irrelevant
        let comp = components(&g);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[x.index()], comp[y.index()]);
        assert_ne!(comp[0], comp[x.index()]);
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn scc_of_dag_is_singletons() {
        let g = chain(4);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn scc_finds_cycle_groups() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        // a <-> b cycle, c -> d chain, b -> c bridge.
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        g.add_edge(c, d, ());
        let mut sccs = tarjan_scc(&g);
        for s in &mut sccs {
            s.sort();
        }
        assert_eq!(sccs.len(), 3);
        assert!(sccs.contains(&vec![a, b]));
        assert!(sccs.contains(&vec![c]));
        assert!(sccs.contains(&vec![d]));
        // Tarjan emits reverse-topologically: the {a,b} SCC comes last.
        assert_eq!(sccs.last().unwrap(), &vec![a, b]);
    }

    #[test]
    fn bfs_layering() {
        let mut g = chain(3);
        let iso = g.add_node(42);
        let dist = bfs_layers(&g, &[NodeIx(0)]);
        assert_eq!(dist[0], Some(0));
        assert_eq!(dist[2], Some(2));
        assert_eq!(dist[iso.index()], None);
    }

    #[test]
    fn longest_path_beats_bfs_on_diamonds() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(a, c, ()); // shortcut
        g.add_edge(c, d, ());
        let layers = longest_path_layers(&g).unwrap();
        assert_eq!(layers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn longest_path_rejects_cycles() {
        let mut g = chain(2);
        g.add_edge(NodeIx(1), NodeIx(0), ());
        assert!(longest_path_layers(&g).is_err());
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        // 100k-node chain would blow a recursive Tarjan.
        let g = chain(100_000);
        assert_eq!(tarjan_scc(&g).len(), 100_000);
        assert!(toposort(&g).is_ok());
    }

    #[test]
    fn empty_graph() {
        let g: Graph<(), ()> = Graph::new();
        assert!(toposort(&g).unwrap().is_empty());
        assert_eq!(component_count(&g), 0);
        assert!(tarjan_scc(&g).is_empty());
    }
}
