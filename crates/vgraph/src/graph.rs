//! The directed attributed multigraph container.

use std::fmt;

/// Index of a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIx(pub u32);

/// Index of an edge in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeIx(pub u32);

impl NodeIx {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeIx {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct EdgeData<E> {
    src: NodeIx,
    dst: NodeIx,
    weight: E,
}

/// A directed multigraph with node payloads `N` and edge payloads `E`.
///
/// Nodes and edges are append-only; indices are stable. Self-loops and
/// parallel edges are allowed (diagram formalisms use parallel edges for
/// repeated roles).
#[derive(Debug, Clone)]
pub struct Graph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeData<E>>,
    out: Vec<Vec<EdgeIx>>,
    inc: Vec<Vec<EdgeIx>>,
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Graph<N, E> {
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            inc: Vec::new(),
        }
    }

    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            inc: Vec::with_capacity(nodes),
        }
    }

    /// Add a node, returning its index.
    pub fn add_node(&mut self, weight: N) -> NodeIx {
        let ix = NodeIx(self.nodes.len() as u32);
        self.nodes.push(weight);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        ix
    }

    /// Add a directed edge, returning its index.
    ///
    /// # Panics
    /// If either endpoint is out of range.
    pub fn add_edge(&mut self, src: NodeIx, dst: NodeIx, weight: E) -> EdgeIx {
        assert!(src.index() < self.nodes.len(), "src out of range");
        assert!(dst.index() < self.nodes.len(), "dst out of range");
        let ix = EdgeIx(self.edges.len() as u32);
        self.edges.push(EdgeData { src, dst, weight });
        self.out[src.index()].push(ix);
        self.inc[dst.index()].push(ix);
        ix
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn node(&self, ix: NodeIx) -> &N {
        &self.nodes[ix.index()]
    }

    pub fn node_mut(&mut self, ix: NodeIx) -> &mut N {
        &mut self.nodes[ix.index()]
    }

    pub fn edge(&self, ix: EdgeIx) -> &E {
        &self.edges[ix.index()].weight
    }

    pub fn edge_mut(&mut self, ix: EdgeIx) -> &mut E {
        &mut self.edges[ix.index()].weight
    }

    /// Source and destination of an edge.
    pub fn endpoints(&self, ix: EdgeIx) -> (NodeIx, NodeIx) {
        let e = &self.edges[ix.index()];
        (e.src, e.dst)
    }

    pub fn source(&self, ix: EdgeIx) -> NodeIx {
        self.edges[ix.index()].src
    }

    pub fn target(&self, ix: EdgeIx) -> NodeIx {
        self.edges[ix.index()].dst
    }

    /// All node indices.
    pub fn node_indices(&self) -> impl Iterator<Item = NodeIx> + '_ {
        (0..self.nodes.len() as u32).map(NodeIx)
    }

    /// All edge indices.
    pub fn edge_indices(&self) -> impl Iterator<Item = EdgeIx> + '_ {
        (0..self.edges.len() as u32).map(EdgeIx)
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, n: NodeIx) -> impl Iterator<Item = EdgeIx> + '_ {
        self.out[n.index()].iter().copied()
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, n: NodeIx) -> impl Iterator<Item = EdgeIx> + '_ {
        self.inc[n.index()].iter().copied()
    }

    /// Successor nodes (with multiplicity, following parallel edges).
    pub fn successors(&self, n: NodeIx) -> impl Iterator<Item = NodeIx> + '_ {
        self.out[n.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// Predecessor nodes (with multiplicity).
    pub fn predecessors(&self, n: NodeIx) -> impl Iterator<Item = NodeIx> + '_ {
        self.inc[n.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    pub fn out_degree(&self, n: NodeIx) -> usize {
        self.out[n.index()].len()
    }

    pub fn in_degree(&self, n: NodeIx) -> usize {
        self.inc[n.index()].len()
    }

    /// Neighbours in either direction (with multiplicity).
    pub fn neighbours(&self, n: NodeIx) -> impl Iterator<Item = NodeIx> + '_ {
        self.successors(n).chain(self.predecessors(n))
    }

    /// Whether at least one `src → dst` edge exists.
    pub fn has_edge(&self, src: NodeIx, dst: NodeIx) -> bool {
        self.out[src.index()]
            .iter()
            .any(|&e| self.edges[e.index()].dst == dst)
    }

    /// Map node and edge payloads into a new graph with identical shape.
    pub fn map<N2, E2>(
        &self,
        mut fnode: impl FnMut(NodeIx, &N) -> N2,
        mut fedge: impl FnMut(EdgeIx, &E) -> E2,
    ) -> Graph<N2, E2> {
        let mut g = Graph::with_capacity(self.node_count(), self.edge_count());
        for ix in self.node_indices() {
            g.add_node(fnode(ix, self.node(ix)));
        }
        for ix in self.edge_indices() {
            let (s, d) = self.endpoints(ix);
            g.add_edge(s, d, fedge(ix, self.edge(ix)));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph<char, u32>, [NodeIx; 4]) {
        let mut g = Graph::new();
        let a = g.add_node('a');
        let b = g.add_node('b');
        let c = g.add_node('c');
        let d = g.add_node('d');
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_payloads() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.node(a), 'a');
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
    }

    #[test]
    fn adjacency() {
        let (g, [a, b, c, d]) = diamond();
        let succ: Vec<NodeIx> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
        let pred: Vec<NodeIx> = g.predecessors(d).collect();
        assert_eq!(pred, vec![b, c]);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g: Graph<(), &str> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, "x");
        g.add_edge(a, b, "y");
        g.add_edge(a, a, "loop");
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.successors(a).filter(|&n| n == b).count(), 2);
    }

    #[test]
    fn endpoints_and_mutation() {
        let (mut g, [a, b, ..]) = diamond();
        let e = g.out_edges(a).next().unwrap();
        assert_eq!(g.endpoints(e), (a, b));
        *g.edge_mut(e) = 99;
        assert_eq!(*g.edge(e), 99);
        *g.node_mut(a) = 'z';
        assert_eq!(*g.node(a), 'z');
    }

    #[test]
    fn map_preserves_shape() {
        let (g, _) = diamond();
        let mapped: Graph<String, u32> = g.map(|_, &c| c.to_string(), |_, &w| w * 10);
        assert_eq!(mapped.node_count(), 4);
        assert_eq!(*mapped.edge(EdgeIx(0)), 10);
        assert_eq!(mapped.node(NodeIx(0)), "a");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_to_missing_node_panics() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeIx(5), ());
    }
}
