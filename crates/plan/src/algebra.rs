//! The unified logical algebra.
//!
//! Every query surface lowers to the same seven operators:
//!
//! ```text
//! plan     ::= scan | lookup | filter | join | fixpoint | construct | step
//! scan     ::= Scan(test)                      -- full arena walk
//! lookup   ::= IndexLookup(test)               -- posting-list probe
//! filter   ::= Filter(pred, plan)              -- predicate on string value
//! join     ::= HashJoin(plan, plan, on)        -- value equi-join
//! fixpoint ::= Fixpoint(plan…)                 -- semi-naive rule iteration
//! construct::= Construct(shape, plan…)         -- result materialisation
//! step     ::= PathStep(axis, test, plan?)     -- navigation step
//! ```
//!
//! The algebra is *descriptive at the leaves and prescriptive at the
//! joins*: execution stays with the specialised interpreters, but the
//! XML-GL root-join order recorded in a [`HashJoin`] spine is the order the
//! matcher actually runs (see `gql_core::Engine`), and the whole tree is
//! what EXPLAIN surfaces print. Source spans ride along on every operator
//! so diagnostics and trace provenance can point back into query text.

use std::fmt;

use gql_ssdm::Span;

/// A node of the logical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Full document/instance scan filtered by a name or type test.
    Scan { test: String, est: u64, span: Span },
    /// Posting-list probe of `DocIndex` (tag, attribute or text postings).
    IndexLookup { test: String, est: u64, span: Span },
    /// Predicate applied to the input's string values.
    Filter {
        pred: String,
        input: Box<LogicalPlan>,
        span: Span,
    },
    /// Value equi-join between two sub-plans (the matcher's hashed
    /// provenance-tuple combine).
    HashJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        on: String,
        est: u64,
        span: Span,
    },
    /// Semi-naive iteration of a rule body to a fixed point (WG-Log).
    Fixpoint { body: Vec<LogicalPlan>, span: Span },
    /// Result materialisation: the construct side of a rule, or the
    /// node-set serialisation of an XPath answer.
    Construct {
        shape: String,
        inputs: Vec<LogicalPlan>,
        span: Span,
    },
    /// One navigation step (`child::x`, `descendant::*`, attribute or text
    /// access). `input` is `None` for the context-establishing first step.
    PathStep {
        axis: String,
        test: String,
        input: Option<Box<LogicalPlan>>,
        est: u64,
        span: Span,
    },
}

impl LogicalPlan {
    /// The operator name alone.
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::IndexLookup { .. } => "IndexLookup",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::HashJoin { .. } => "HashJoin",
            LogicalPlan::Fixpoint { .. } => "Fixpoint",
            LogicalPlan::Construct { .. } => "Construct",
            LogicalPlan::PathStep { .. } => "PathStep",
        }
    }

    /// Source span of this operator.
    pub fn span(&self) -> Span {
        match self {
            LogicalPlan::Scan { span, .. }
            | LogicalPlan::IndexLookup { span, .. }
            | LogicalPlan::Filter { span, .. }
            | LogicalPlan::HashJoin { span, .. }
            | LogicalPlan::Fixpoint { span, .. }
            | LogicalPlan::Construct { span, .. }
            | LogicalPlan::PathStep { span, .. } => *span,
        }
    }

    /// Estimated output cardinality, when the operator carries one.
    pub fn est(&self) -> Option<u64> {
        match self {
            LogicalPlan::Scan { est, .. }
            | LogicalPlan::IndexLookup { est, .. }
            | LogicalPlan::HashJoin { est, .. }
            | LogicalPlan::PathStep { est, .. } => Some(*est),
            _ => None,
        }
    }

    /// Number of operators in the tree (self included).
    pub fn size(&self) -> usize {
        1 + match self {
            LogicalPlan::Scan { .. } | LogicalPlan::IndexLookup { .. } => 0,
            LogicalPlan::Filter { input, .. } => input.size(),
            LogicalPlan::HashJoin { left, right, .. } => left.size() + right.size(),
            LogicalPlan::Fixpoint { body, .. } => body.iter().map(LogicalPlan::size).sum(),
            LogicalPlan::Construct { inputs, .. } => inputs.iter().map(LogicalPlan::size).sum(),
            LogicalPlan::PathStep { input, .. } => input.as_ref().map_or(0, |p| p.size()),
        }
    }

    /// Multi-line indented rendering — the EXPLAIN printout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            LogicalPlan::Scan { test, est, .. } => {
                out.push_str(&format!("Scan {test} (est {est})\n"));
            }
            LogicalPlan::IndexLookup { test, est, .. } => {
                out.push_str(&format!("IndexLookup {test} (est {est})\n"));
            }
            LogicalPlan::Filter { pred, input, .. } => {
                out.push_str(&format!("Filter {pred}\n"));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::HashJoin {
                left,
                right,
                on,
                est,
                ..
            } => {
                out.push_str(&format!("HashJoin on {on} (est {est})\n"));
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
            LogicalPlan::Fixpoint { body, .. } => {
                out.push_str("Fixpoint\n");
                for b in body {
                    b.render_into(out, depth + 1);
                }
            }
            LogicalPlan::Construct { shape, inputs, .. } => {
                out.push_str(&format!("Construct {shape}\n"));
                for i in inputs {
                    i.render_into(out, depth + 1);
                }
            }
            LogicalPlan::PathStep {
                axis,
                test,
                input,
                est,
                ..
            } => {
                out.push_str(&format!("PathStep {axis}::{test} (est {est})\n"));
                if let Some(i) = input {
                    i.render_into(out, depth + 1);
                }
            }
        }
    }

    /// Single-line rendering for trace notes: operators in prefix order
    /// with parenthesised children.
    pub fn render_compact(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalPlan::Scan { test, .. } => write!(f, "Scan({test})"),
            LogicalPlan::IndexLookup { test, .. } => write!(f, "IndexLookup({test})"),
            LogicalPlan::Filter { pred, input, .. } => write!(f, "Filter({pred}, {input})"),
            LogicalPlan::HashJoin {
                left, right, on, ..
            } => write!(f, "HashJoin({on}, {left}, {right})"),
            LogicalPlan::Fixpoint { body, .. } => {
                write!(f, "Fixpoint(")?;
                for (i, b) in body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            LogicalPlan::Construct { shape, inputs, .. } => {
                write!(f, "Construct({shape}")?;
                for i in inputs {
                    write!(f, ", {i}")?;
                }
                write!(f, ")")
            }
            LogicalPlan::PathStep {
                axis, test, input, ..
            } => match input {
                Some(i) => write!(f, "PathStep({axis}::{test}, {i})"),
                None => write!(f, "PathStep({axis}::{test})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(test: &str, est: u64) -> LogicalPlan {
        LogicalPlan::IndexLookup {
            test: test.into(),
            est,
            span: Span::none(),
        }
    }

    #[test]
    fn render_tree_and_compact() {
        let plan = LogicalPlan::Construct {
            shape: "out".into(),
            inputs: vec![LogicalPlan::HashJoin {
                left: Box::new(leaf("book", 10)),
                right: Box::new(LogicalPlan::Filter {
                    pred: "text = \"x\"".into(),
                    input: Box::new(leaf("article", 3)),
                    span: Span::none(),
                }),
                on: "$a == $b".into(),
                est: 10,
                span: Span::none(),
            }],
            span: Span::none(),
        };
        let text = plan.render();
        assert!(text.contains("Construct out"));
        assert!(text.contains("  HashJoin on $a == $b (est 10)"));
        assert!(text.contains("    IndexLookup book (est 10)"));
        assert!(text.contains("      IndexLookup article (est 3)"));
        assert_eq!(
            plan.render_compact(),
            "Construct(out, HashJoin($a == $b, IndexLookup(book), \
             Filter(text = \"x\", IndexLookup(article))))"
        );
        assert_eq!(plan.size(), 5);
        assert_eq!(plan.op_name(), "Construct");
        assert_eq!(plan.est(), None);
        assert_eq!(leaf("book", 7).est(), Some(7));
    }
}
