//! Cost-based join ordering for multi-root XML-GL rule bodies.
//!
//! The matcher evaluates a rule's extract roots left to right, combining
//! each root's provenance tuples with the accumulated intermediate result
//! (a hashed equi-join when a `join $a == $b` constraint connects them, a
//! cross product otherwise). The order of that spine is the one planning
//! decision that changes work without changing answers, so it is the one
//! this module optimises.
//!
//! [`JoinGraph`] abstracts a rule body to per-root cardinality bounds (from
//! gql-infer's `W` recurrence) plus a root-level join-connectivity matrix.
//! [`JoinGraph::plan`] enumerates orders bottom-up with dynamic programming
//! over root subsets when the body has at most [`DP_LIMIT`] roots —
//! guaranteed to minimise the cost model — and falls back to the greedy
//! heuristic (smallest bound first, join-connected preferred; the
//! generalisation of `gql_infer::plan_root_order`) above that.
//!
//! The cost model charges each step its input sizes plus the estimated
//! intermediate it produces: a join-connected step keeps the larger side's
//! bound (an equi-join cannot fan out past the looser input under the
//! summary bounds), a cross product multiplies. Estimates only ever steer
//! the order; the matcher re-sorts provenance tuples to declaration order
//! afterwards, so any order is answer-identical.

use gql_xmlgl::ast::Rule;

/// Bodies up to this many roots are planned exhaustively with subset DP.
pub const DP_LIMIT: usize = 8;

/// A rule body abstracted to join-order facts: one cardinality bound per
/// extract root and a symmetric root-connectivity matrix derived from the
/// rule's join constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinGraph {
    pub bounds: Vec<u64>,
    pub connected: Vec<Vec<bool>>,
}

impl JoinGraph {
    /// Build the join graph for a rule given per-root bounds (declaration
    /// order, as produced by `gql_infer::infer_xmlgl`). Returns `None` when
    /// there is nothing to reorder: fewer than two roots, or bounds that do
    /// not line up with the rule.
    pub fn from_rule(rule: &Rule, bounds: &[u64]) -> Option<JoinGraph> {
        let g = &rule.extract;
        let roots = &g.roots;
        if roots.len() < 2 || bounds.len() != roots.len() {
            return None;
        }
        let owner = root_owners(rule);
        let mut connected = vec![vec![false; roots.len()]; roots.len()];
        for &(a, b) in &g.joins {
            let (oa, ob) = (owner[a.index()], owner[b.index()]);
            if oa != ob && oa != usize::MAX && ob != usize::MAX {
                connected[oa][ob] = true;
                connected[ob][oa] = true;
            }
        }
        Some(JoinGraph {
            bounds: bounds.to_vec(),
            connected,
        })
    }

    fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Estimated rows after joining `next` onto an intermediate of `rows`
    /// rows covering the roots in `mask`.
    fn extend_rows(&self, mask: u32, rows: u128, next: usize) -> u128 {
        let b = self.bounds[next].max(1) as u128;
        let joined = (0..self.len()).any(|o| mask & (1 << o) != 0 && self.connected[o][next]);
        if joined {
            rows.max(b)
        } else {
            rows.saturating_mul(b)
        }
    }

    /// Estimated intermediate sizes after each prefix of `order` — what
    /// the lowering stamps onto the `HashJoin` spine as `est`.
    pub fn order_rows(&self, order: &[usize]) -> Vec<u128> {
        assert_eq!(order.len(), self.len(), "order must cover every root");
        let mut rows = self.bounds[order[0]].max(1) as u128;
        let mut mask = 1u32 << order[0];
        let mut out = vec![rows];
        for &next in &order[1..] {
            rows = self.extend_rows(mask, rows, next);
            mask |= 1 << next;
            out.push(rows);
        }
        out
    }

    /// Cost of evaluating the roots in `order`: each step charges its two
    /// input sizes plus the intermediate it produces. Lower is better.
    pub fn order_cost(&self, order: &[usize]) -> u128 {
        assert_eq!(order.len(), self.len(), "order must cover every root");
        let mut rows = self.bounds[order[0]].max(1) as u128;
        let mut cost = rows;
        let mut mask = 1u32 << order[0];
        for &next in &order[1..] {
            let b = self.bounds[next].max(1) as u128;
            let out = self.extend_rows(mask, rows, next);
            cost = cost
                .saturating_add(rows)
                .saturating_add(b)
                .saturating_add(out);
            rows = out;
            mask |= 1 << next;
        }
        cost
    }

    /// The chosen evaluation order: exhaustive subset DP up to
    /// [`DP_LIMIT`] roots, greedy beyond. Ties break towards declaration
    /// order, so equal-cost inputs reproduce the left-to-right default.
    pub fn plan(&self) -> Vec<usize> {
        if self.len() <= DP_LIMIT {
            self.plan_dp()
        } else {
            self.plan_greedy()
        }
    }

    /// Bottom-up dynamic programming over root subsets: for every subset
    /// keep the cheapest (cost, order) found, extending each by every
    /// absent root. Equal costs prefer the lexicographically smaller
    /// order — declaration order wins ties deterministically.
    fn plan_dp(&self) -> Vec<usize> {
        let n = self.len();
        let full = (1u32 << n) - 1;
        // Per mask: best (cost, rows, order).
        let mut dp: Vec<Option<(u128, u128, Vec<usize>)>> = vec![None; (full + 1) as usize];
        for r in 0..n {
            let rows = self.bounds[r].max(1) as u128;
            dp[1 << r] = Some((rows, rows, vec![r]));
        }
        for mask in 1..=full {
            let Some((cost, rows, order)) = dp[mask as usize].clone() else {
                continue;
            };
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let b = self.bounds[next].max(1) as u128;
                let out = self.extend_rows(mask, rows, next);
                let ncost = cost
                    .saturating_add(rows)
                    .saturating_add(b)
                    .saturating_add(out);
                let nmask = (mask | (1 << next)) as usize;
                let mut norder = order.clone();
                norder.push(next);
                let better = match &dp[nmask] {
                    None => true,
                    Some((c, _, o)) => ncost < *c || (ncost == *c && norder < *o),
                };
                if better {
                    dp[nmask] = Some((ncost, out, norder));
                }
            }
        }
        dp[full as usize]
            .take()
            .map(|(_, _, order)| order)
            .expect("full subset is always reachable")
    }

    /// Greedy fallback for wide bodies: start at the smallest bound, then
    /// repeatedly take the smallest-bound root join-connected to the prefix
    /// (global minimum when none is) — `gql_infer::plan_root_order`
    /// restated over the join graph.
    pub fn plan_greedy(&self) -> Vec<usize> {
        let n = self.len();
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        while order.len() < n {
            let joined = |ri: usize| order.iter().any(|&o: &usize| self.connected[o][ri]);
            let pick = (0..n)
                .filter(|&ri| !used[ri])
                .filter(|&ri| order.is_empty() || joined(ri))
                .min_by_key(|&ri| (self.bounds[ri], ri))
                .or_else(|| {
                    (0..n)
                        .filter(|&ri| !used[ri])
                        .min_by_key(|&ri| (self.bounds[ri], ri))
                })
                .expect("some root is always unused");
            used[pick] = true;
            order.push(pick);
        }
        order
    }
}

/// Plan the root order for one rule: the DP/greedy enumerator over its
/// join graph. `None` when the rule has nothing to reorder.
pub fn plan_rule_order(rule: &Rule, bounds: &[u64]) -> Option<Vec<usize>> {
    JoinGraph::from_rule(rule, bounds).map(|g| g.plan())
}

/// Owner root of every extract-graph node (by subtree walk), `usize::MAX`
/// for unreachable nodes — shared by the join graph and the lowering.
pub fn root_owners(rule: &Rule) -> Vec<usize> {
    let g = &rule.extract;
    let mut owner = vec![usize::MAX; g.nodes.len()];
    for (ri, &root) in g.roots.iter().enumerate() {
        let mut stack = vec![root];
        while let Some(q) = stack.pop() {
            if owner[q.index()] != usize::MAX {
                continue;
            }
            owner[q.index()] = ri;
            stack.extend(g.node(q).children.iter().map(|e| e.target));
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_xmlgl::dsl;

    fn graph(bounds: &[u64], joins: &[(usize, usize)]) -> JoinGraph {
        let n = bounds.len();
        let mut connected = vec![vec![false; n]; n];
        for &(a, b) in joins {
            connected[a][b] = true;
            connected[b][a] = true;
        }
        JoinGraph {
            bounds: bounds.to_vec(),
            connected,
        }
    }

    #[test]
    fn dp_defers_the_expensive_root() {
        // Roots 0 and 2 joined, 1 isolated. The equi-join with the 50-row
        // root caps at 50 rows wherever it happens, so the optimum crosses
        // the two small roots first (2·4 = 8 rows) and joins 0 last.
        let g = graph(&[50, 4, 2], &[(0, 2)]);
        let order = g.plan();
        assert_eq!(order, vec![2, 1, 0]);
        // And DP's choice is at least as cheap as every alternative.
        let best = g.order_cost(&order);
        for perm in [
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ] {
            assert!(best <= g.order_cost(&perm), "{perm:?} beat the DP choice");
        }
    }

    #[test]
    fn equal_bounds_keep_declaration_order() {
        let g = graph(&[3, 3, 3], &[(0, 1), (1, 2)]);
        assert_eq!(g.plan(), vec![0, 1, 2]);
    }

    #[test]
    fn greedy_matches_dp_on_chains() {
        let g = graph(&[9, 1, 5], &[(0, 1), (1, 2)]);
        assert_eq!(g.plan_greedy(), g.plan_dp());
    }

    #[test]
    fn wide_bodies_fall_back_to_greedy() {
        let n = DP_LIMIT + 1;
        let bounds: Vec<u64> = (0..n as u64).map(|i| n as u64 - i).collect();
        let joins: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph(&bounds, &joins);
        assert_eq!(g.plan(), g.plan_greedy());
        assert_eq!(g.plan().len(), n);
    }

    #[test]
    fn from_rule_reads_joins_and_respects_bounds() {
        let p = dsl::parse(
            r#"rule {
                 extract {
                   book { title { text as $a } }
                   article as $m
                   book { title { text as $b } }
                   join $a == $b
                 }
                 construct { out { all $m } }
               }"#,
        )
        .unwrap();
        let g = JoinGraph::from_rule(&p.rules[0], &[5, 1, 2]).unwrap();
        assert!(g.connected[0][2] && g.connected[2][0]);
        assert!(!g.connected[0][1]);
        // The greedy baseline picks 1 first (smallest bound) and pays a
        // cross product; DP sees that joining 2⋈0 first is cheaper.
        assert_eq!(g.plan_greedy(), vec![1, 2, 0]);
        let order = g.plan();
        assert!(g.order_cost(&order) <= g.order_cost(&[1, 2, 0]));
        // Mismatched bounds or single roots plan nothing.
        assert!(JoinGraph::from_rule(&p.rules[0], &[1]).is_none());
        let single =
            dsl::parse("rule { extract { book as $b } construct { out { all $b } } }").unwrap();
        assert!(JoinGraph::from_rule(&single.rules[0], &[3]).is_none());
    }

    #[test]
    fn cost_is_sensitive_to_cross_product_placement() {
        let g = graph(&[10, 10, 2], &[(0, 1)]);
        // Doing the cross product early is strictly worse.
        assert!(g.order_cost(&[2, 0, 1]) > g.order_cost(&[0, 1, 2]));
    }
}
