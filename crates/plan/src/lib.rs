//! # gql-plan — unified logical algebra, cost-based join ordering, plan cache
//!
//! The three query surfaces of the paper (XML-GL, WG-Log, XPath) share one
//! evaluation core but were planned ad hoc: a hardcoded indexed-vs-scan
//! choice plus gql-infer's greedy root-order hint. This crate makes
//! planning a first-class, cacheable artifact:
//!
//! * [`algebra`] — a seven-operator logical algebra (`Scan`, `IndexLookup`,
//!   `Filter`, `HashJoin`, `Fixpoint`, `Construct`, `PathStep`) all three
//!   languages lower to, spans preserved for provenance;
//! * [`lower`] — the per-language lowerings that feed EXPLAIN surfaces and
//!   stamp inference cardinalities onto the operators;
//! * [`join_order`] — the cost model and bottom-up join-order enumerator
//!   (exhaustive subset DP for rule bodies of ≤ 8 roots, greedy beyond)
//!   that generalises `gql_infer::plan_root_order`;
//! * [`cache`] — the engine-resident LRU plan cache keyed by (canonical
//!   query text, document content fingerprint, budget class) so warm
//!   traffic goes parse → execution without re-running analysis.
//!
//! Nothing here can change an answer: orders are validated permutations
//! the matcher re-sorts to declaration order after combining, and any
//! cached entry that fails validation (corruption, key collision) is
//! replanned. The testkit differential oracles enforce this end to end.

pub mod algebra;
pub mod cache;
pub mod join_order;
pub mod lower;

pub use algebra::LogicalPlan;
pub use cache::{CacheStats, CachedPlan, PlanCache, PlanKey, StatsCell, DEFAULT_CAPACITY};
pub use join_order::{plan_rule_order, JoinGraph, DP_LIMIT};
pub use lower::{lower_wglog, lower_xmlgl, lower_xpath};
