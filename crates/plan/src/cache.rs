//! The engine-resident plan cache.
//!
//! Keys combine the three things that can change a plan: the query (stored
//! canonically — the printed DSL/XPath text — so equality is exact and a
//! structural hash is kept only for display), a cheap content fingerprint
//! of the document (`gql_ssdm::shallow_fingerprint`; a changed document
//! changes the summary and therefore the cost facts), and the budget class
//! (different governance regimes may degrade differently, so their plans
//! never alias). Values carry everything the engine needs to skip the
//! analyze/plan phases on a hit: the full inference, the chosen per-rule
//! join orders, and the rendered plan text for provenance.
//!
//! Eviction is LRU over a monotonic use clock. The cache never affects
//! answers — a stale or corrupted entry is caught by
//! [`CachedPlan::is_valid_for`] and triggers a replan (counted in
//! [`CacheStats::replans`]), and even an undetected wrong *order* only
//! changes work, because the matcher re-sorts provenance tuples to
//! declaration order. Fingerprint collisions therefore bound cache
//! effectiveness, not correctness — the same stance the resident index
//! takes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gql_infer::Inference;
use gql_ssdm::index::hash_str;

/// Default number of cached plans per engine.
pub const DEFAULT_CAPACITY: usize = 64;

/// Cache key: (canonical query text, document fingerprint, budget class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanKey {
    /// Canonical query text (printed DSL / XPath source).
    pub query: String,
    /// Structural hash of the canonical text, for display surfaces.
    pub query_hash: u64,
    /// `gql_ssdm::shallow_fingerprint` of the target document.
    pub doc_fingerprint: u64,
    /// `Budget::class()` of the run.
    pub budget_class: &'static str,
}

impl PlanKey {
    pub fn new(canonical_query: &str, doc_fingerprint: u64, budget_class: &'static str) -> PlanKey {
        PlanKey {
            query_hash: hash_str(canonical_query),
            query: canonical_query.to_string(),
            doc_fingerprint,
            budget_class,
        }
    }
}

/// A cached planning outcome: everything needed to go parse → execution.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The inference (diagnostics, cardinality bounds, emptiness facts).
    pub inference: Inference,
    /// Per-rule root evaluation orders (XML-GL; empty for the others).
    /// `None` entries mean "declared order".
    pub orders: Vec<Option<Vec<usize>>>,
    /// Rendered logical plan (multi-line EXPLAIN form), for provenance
    /// surfaces.
    pub plan_text: String,
    /// Single-line plan rendering, for trace notes.
    pub plan_compact: String,
    /// Per-rule extract-root counts at plan time, for validation.
    pub root_counts: Vec<usize>,
    /// Summary path count observed at plan time, so warm runs emit the
    /// same analyze counters as the cold run that built the entry.
    pub summary_paths: u64,
}

impl CachedPlan {
    /// A cached entry is usable only if its orders are well-formed
    /// permutations for the query at hand: one entry per rule, each `Some`
    /// order a permutation of that rule's roots. Anything else — a
    /// corrupted entry, or a key collision against a structurally
    /// different query — fails validation and forces a replan.
    pub fn is_valid_for(&self, root_counts: &[usize]) -> bool {
        if self.root_counts != root_counts || self.orders.len() != root_counts.len() {
            return false;
        }
        self.orders.iter().zip(root_counts).all(|(o, &n)| match o {
            None => true,
            Some(order) => {
                let mut seen = vec![false; n];
                order.len() == n
                    && order
                        .iter()
                        .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
            }
        })
    }

    /// Scramble the entry so [`CachedPlan::is_valid_for`] fails — the
    /// corruption the fault-injection seam applies.
    pub fn corrupt_for_test(&mut self) {
        self.plan_text.push_str(" [corrupted]");
        if self.orders.is_empty() {
            self.orders.push(Some(vec![usize::MAX]));
        } else {
            for o in &mut self.orders {
                *o = Some(vec![usize::MAX]);
            }
        }
    }
}

/// Monotonic counters describing cache behaviour since engine start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Hits whose entry failed validation and were replanned.
    pub replans: u64,
    /// Total probes (`get` calls). Maintained in the same atomic write
    /// section as `hits`/`misses`, so every snapshot satisfies
    /// `lookups == hits + misses` — the invariant the shared-engine
    /// regression tests assert to prove snapshots are never torn.
    pub lookups: u64,
}

impl CacheStats {
    /// The snapshot-consistency invariant: a counter set read mid-update
    /// (a torn read) would violate it; [`StatsCell::snapshot`] never does.
    pub fn is_consistent(&self) -> bool {
        self.lookups == self.hits + self.misses
    }
}

/// Snapshot-consistent shared counters for the plan cache.
///
/// The cache itself lives behind the engine's mutex, so *writers* are
/// already serialized — but `Engine::plan_cache_stats()` was designed
/// single-caller and used to read the counters through that same lock,
/// which both contends with concurrent planners and, if naively converted
/// to independent atomics, lets a reader observe a half-applied update
/// (hits from after a probe, misses from before — a *torn* total). This
/// cell is a sequence lock: writers bump `version` to odd, apply every
/// counter of one logical event, then bump back to even; readers retry
/// until they see the same even version on both sides of the reads. Reads
/// never take the cache mutex, and every returned [`CacheStats`] is a
/// consistent point-in-time snapshot.
#[derive(Debug, Default)]
pub struct StatsCell {
    version: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    replans: AtomicU64,
    lookups: AtomicU64,
}

impl StatsCell {
    /// Apply one logical cache event atomically with respect to readers.
    /// Callers must be serialized (the plan cache is always behind a
    /// mutex); the seqlock only protects readers from tearing.
    fn record(&self, f: impl FnOnce(&StatsCell)) {
        // Odd version = write in progress. SeqCst throughout: the cell is
        // probed a handful of times per query, so the strongest ordering
        // costs nothing and keeps the reader's version/counter/version
        // sandwich valid on every architecture (and under miri).
        let v = self.version.load(Ordering::SeqCst);
        self.version.store(v.wrapping_add(1), Ordering::SeqCst);
        f(self);
        self.version.store(v.wrapping_add(2), Ordering::SeqCst);
    }

    /// A consistent snapshot: retries while a write is in flight. Writers
    /// hold the cache mutex for well under a microsecond per event, so the
    /// retry loop terminates promptly.
    pub fn snapshot(&self) -> CacheStats {
        loop {
            let v1 = self.version.load(Ordering::SeqCst);
            if !v1.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let stats = CacheStats {
                hits: self.hits.load(Ordering::SeqCst),
                misses: self.misses.load(Ordering::SeqCst),
                evictions: self.evictions.load(Ordering::SeqCst),
                replans: self.replans.load(Ordering::SeqCst),
                lookups: self.lookups.load(Ordering::SeqCst),
            };
            if self.version.load(Ordering::SeqCst) == v1 {
                return stats;
            }
            std::hint::spin_loop();
        }
    }
}

/// An LRU map from [`PlanKey`] to [`CachedPlan`].
///
/// Linear scan on probe: the capacity is small (tens of entries) and keys
/// compare by two `u64`s before ever touching the query string, so a scan
/// beats hashing the key for every lookup at this size.
#[derive(Debug)]
pub struct PlanCache {
    entries: Vec<(PlanKey, CachedPlan, u64)>,
    capacity: usize,
    clock: u64,
    /// Shared so `Engine::plan_cache_stats()` can snapshot without taking
    /// the cache mutex (see [`StatsCell`]).
    stats: Arc<StatsCell>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            clock: 0,
            stats: Arc::new(StatsCell::default()),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// The shared stats cell, for readers that must not contend with the
    /// cache mutex (the engine keeps a clone so `plan_cache_stats()` is a
    /// lock-free snapshot).
    pub fn stats_cell(&self) -> Arc<StatsCell> {
        Arc::clone(&self.stats)
    }

    /// Probe the cache. A hit refreshes the entry's LRU stamp and returns a
    /// clone; hit/miss is counted either way.
    pub fn get(&mut self, key: &PlanKey) -> Option<CachedPlan> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.iter_mut().find(|(k, _, _)| k == key) {
            Some((_, plan, stamp)) => {
                *stamp = clock;
                self.stats.record(|s| {
                    s.hits.fetch_add(1, Ordering::SeqCst);
                    s.lookups.fetch_add(1, Ordering::SeqCst);
                });
                Some(plan.clone())
            }
            None => {
                self.stats.record(|s| {
                    s.misses.fetch_add(1, Ordering::SeqCst);
                    s.lookups.fetch_add(1, Ordering::SeqCst);
                });
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least recently used one
    /// when at capacity.
    pub fn insert(&mut self, key: PlanKey, plan: CachedPlan) {
        self.clock += 1;
        if let Some(slot) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            *slot = (key, plan, self.clock);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, stamp))| *stamp)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(lru);
                self.stats.record(|s| {
                    s.evictions.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        self.entries.push((key, plan, self.clock));
    }

    /// Record that a hit entry failed validation and was replanned.
    pub fn note_replan(&mut self) {
        self.stats.record(|s| {
            s.replans.fetch_add(1, Ordering::SeqCst);
        });
    }

    /// Drop the entry for a key (used after a failed validation so the
    /// replanned result can take its slot).
    pub fn remove(&mut self, key: &PlanKey) {
        self.entries.retain(|(k, _, _)| k != key);
    }

    /// Corrupt the cached entry for `key`, if present — the fault-injection
    /// seam's handle. Returns whether an entry was corrupted.
    pub fn corrupt_entry(&mut self, key: &PlanKey) -> bool {
        match self.entries.iter_mut().find(|(k, _, _)| k == key) {
            Some((_, plan, _)) => {
                plan.corrupt_for_test();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(orders: Vec<Option<Vec<usize>>>, root_counts: Vec<usize>) -> CachedPlan {
        CachedPlan {
            inference: Inference::default(),
            orders,
            plan_text: "Construct out\n".into(),
            plan_compact: "Construct(out)".into(),
            root_counts,
            summary_paths: 0,
        }
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut c = PlanCache::new(2);
        let k1 = PlanKey::new("q1", 1, "unlimited");
        let k2 = PlanKey::new("q2", 1, "unlimited");
        let k3 = PlanKey::new("q3", 1, "unlimited");
        assert!(c.get(&k1).is_none());
        c.insert(k1.clone(), plan(vec![], vec![]));
        c.insert(k2.clone(), plan(vec![], vec![]));
        assert!(c.get(&k1).is_some()); // refreshes k1 — k2 is now LRU
        c.insert(k3.clone(), plan(vec![], vec![]));
        assert!(c.get(&k2).is_none(), "k2 should have been evicted");
        assert!(c.get(&k1).is_some());
        assert!(c.get(&k3).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 2, 1));
    }

    #[test]
    fn keys_separate_fingerprint_and_budget_class() {
        let mut c = PlanCache::default();
        c.insert(PlanKey::new("q", 1, "unlimited"), plan(vec![], vec![]));
        assert!(c.get(&PlanKey::new("q", 2, "unlimited")).is_none());
        assert!(c.get(&PlanKey::new("q", 1, "timed")).is_none());
        assert!(c.get(&PlanKey::new("q", 1, "unlimited")).is_some());
        assert_eq!(PlanKey::new("q", 1, "unlimited").query_hash, hash_str("q"));
    }

    #[test]
    fn validation_catches_corruption_and_shape_mismatches() {
        let good = plan(vec![Some(vec![1, 0]), None], vec![2, 1]);
        assert!(good.is_valid_for(&[2, 1]));
        assert!(!good.is_valid_for(&[2, 2]), "root counts must match");
        assert!(!good.is_valid_for(&[2]), "rule count must match");
        let mut bad = good.clone();
        bad.corrupt_for_test();
        assert!(!bad.is_valid_for(&[2, 1]));
        assert!(bad.plan_text.contains("[corrupted]"));
        // Non-permutations are invalid even with the right length.
        let dup = plan(vec![Some(vec![0, 0])], vec![2]);
        assert!(!dup.is_valid_for(&[2]));
        // An entry with no orders at all is corrupted into invalidity too.
        let mut empty = plan(vec![], vec![]);
        empty.corrupt_for_test();
        assert!(!empty.is_valid_for(&[]));
    }

    #[test]
    fn corrupt_entry_reaches_the_stored_plan() {
        let mut c = PlanCache::default();
        let k = PlanKey::new("q", 1, "unlimited");
        assert!(!c.corrupt_entry(&k));
        c.insert(k.clone(), plan(vec![Some(vec![0, 1])], vec![2]));
        assert!(c.corrupt_entry(&k));
        let fetched = c.get(&k).unwrap();
        assert!(!fetched.is_valid_for(&[2]));
        c.note_replan();
        c.remove(&k);
        assert!(c.is_empty());
        assert_eq!(c.stats().replans, 1);
    }

    #[test]
    fn lookups_track_hits_plus_misses() {
        let mut c = PlanCache::default();
        let k = PlanKey::new("q", 1, "unlimited");
        assert!(c.get(&k).is_none());
        c.insert(k.clone(), plan(vec![], vec![]));
        assert!(c.get(&k).is_some());
        assert!(c.get(&k).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.lookups), (2, 1, 3));
        assert!(s.is_consistent());
    }

    /// Regression for the shared-use fix: concurrent readers snapshotting
    /// while writers probe must never observe a torn counter set
    /// (`lookups != hits + misses`). Before the seqlock, independent
    /// atomics (or a racy read through the mutex'd struct) could tear.
    #[test]
    fn concurrent_snapshots_are_never_torn() {
        use std::sync::Mutex;

        // Miri executes this loop orders of magnitude slower; keep it
        // meaningful but bounded there.
        let iters: u64 = if cfg!(miri) { 200 } else { 20_000 };
        let cache = Arc::new(Mutex::new(PlanCache::new(4)));
        let cell = cache.lock().unwrap().stats_cell();
        let writer = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for i in 0..iters {
                    let k = PlanKey::new("q", i % 8, "unlimited");
                    let mut c = cache.lock().unwrap();
                    if c.get(&k).is_none() {
                        c.insert(k, plan(vec![], vec![]));
                    }
                }
            })
        };
        let mut last = CacheStats::default();
        while !writer.is_finished() {
            let s = cell.snapshot();
            assert!(
                s.is_consistent(),
                "torn snapshot: hits={} misses={} lookups={}",
                s.hits,
                s.misses,
                s.lookups
            );
            assert!(s.lookups >= last.lookups, "counters must be monotonic");
            last = s;
        }
        writer.join().unwrap();
        let s = cell.snapshot();
        assert!(s.is_consistent());
        assert_eq!(s.lookups, iters);
    }
}
