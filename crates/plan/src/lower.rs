//! Lowering the three query surfaces into the logical algebra.
//!
//! The lowered tree is the provenance artifact behind every EXPLAIN
//! surface: it names the access path per leaf (posting probe vs arena
//! scan), the join spine in the *chosen* evaluation order with estimated
//! intermediates, and the construct/fixpoint shape on top. Execution stays
//! with the interpreters; only the XML-GL join order in the `HashJoin`
//! spine is prescriptive (the engine hands it to the matcher).

use gql_infer::Inference;
use gql_ssdm::Span;
use gql_xmlgl::ast::{NameTest, QNodeId, QNodeKind};
use gql_xpath::ast::{Expr, LocationPath, NodeTest};

use crate::algebra::LogicalPlan;
use crate::join_order::{root_owners, JoinGraph};

/// Lower an XML-GL program. `orders` gives the chosen per-rule root order
/// (`None` = declared); bounds and cardinalities come from `inference`.
pub fn lower_xmlgl(
    program: &gql_xmlgl::ast::Program,
    inference: &Inference,
    orders: &[Option<Vec<usize>>],
) -> LogicalPlan {
    let mut rules = Vec::with_capacity(program.rules.len());
    for (ri, rule) in program.rules.iter().enumerate() {
        rules.push(lower_xmlgl_rule(
            rule,
            ri,
            inference,
            orders.get(ri).and_then(Option::as_ref),
        ));
    }
    match rules.len() {
        1 => rules.pop().expect("one rule"),
        _ => LogicalPlan::Construct {
            shape: "result".into(),
            inputs: rules,
            span: Span::none(),
        },
    }
}

fn lower_xmlgl_rule(
    rule: &gql_xmlgl::ast::Rule,
    ri: usize,
    inference: &Inference,
    order: Option<&Vec<usize>>,
) -> LogicalPlan {
    let g = &rule.extract;
    let bounds = inference.root_bounds.get(ri);
    let root_plans: Vec<LogicalPlan> = g
        .roots
        .iter()
        .enumerate()
        .map(|(i, &root)| {
            let est = bounds.and_then(|b| b.get(i)).copied().unwrap_or(u64::MAX);
            lower_qnode(g, root, est)
        })
        .collect();

    let order: Vec<usize> = match order {
        Some(o) if o.len() == root_plans.len() => o.clone(),
        _ => (0..root_plans.len()).collect(),
    };
    let graph = bounds.and_then(|b| JoinGraph::from_rule(rule, b));
    let rows = graph.as_ref().map(|jg| jg.order_rows(&order));
    let owner = root_owners(rule);

    let mut plans = root_plans;
    let mut spine: Option<LogicalPlan> = None;
    let mut placed: Vec<usize> = Vec::new();
    for (step, &ri_next) in order.iter().enumerate() {
        let next = std::mem::replace(
            &mut plans[ri_next],
            LogicalPlan::Scan {
                test: "∅".into(),
                est: 0,
                span: Span::none(),
            },
        );
        spine = Some(match spine {
            None => next,
            Some(left) => {
                let on = join_condition(g, &owner, &placed, ri_next);
                let est = rows
                    .as_ref()
                    .and_then(|r| r.get(step))
                    .map(|&r| u64::try_from(r).unwrap_or(u64::MAX))
                    .unwrap_or(u64::MAX);
                LogicalPlan::HashJoin {
                    left: Box::new(left),
                    right: Box::new(next),
                    on,
                    est,
                    span: rule.span,
                }
            }
        });
        placed.push(ri_next);
    }

    let shape = rule
        .construct
        .roots
        .iter()
        .map(|&r| match &rule.construct.node(r).kind {
            gql_xmlgl::ast::CNodeKind::Element(t) => t.clone(),
            other => format!("{other:?}"),
        })
        .collect::<Vec<_>>()
        .join(" ");
    LogicalPlan::Construct {
        shape: if shape.is_empty() {
            "rule".into()
        } else {
            shape
        },
        inputs: spine.into_iter().collect(),
        span: rule.span,
    }
}

/// The join condition connecting root `next` to the already-placed prefix:
/// every `join $a == $b` constraint with one side in each; `cross` when
/// none connects them.
fn join_condition(
    g: &gql_xmlgl::ast::ExtractGraph,
    owner: &[usize],
    placed: &[usize],
    next: usize,
) -> String {
    let mut conds = Vec::new();
    for &(a, b) in &g.joins {
        let (oa, ob) = (owner[a.index()], owner[b.index()]);
        let links = (placed.contains(&oa) && ob == next) || (placed.contains(&ob) && oa == next);
        if links {
            conds.push(format!("{} == {}", var_name(g, a), var_name(g, b)));
        }
    }
    if conds.is_empty() {
        "cross".into()
    } else {
        conds.join(" and ")
    }
}

fn var_name(g: &gql_xmlgl::ast::ExtractGraph, q: QNodeId) -> String {
    match &g.node(q).var {
        Some(v) => format!("${v}"),
        None => format!("q{}", q.0),
    }
}

/// One extract root: access-path leaf, then a `PathStep` per child edge
/// (compact subtree description) and a `Filter` when predicated.
fn lower_qnode(g: &gql_xmlgl::ast::ExtractGraph, q: QNodeId, est: u64) -> LogicalPlan {
    let n = g.node(q);
    let mut plan = match &n.kind {
        // Named elements probe the tag postings; wildcards walk the arena.
        QNodeKind::Element(NameTest::Name(t)) => LogicalPlan::IndexLookup {
            test: t.clone(),
            est,
            span: n.span,
        },
        QNodeKind::Element(NameTest::Wildcard) => LogicalPlan::Scan {
            test: "*".into(),
            est,
            span: n.span,
        },
        QNodeKind::Text => LogicalPlan::Scan {
            test: "text()".into(),
            est,
            span: n.span,
        },
        QNodeKind::Attribute(a) => LogicalPlan::IndexLookup {
            test: format!("@{a}"),
            est,
            span: n.span,
        },
    };
    for edge in &n.children {
        let axis = match (edge.deep, edge.negated) {
            (false, false) => "child",
            (true, false) => "descendant",
            (false, true) => "no-child",
            (true, true) => "no-descendant",
        };
        plan = LogicalPlan::PathStep {
            axis: axis.into(),
            test: subtree_test(g, edge.target),
            input: Some(Box::new(plan)),
            est,
            span: g.node(edge.target).span,
        };
    }
    if !n.predicate.is_trivial() {
        plan = LogicalPlan::Filter {
            pred: format!("{} {}", var_name(g, q), n.predicate),
            input: Box::new(plan),
            span: n.span,
        };
    }
    plan
}

/// Compact description of a pattern subtree for a `PathStep` test:
/// `title/text()`, `vendor{country,name}` …
fn subtree_test(g: &gql_xmlgl::ast::ExtractGraph, q: QNodeId) -> String {
    let n = g.node(q);
    let own = match &n.kind {
        QNodeKind::Element(t) => t.to_string(),
        QNodeKind::Text => "text()".into(),
        QNodeKind::Attribute(a) => format!("@{a}"),
    };
    match n.children.len() {
        0 => own,
        1 => format!("{own}/{}", subtree_test(g, n.children[0].target)),
        _ => {
            let kids: Vec<String> = n
                .children
                .iter()
                .map(|e| subtree_test(g, e.target))
                .collect();
            format!("{own}{{{}}}", kids.join(","))
        }
    }
}

/// Lower a WG-Log program: per-rule join plans inside a `Fixpoint`, with
/// the goal extraction as the outer `Construct`.
pub fn lower_wglog(program: &gql_wglog::rule::Program, inference: &Inference) -> LogicalPlan {
    use gql_wglog::rule::{Color, LabelTest};
    let mut body = Vec::with_capacity(program.rules.len());
    for (ri, rule) in program.rules.iter().enumerate() {
        let query: Vec<_> = rule.query_nodes().collect();
        let mut spine: Option<LogicalPlan> = None;
        let mut placed: Vec<gql_wglog::rule::RNodeId> = Vec::new();
        for &id in &query {
            let n = rule.node(id);
            let est = inference
                .cards
                .bound_for(ri, &format!("${}", n.var))
                .unwrap_or(u64::MAX);
            let mut leaf = LogicalPlan::Scan {
                test: n.test.to_string(),
                est,
                span: n.span,
            };
            if !n.constraints.is_empty() {
                let pred = n
                    .constraints
                    .iter()
                    .map(|c| format!("{} {} \"{}\"", c.attr, c.op.symbol(), c.value))
                    .collect::<Vec<_>>()
                    .join(" and ");
                leaf = LogicalPlan::Filter {
                    pred: format!("${} {pred}", n.var),
                    input: Box::new(leaf),
                    span: n.span,
                };
            }
            spine = Some(match spine {
                None => leaf,
                Some(left) => {
                    // Edges between the new node and the placed prefix.
                    let mut labels = Vec::new();
                    for e in &rule.edges {
                        if e.color != Color::Query || e.negated {
                            continue;
                        }
                        let links = (placed.contains(&e.from) && e.to == id)
                            || (placed.contains(&e.to) && e.from == id);
                        if links {
                            labels.push(match &e.label {
                                LabelTest::Label(l) => l.clone(),
                                LabelTest::Any => "*".into(),
                                LabelTest::Regex(r) => r.to_string(),
                            });
                        }
                    }
                    let on = if labels.is_empty() {
                        "cross".into()
                    } else {
                        labels.join(" and ")
                    };
                    LogicalPlan::HashJoin {
                        left: Box::new(left),
                        right: Box::new(leaf),
                        on,
                        est: u64::MAX,
                        span: rule.span,
                    }
                }
            });
            placed.push(id);
        }
        let mut inputs: Vec<LogicalPlan> = spine.into_iter().collect();
        // Negated edges restrict the whole embedding set.
        for e in &rule.edges {
            if e.color == Color::Query && e.negated {
                if let Some(inner) = inputs.pop() {
                    inputs.push(LogicalPlan::Filter {
                        pred: format!(
                            "no ${} -{}-> ${}",
                            rule.node(e.from).var,
                            e.label,
                            rule.node(e.to).var
                        ),
                        input: Box::new(inner),
                        span: rule.span,
                    });
                }
            }
        }
        let shape = rule.head_label().unwrap_or_else(|| "rule".into());
        body.push(LogicalPlan::Construct {
            shape,
            inputs,
            span: rule.span,
        });
    }
    LogicalPlan::Construct {
        shape: match &program.goal {
            Some(g) => format!("goal {g}"),
            None => "goal".into(),
        },
        inputs: vec![LogicalPlan::Fixpoint {
            body,
            span: Span::none(),
        }],
        span: Span::none(),
    }
}

/// Lower an XPath expression: a `PathStep` chain per location path (with
/// `Filter` for predicates), `Construct` around unions and value
/// expressions.
pub fn lower_xpath(expr: &Expr, inference: &Inference) -> LogicalPlan {
    match expr {
        Expr::Path(p) => LogicalPlan::Construct {
            shape: "node-set".into(),
            inputs: vec![lower_path(p, inference)],
            span: Span::none(),
        },
        Expr::Union(a, b) => LogicalPlan::Construct {
            shape: "union".into(),
            inputs: vec![lower_xpath(a, inference), lower_xpath(b, inference)],
            span: Span::none(),
        },
        Expr::FilterPath(inner, steps) => {
            let mut plan = lower_xpath(inner, inference);
            for s in steps {
                plan = step_plan(s, Some(Box::new(plan)), u64::MAX);
            }
            LogicalPlan::Construct {
                shape: "node-set".into(),
                inputs: vec![plan],
                span: Span::none(),
            }
        }
        other => LogicalPlan::Construct {
            shape: format!("value ({})", kind_name(other)),
            inputs: Vec::new(),
            span: Span::none(),
        },
    }
}

fn kind_name(e: &Expr) -> &'static str {
    match e {
        Expr::Path(_) => "path",
        Expr::Literal(_) => "literal",
        Expr::Number(_) => "number",
        Expr::Binary(..) => "binary",
        Expr::Neg(_) => "neg",
        Expr::Union(..) => "union",
        Expr::Call(..) => "call",
        Expr::FilterPath(..) => "filter-path",
    }
}

fn lower_path(p: &LocationPath, inference: &Inference) -> LogicalPlan {
    let mut plan: Option<Box<LogicalPlan>> = None;
    for (i, step) in p.steps.iter().enumerate() {
        let label = format!(
            "step {} ({}::{})",
            i + 1,
            step.axis.name(),
            test_name(&step.test)
        );
        let est = inference.cards.bound_for(0, &label).unwrap_or(u64::MAX);
        let mut sp = step_plan(step, plan, est);
        for pred in &step.predicates {
            sp = LogicalPlan::Filter {
                pred: pred.to_string(),
                input: Box::new(sp),
                span: Span::none(),
            };
        }
        plan = Some(Box::new(sp));
    }
    match plan {
        Some(p) => *p,
        None => LogicalPlan::Scan {
            test: "document".into(),
            est: 1,
            span: Span::none(),
        },
    }
}

fn step_plan(
    step: &gql_xpath::ast::Step,
    input: Option<Box<LogicalPlan>>,
    est: u64,
) -> LogicalPlan {
    LogicalPlan::PathStep {
        axis: step.axis.name().into(),
        test: test_name(&step.test),
        input,
        est,
        span: Span::none(),
    }
}

fn test_name(t: &NodeTest) -> String {
    match t {
        NodeTest::Name(n) => n.clone(),
        NodeTest::Any => "*".into(),
        NodeTest::Text => "text()".into(),
        NodeTest::Comment => "comment()".into(),
        NodeTest::Node => "node()".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_infer::{infer_xmlgl, infer_xpath};
    use gql_ssdm::{Document, Summary};

    const GROCER: &str = "<shop><product><vendor>acme</vendor></product>\
                          <vendor><country>holland</country><name>acme</name></vendor>\
                          <vendor><country>france</country><name>beta</name></vendor></shop>";

    #[test]
    fn xmlgl_lowering_names_access_paths_and_join_order() {
        let doc = Document::parse_str(GROCER).unwrap();
        let s = Summary::build(&doc);
        let p = gql_xmlgl::dsl::parse(
            r#"rule {
                 extract {
                   product as $p { vendor { text as $v1 } }
                   vendor as $w { country { text = "holland" } name { text as $v2 } }
                   join $v1 == $v2
                 }
                 construct { out { all $p } }
               }"#,
        )
        .unwrap();
        let inf = infer_xmlgl(&p, &s);
        let plan = lower_xmlgl(&p, &inf, &[Some(vec![1, 0])]);
        let text = plan.render();
        assert!(text.contains("Construct out"), "{text}");
        assert!(text.contains("HashJoin on $v1 == $v2"), "{text}");
        assert!(text.contains("IndexLookup product"), "{text}");
        assert!(text.contains("IndexLookup vendor"), "{text}");
        // The chosen order puts vendor (root 1) on the left of the spine.
        let compact = plan.render_compact();
        let vendor_pos = compact.find("IndexLookup(vendor)").unwrap();
        let product_pos = compact.find("IndexLookup(product)").unwrap();
        assert!(vendor_pos < product_pos, "{compact}");
    }

    #[test]
    fn wglog_lowering_wraps_rules_in_a_fixpoint() {
        let p = gql_wglog::dsl::parse(
            "rule { query { $r: restaurant $m: menu $r -menu-> $m } \
             construct { $l: rest-list $l -member-> $r } } goal rest-list",
        )
        .unwrap();
        let plan = lower_wglog(&p, &Inference::default());
        let text = plan.render();
        assert!(text.contains("Construct goal rest-list"), "{text}");
        assert!(text.contains("Fixpoint"), "{text}");
        assert!(text.contains("HashJoin on menu"), "{text}");
        assert!(text.contains("Scan restaurant"), "{text}");
    }

    #[test]
    fn xpath_lowering_chains_steps_with_estimates() {
        let doc = Document::parse_str(GROCER).unwrap();
        let s = Summary::build(&doc);
        let expr = gql_xpath::parse("/shop/vendor[country]/name").unwrap();
        let inf = infer_xpath(&expr, &s);
        let plan = lower_xpath(&expr, &inf);
        let text = plan.render();
        assert!(text.contains("Construct node-set"), "{text}");
        assert!(text.contains("PathStep child::vendor"), "{text}");
        assert!(text.contains("Filter"), "{text}");
        // Step estimates come from the inference: two vendors.
        assert!(text.contains("PathStep child::name"), "{text}");
    }
}
