//! XML-GL analysis passes.
//!
//! Well-formedness and safety live in `gql_xmlgl::check` (the front end
//! runs them too); this module adds the lint-grade passes: connectivity,
//! schema conformance, contradictory predicates, unused variables and the
//! statistics-driven cost pass.

use std::collections::HashSet;

use gql_core::algebra::Plan;
use gql_core::translate::extract_to_plan;
use gql_ssdm::{CmpOp, Code, Diagnostic, Report};
use gql_xmlgl::ast::{CNodeKind, CValue, NameTest, Program, QNodeId, QNodeKind, Rule};
use gql_xmlgl::check::rule_label;
use gql_xmlgl::schema::GlSchema;

use crate::Context;

/// Run every XML-GL pass applicable under `ctx`.
pub fn analyze(program: &Program, ctx: &Context) -> Report {
    let mut report = Report::new();
    report.extend(gql_xmlgl::check::diagnostics(program));
    for (i, rule) in program.rules.iter().enumerate() {
        let label = rule_label(rule, i);
        let mut ds = Vec::new();
        connectivity(rule, &mut ds);
        if let Some(schema) = &ctx.gl_schema {
            schema_conformance(rule, schema, &mut ds);
        }
        contradictions(rule, &mut ds);
        unused_variables(rule, &mut ds);
        if let Some(stats) = &ctx.stats {
            cost(rule, stats, &mut ds);
        }
        for mut d in ds {
            if d.span.is_none() {
                d.span = rule.span;
            }
            report.push(d.with_rule(label.clone()));
        }
    }
    // Summary inference (GQL014): abstract interpretation against the
    // inferred DataGuide; its diagnostics already carry spans and rules.
    if let Some(summary) = &ctx.summary {
        report.extend(gql_infer::infer_xmlgl(program, summary).report);
    }
    report
}

/// GQL005: an extract graph whose nodes fall into several connected
/// components multiplies those components into a cross product.
/// Containment edges (negated or not) and joins both connect.
fn connectivity(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let g = &rule.extract;
    let n = g.nodes.len();
    if n == 0 {
        return; // already an Error from the well-formedness pass
    }
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(comp: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while comp[root] != root {
            root = comp[root];
        }
        let mut cur = i;
        while comp[cur] != root {
            let next = comp[cur];
            comp[cur] = root;
            cur = next;
        }
        root
    }
    let union = |comp: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(comp, a), find(comp, b));
        comp[ra] = rb;
    };
    for id in g.ids() {
        for e in &g.node(id).children {
            if e.target.index() < n {
                union(&mut comp, id.index(), e.target.index());
            }
        }
    }
    for &(a, b) in &g.joins {
        if a.index() < n && b.index() < n {
            union(&mut comp, a.index(), b.index());
        }
    }
    let roots: HashSet<usize> = (0..n).map(|i| find(&mut comp, i)).collect();
    if roots.len() > 1 {
        // Anchor the warning on a node of the second component.
        let first = find(&mut comp, 0);
        let witness = (0..n).find(|&i| find(&mut comp, i) != first).unwrap_or(0);
        out.push(
            Diagnostic::new(
                Code::DisconnectedQuery,
                format!(
                    "extract graph has {} disconnected components; unrelated parts \
                     multiply into a cross product",
                    roots.len()
                ),
            )
            .with_span(g.node(QNodeId(witness as u32)).span)
            .with_help(
                "connect the components with a containment edge or a join, \
                 or split the rule if the product is intended",
            ),
        );
    }
}

/// Element names a schema element can reach through containment (for
/// validating deep edges).
fn reachable(schema: &GlSchema, from: &str) -> HashSet<String> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut stack = vec![from.to_string()];
    while let Some(tag) = stack.pop() {
        if let Some(decl) = schema.element(&tag) {
            for c in &decl.children {
                if seen.insert(c.child.clone()) {
                    stack.push(c.child.clone());
                }
            }
        }
    }
    seen
}

/// GQL006: extract edges, text circles and attribute circles that the
/// schema cannot satisfy — the query part can never match a valid document.
fn schema_conformance(rule: &Rule, schema: &GlSchema, out: &mut Vec<Diagnostic>) {
    let g = &rule.extract;
    let warn = |msg: String, span: gql_ssdm::Span| {
        Diagnostic::new(Code::XmlSchemaMismatch, msg)
            .with_span(span)
            .with_help(
                "against a document valid for this schema the pattern can \
                 never match; fix the tag or update the schema",
            )
    };
    for &r in &g.roots {
        if let QNodeKind::Element(NameTest::Name(tag)) = &g.node(r).kind {
            if schema.element(tag).is_none() {
                out.push(warn(
                    format!("schema declares no element '{tag}'"),
                    g.node(r).span,
                ));
            }
        }
    }
    for id in g.ids() {
        let parent = g.node(id);
        let QNodeKind::Element(NameTest::Name(ptag)) = &parent.kind else {
            continue;
        };
        let Some(decl) = schema.element(ptag) else {
            continue; // the root loop (or a parent edge) already warned
        };
        for e in &parent.children {
            if e.target.index() >= g.nodes.len() {
                continue;
            }
            let child = g.node(e.target);
            match &child.kind {
                QNodeKind::Element(NameTest::Name(ctag)) => {
                    let ok = if e.deep {
                        reachable(schema, ptag).contains(ctag)
                    } else {
                        decl.children.iter().any(|c| &c.child == ctag)
                    };
                    if !ok {
                        out.push(warn(
                            format!(
                                "schema: element '{ptag}' declares no {} '{ctag}'",
                                if e.deep { "descendant" } else { "child" }
                            ),
                            child.span,
                        ));
                    }
                }
                QNodeKind::Element(NameTest::Wildcard) => {}
                QNodeKind::Text => {
                    if !decl.text {
                        out.push(warn(
                            format!("schema: element '{ptag}' has no text content"),
                            child.span,
                        ));
                    }
                }
                QNodeKind::Attribute(name) => {
                    if !decl.attrs.iter().any(|(a, _)| a == name) {
                        out.push(warn(
                            format!("schema: element '{ptag}' declares no attribute '{name}'"),
                            child.span,
                        ));
                    }
                }
            }
        }
    }
}

/// Whether two singleton predicate clauses on the same value can both hold.
/// Sound but incomplete: only clearly-decidable combinations report.
pub(crate) fn clauses_contradict(a: (CmpOp, &str), b: (CmpOp, &str)) -> bool {
    let ((op1, v1), (op2, v2)) = (a, b);
    // An equality pins the value: evaluate the other side against it.
    if op1 == CmpOp::Eq {
        return !op2.eval(v1, v2);
    }
    if op2 == CmpOp::Eq {
        return !op1.eval(v2, v1);
    }
    // Numeric range emptiness.
    if let (Ok(n1), Ok(n2)) = (v1.parse::<f64>(), v2.parse::<f64>()) {
        let empty = |lo_strict: bool, lo: f64, hi_strict: bool, hi: f64| {
            if lo_strict || hi_strict {
                lo >= hi
            } else {
                lo > hi
            }
        };
        // value < v1-ish AND value > v2-ish.
        match (op1, op2) {
            (CmpOp::Lt, CmpOp::Gt) => return empty(true, n2, true, n1),
            (CmpOp::Lt, CmpOp::Ge) => return empty(false, n2, true, n1),
            (CmpOp::Le, CmpOp::Gt) => return empty(true, n2, false, n1),
            (CmpOp::Le, CmpOp::Ge) => return empty(false, n2, false, n1),
            (CmpOp::Gt, CmpOp::Lt) => return empty(true, n1, true, n2),
            (CmpOp::Gt, CmpOp::Le) => return empty(false, n1, true, n2),
            (CmpOp::Ge, CmpOp::Lt) => return empty(true, n1, false, n2),
            (CmpOp::Ge, CmpOp::Le) => return empty(false, n1, false, n2),
            _ => {}
        }
    }
    // Two prefixes can only coexist when one extends the other.
    if op1 == CmpOp::StartsWith && op2 == CmpOp::StartsWith {
        return !(v1.starts_with(v2) || v2.starts_with(v1));
    }
    false
}

/// GQL007: a node predicate whose conjuncts can never hold together always
/// matches nothing.
fn contradictions(rule: &Rule, out: &mut Vec<Diagnostic>) {
    for id in rule.extract.ids() {
        let node = rule.extract.node(id);
        let singletons: Vec<(CmpOp, &str)> = node
            .predicate
            .clauses
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| (c[0].0, c[0].1.as_str()))
            .collect();
        'outer: for (i, &a) in singletons.iter().enumerate() {
            for &b in &singletons[i + 1..] {
                if clauses_contradict(a, b) {
                    let who = node
                        .var
                        .as_ref()
                        .map(|v| format!("${v}"))
                        .unwrap_or_else(|| "this node".to_string());
                    out.push(
                        Diagnostic::new(
                            Code::ContradictoryPredicate,
                            format!(
                                "predicate on {who} can never hold: `{} \"{}\"` \
                                 contradicts `{} \"{}\"`",
                                a.0.symbol(),
                                a.1,
                                b.0.symbol(),
                                b.1
                            ),
                        )
                        .with_span(node.span)
                        .with_help("the rule matches nothing; drop or relax one comparison"),
                    );
                    break 'outer; // one report per node is enough
                }
            }
        }
    }
}

/// Query nodes the construct side references.
fn construct_references(rule: &Rule) -> HashSet<QNodeId> {
    let mut used = HashSet::new();
    for id in rule.construct.ids() {
        match &rule.construct.node(id).kind {
            CNodeKind::Attribute {
                value: CValue::Binding(src),
                ..
            } => {
                used.insert(*src);
            }
            CNodeKind::Copy { source, .. } => {
                used.insert(*source);
            }
            CNodeKind::All { source, order } => {
                used.insert(*source);
                if let Some(spec) = order {
                    used.insert(spec.key);
                }
            }
            CNodeKind::GroupBy { source, key, .. } => {
                used.insert(*source);
                used.insert(*key);
            }
            CNodeKind::Aggregate { source, .. } => {
                used.insert(*source);
            }
            CNodeKind::Element(_) | CNodeKind::Text(_) | CNodeKind::Attribute { .. } => {}
        }
    }
    used
}

/// GQL008: a variable bound on the extract side but referenced by neither
/// the construct side nor a join is dead weight.
fn unused_variables(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let used = construct_references(rule);
    let joined: HashSet<QNodeId> = rule
        .extract
        .joins
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect();
    for id in rule.extract.ids() {
        let node = rule.extract.node(id);
        if let Some(v) = &node.var {
            if !used.contains(&id) && !joined.contains(&id) {
                out.push(
                    Diagnostic::new(
                        Code::UnusedVariable,
                        format!("variable ${v} is bound but never used"),
                    )
                    .with_span(node.span)
                    .with_help("drop the `as $var` binding or reference it on the construct side"),
                );
            }
        }
    }
}

fn contains_product(plan: &Plan) -> bool {
    match plan {
        Plan::Product { .. } => true,
        Plan::Scan { .. } => false,
        Plan::Child { input, .. }
        | Plan::Attr { input, .. }
        | Plan::Text { input, .. }
        | Plan::Filter { input, .. }
        | Plan::NotExistsChild { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. } => contains_product(input),
        Plan::HashJoin { left, right, .. } | Plan::NestedLoopJoin { left, right, .. } => {
            contains_product(left) || contains_product(right)
        }
    }
}

/// Intermediate results larger than this multiple of the document flag a
/// cost hint.
const BLOWUP_FACTOR: f64 = 10.0;

/// GQL009: statistics-driven cost estimate of the compiled extract plan.
fn cost(rule: &Rule, stats: &gql_core::stats::DocStats, out: &mut Vec<Diagnostic>) {
    let Ok(plan) = extract_to_plan(rule) else {
        return; // untranslatable extracts (aggregation etc.) get no cost hint
    };
    let estimate = stats.estimate(&plan);
    let doc_size = stats.elements().max(1) as f64;
    let product = contains_product(&plan);
    if product || estimate > doc_size * BLOWUP_FACTOR {
        let detail = if product {
            "the plan multiplies unjoined parts (cross product)"
        } else {
            "the pattern fans out faster than the document bounds it"
        };
        out.push(
            Diagnostic::new(
                Code::CostBlowup,
                format!(
                    "estimated ~{estimate:.0} intermediate rows over a document of \
                     {doc_size:.0} elements: {detail}"
                ),
            )
            .with_help("add a join or a more selective predicate to bound the match"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use gql_ssdm::Severity;

    fn report(src: &str) -> Report {
        Analyzer::new().analyze_xmlgl_src(src)
    }

    #[test]
    fn disconnected_extract_warns() {
        let r = report(
            "rule {\n  extract {\n    restaurant as $r\n    hotel as $h\n  }\n  construct { out { all $r  all $h } }\n}",
        );
        let d = r
            .iter()
            .find(|d| d.code == Code::DisconnectedQuery)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.line, 4); // the hotel component
        assert!(d.message.contains("2 disconnected components"));
    }

    #[test]
    fn joins_connect_components() {
        let r = report(
            "rule { extract { restaurant { name as $a }  hotel { name as $b }  join $a == $b } \
             construct { out { all $a } } }",
        );
        assert!(
            !r.iter().any(|d| d.code == Code::DisconnectedQuery),
            "{}",
            r.render()
        );
    }

    #[test]
    fn contradiction_detected() {
        let r = report(
            "rule {\n  extract {\n    book { price as $p = \"10\" and > \"20\" }\n  }\n  construct { out { all $p } }\n}",
        );
        let d = r
            .iter()
            .find(|d| d.code == Code::ContradictoryPredicate)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("can never hold"), "{}", d.message);
    }

    #[test]
    fn satisfiable_ranges_do_not_warn() {
        let r = report(
            "rule { extract { book { price as $p > \"10\" and < \"20\" } } \
             construct { out { all $p } } }",
        );
        assert!(
            !r.iter().any(|d| d.code == Code::ContradictoryPredicate),
            "{}",
            r.render()
        );
    }

    #[test]
    fn clause_logic() {
        use CmpOp::*;
        assert!(clauses_contradict((Eq, "a"), (Eq, "b")));
        assert!(!clauses_contradict((Eq, "a"), (Eq, "a")));
        assert!(clauses_contradict((Eq, "5"), (Gt, "9")));
        assert!(clauses_contradict((Lt, "3"), (Gt, "7")));
        assert!(!clauses_contradict((Lt, "7"), (Gt, "3")));
        assert!(clauses_contradict((Le, "3"), (Ge, "4")));
        assert!(!clauses_contradict((Le, "3"), (Ge, "3")));
        assert!(clauses_contradict((StartsWith, "ab"), (StartsWith, "cd")));
        assert!(!clauses_contradict((StartsWith, "ab"), (StartsWith, "abc")));
        assert!(clauses_contradict((Eq, "abc"), (Contains, "xyz")));
        assert!(!clauses_contradict((Ne, "a"), (Ne, "b")));
    }

    #[test]
    fn unused_variable_is_a_hint() {
        let r = report(
            "rule {\n  extract {\n    restaurant as $r {\n      name as $n\n    }\n  }\n  construct { out { all $r } }\n}",
        );
        let d = r.iter().find(|d| d.code == Code::UnusedVariable).unwrap();
        assert_eq!(d.severity, Severity::Hint);
        assert!(d.message.contains("$n"));
        assert_eq!(d.span.line, 4);
        assert_eq!(d.rule.as_deref(), Some("rule 1 (restaurant)"));
    }

    #[test]
    fn schema_mismatch_warns() {
        let dtd = gql_ssdm::dtd::Dtd::parse(
            "<!ELEMENT guide (restaurant*)>\n\
             <!ELEMENT restaurant (name, menu*)>\n\
             <!ELEMENT name (#PCDATA)>\n\
             <!ELEMENT menu (#PCDATA)>\n\
             <!ATTLIST restaurant stars CDATA #IMPLIED>",
        )
        .unwrap();
        let schema = gql_xmlgl::schema::GlSchema::from_dtd(&dtd);
        let analyzer = Analyzer::new().with_gl_schema(schema);
        // 'review' is not a declared child of restaurant.
        let r = analyzer.analyze_xmlgl_src(
            "rule {\n  extract {\n    restaurant as $r {\n      review as $v\n    }\n  }\n  construct { out { all $r  all $v } }\n}",
        );
        let d = r
            .iter()
            .find(|d| d.code == Code::XmlSchemaMismatch)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("'review'"), "{}", d.message);
        assert_eq!(d.span.line, 4);
        // Deep edges check reachability, and declared patterns stay clean.
        let r = analyzer.analyze_xmlgl_src(
            "rule { extract { guide { deep name as $n } } construct { out { all $n } } }",
        );
        assert!(
            !r.iter().any(|d| d.code == Code::XmlSchemaMismatch),
            "{}",
            r.render()
        );
    }

    #[test]
    fn cost_pass_flags_products() {
        let doc = gql_ssdm::Document::parse_str(
            "<g><a>1</a><a>2</a><a>3</a><b>1</b><b>2</b><b>3</b></g>",
        )
        .unwrap();
        let stats = gql_core::stats::DocStats::collect(&doc);
        let analyzer = Analyzer::new().with_stats(stats);
        let r = analyzer.analyze_xmlgl_src(
            "rule { extract { a as $x  b as $y } construct { out { all $x  all $y } } }",
        );
        let d = r.iter().find(|d| d.code == Code::CostBlowup).unwrap();
        assert_eq!(d.severity, Severity::Hint);
        assert!(d.message.contains("cross product"), "{}", d.message);
        // A selective single-scan query stays quiet.
        let r =
            analyzer.analyze_xmlgl_src("rule { extract { a as $x } construct { out { all $x } } }");
        assert!(!r.iter().any(|d| d.code == Code::CostBlowup));
    }
}
