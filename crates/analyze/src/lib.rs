//! # gql-analyze — static analysis and linting for XML-GL and WG-Log
//!
//! A unified pass-based analyzer over both graphical query languages of the
//! paper. Every finding is a [`Diagnostic`] with a stable code (`GQL001`…),
//! a severity, a source span, the offending rule's label, a message and
//! (usually) a help string; a [`Report`] renders them for humans or as JSON
//! for tooling.
//!
//! The passes:
//!
//! | pass | codes | needs context? |
//! |------|-------|----------------|
//! | syntax                      | GQL000 | no |
//! | well-formedness & safety    | GQL001–GQL004, GQL011 | no |
//! | connectivity                | GQL005 | no |
//! | schema conformance          | GQL006, GQL012, GQL013 | schema |
//! | contradictory predicates    | GQL007 | no |
//! | unused variables            | GQL008 | no |
//! | cost estimation             | GQL009 | document stats |
//! | stratification              | GQL010 | no |
//!
//! Context (a DTD-derived schema, an extracted WG-Log schema, per-document
//! statistics) is optional: passes that need missing context are skipped.
//!
//! ```
//! use gql_analyze::Analyzer;
//!
//! let report = Analyzer::new().analyze_xmlgl_src(
//!     "rule { extract { book as $b { not review } } construct { out { all $b } } }",
//! );
//! assert!(report.is_empty()); // safe: $b is outside the negated subtree
//! ```

pub mod wglog;
pub mod xmlgl;

pub use gql_ssdm::{Code, Diagnostic, Report, Severity, Span};

use gql_core::stats::DocStats;
use gql_wglog::schema::WgSchema;
use gql_xmlgl::schema::GlSchema;

/// Optional context that unlocks the schema-conformance and cost passes.
#[derive(Debug, Default)]
pub struct Context {
    /// XML-GL schema (e.g. built from a DTD) for GQL006.
    pub gl_schema: Option<GlSchema>,
    /// WG-Log schema (declared or extracted from an instance) for
    /// GQL012/GQL013.
    pub wg_schema: Option<WgSchema>,
    /// Per-document statistics for the GQL009 cost pass.
    pub stats: Option<DocStats>,
}

/// Description of one analysis pass, for `--explain`-style tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassInfo {
    pub name: &'static str,
    pub codes: &'static [Code],
    /// Context the pass needs, if any.
    pub needs: Option<&'static str>,
}

/// The registry of passes, in execution order.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        name: "syntax",
        codes: &[Code::Syntax],
        needs: None,
    },
    PassInfo {
        name: "well-formedness",
        codes: &[
            Code::XmlGlIllFormed,
            Code::DuplicateVariable,
            Code::WgLogIllFormed,
        ],
        needs: None,
    },
    PassInfo {
        name: "safety",
        codes: &[Code::NegationScope, Code::UnsafeConstruct],
        needs: None,
    },
    PassInfo {
        name: "connectivity",
        codes: &[Code::DisconnectedQuery],
        needs: None,
    },
    PassInfo {
        name: "schema-conformance",
        codes: &[
            Code::XmlSchemaMismatch,
            Code::WgSchemaMismatch,
            Code::GoalNeverConstructed,
        ],
        needs: Some("schema"),
    },
    PassInfo {
        name: "predicates",
        codes: &[Code::ContradictoryPredicate],
        needs: None,
    },
    PassInfo {
        name: "unused",
        codes: &[Code::UnusedVariable],
        needs: None,
    },
    PassInfo {
        name: "cost",
        codes: &[Code::CostBlowup],
        needs: Some("document statistics"),
    },
    PassInfo {
        name: "stratification",
        codes: &[Code::NotStratifiable],
        needs: None,
    },
];

/// The analyzer: run every applicable pass over a program and collect the
/// diagnostics into a [`Report`].
#[derive(Debug, Default)]
pub struct Analyzer {
    ctx: Context,
}

impl Analyzer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Provide an XML-GL schema (unlocks GQL006).
    pub fn with_gl_schema(mut self, schema: GlSchema) -> Self {
        self.ctx.gl_schema = Some(schema);
        self
    }

    /// Provide a WG-Log schema (unlocks GQL012/GQL013).
    pub fn with_wg_schema(mut self, schema: WgSchema) -> Self {
        self.ctx.wg_schema = Some(schema);
        self
    }

    /// Provide document statistics (unlocks GQL009).
    pub fn with_stats(mut self, stats: DocStats) -> Self {
        self.ctx.stats = Some(stats);
        self
    }

    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Analyze a parsed XML-GL program.
    pub fn analyze_xmlgl(&self, program: &gql_xmlgl::ast::Program) -> Report {
        xmlgl::analyze(program, &self.ctx)
    }

    /// Analyze a parsed WG-Log program.
    pub fn analyze_wglog(&self, program: &gql_wglog::Program) -> Report {
        wglog::analyze(program, &self.ctx)
    }

    /// Parse and analyze XML-GL DSL source. Syntax errors become a GQL000
    /// diagnostic instead of an `Err`, so tooling has one output shape.
    pub fn analyze_xmlgl_src(&self, src: &str) -> Report {
        match gql_xmlgl::dsl::parse_unchecked(src) {
            Ok(program) => self.analyze_xmlgl(&program),
            Err(e) => Report::from(vec![syntax_diag(&e.to_string(), syntax_span_xmlgl(&e))]),
        }
    }

    /// Parse and analyze WG-Log DSL source (syntax errors become GQL000).
    pub fn analyze_wglog_src(&self, src: &str) -> Report {
        match gql_wglog::dsl::parse_unchecked(src) {
            Ok(program) => self.analyze_wglog(&program),
            Err(e) => Report::from(vec![syntax_diag(&e.to_string(), syntax_span_wglog(&e))]),
        }
    }
}

fn syntax_diag(msg: &str, span: Span) -> Diagnostic {
    Diagnostic::new(Code::Syntax, msg).with_span(span)
}

fn syntax_span_xmlgl(e: &gql_xmlgl::XmlGlError) -> Span {
    match e {
        gql_xmlgl::XmlGlError::Syntax { line, col, .. } => Span::new(*line, *col),
        _ => Span::none(),
    }
}

fn syntax_span_wglog(e: &gql_wglog::WgLogError) -> Span {
    match e {
        gql_wglog::WgLogError::Syntax { line, col, .. } => Span::new(*line, *col),
        _ => Span::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_registry_covers_every_code() {
        let mut covered: Vec<&str> = PASSES
            .iter()
            .flat_map(|p| p.codes)
            .map(|c| c.as_str())
            .collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered.len(), Code::all().len());
    }

    #[test]
    fn syntax_errors_are_gql000_with_spans() {
        let r = Analyzer::new().analyze_xmlgl_src("rule {\n  extract {");
        assert_eq!(r.len(), 1);
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, Code::Syntax);
        assert!(d.is_error());
        let r = Analyzer::new().analyze_wglog_src("rule {\n query { $r restaurant } }");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, Code::Syntax);
        assert_eq!(d.span.line, 2);
    }

    #[test]
    fn clean_program_clean_report() {
        let r = Analyzer::new().analyze_xmlgl_src(
            "rule { extract { restaurant as $r { menu } } construct { answer { all $r } } }",
        );
        assert!(r.is_empty(), "{}", r.render());
        let r = Analyzer::new().analyze_wglog_src(
            "rule { query { $r: restaurant  $m: menu  $r -menu-> $m } \
             construct { $l: rest-list  $l -member-> $r } } goal rest-list",
        );
        assert!(r.is_empty(), "{}", r.render());
    }
}
