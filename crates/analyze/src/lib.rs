//! # gql-analyze — static analysis and linting for XML-GL and WG-Log
//!
//! A unified pass-based analyzer over both graphical query languages of the
//! paper. Every finding is a [`Diagnostic`] with a stable code (`GQL001`…),
//! a severity, a source span, the offending rule's label, a message and
//! (usually) a help string; a [`Report`] renders them for humans or as JSON
//! for tooling.
//!
//! The passes:
//!
//! | pass | codes | needs context? |
//! |------|-------|----------------|
//! | syntax                      | GQL000 | no |
//! | well-formedness & safety    | GQL001–GQL004, GQL011 | no |
//! | connectivity                | GQL005 | no |
//! | schema conformance          | GQL006, GQL012, GQL013 | schema |
//! | contradictory predicates    | GQL007 | no |
//! | unused variables            | GQL008 | no |
//! | cost estimation             | GQL009 | document stats |
//! | stratification              | GQL010 | no |
//! | summary inference           | GQL014–GQL016 | document summary |
//!
//! Context (a DTD-derived schema, an extracted WG-Log schema, per-document
//! statistics, an inferred structural summary) is optional: passes that
//! need missing context are skipped.
//!
//! ```
//! use gql_analyze::Analyzer;
//!
//! let report = Analyzer::new().analyze_xmlgl_src(
//!     "rule { extract { book as $b { not review } } construct { out { all $b } } }",
//! );
//! assert!(report.is_empty()); // safe: $b is outside the negated subtree
//! ```

pub mod wglog;
pub mod xmlgl;

pub use gql_infer::{CardEntry, CardinalityMap, Inference};
pub use gql_ssdm::{Code, Diagnostic, Report, Severity, Span};

use gql_core::stats::DocStats;
use gql_ssdm::Summary;
use gql_wglog::schema::WgSchema;
use gql_xmlgl::schema::GlSchema;

/// Optional context that unlocks the schema-conformance and cost passes.
#[derive(Debug, Default)]
pub struct Context {
    /// XML-GL schema (e.g. built from a DTD) for GQL006.
    pub gl_schema: Option<GlSchema>,
    /// WG-Log schema (declared or extracted from an instance) for
    /// GQL012/GQL013.
    pub wg_schema: Option<WgSchema>,
    /// Per-document statistics for the GQL009 cost pass.
    pub stats: Option<DocStats>,
    /// Inferred structural summary (DataGuide with counts) for the
    /// summary-inference pass (GQL014–GQL016) and cardinality bounds.
    pub summary: Option<Summary>,
}

/// Description of one analysis pass, for `--explain`-style tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassInfo {
    pub name: &'static str,
    pub codes: &'static [Code],
    /// Context the pass needs, if any.
    pub needs: Option<&'static str>,
}

/// The registry of passes, in execution order.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        name: "syntax",
        codes: &[Code::Syntax],
        needs: None,
    },
    PassInfo {
        name: "well-formedness",
        codes: &[
            Code::XmlGlIllFormed,
            Code::DuplicateVariable,
            Code::WgLogIllFormed,
        ],
        needs: None,
    },
    PassInfo {
        name: "safety",
        codes: &[Code::NegationScope, Code::UnsafeConstruct],
        needs: None,
    },
    PassInfo {
        name: "connectivity",
        codes: &[Code::DisconnectedQuery],
        needs: None,
    },
    PassInfo {
        name: "schema-conformance",
        codes: &[
            Code::XmlSchemaMismatch,
            Code::WgSchemaMismatch,
            Code::GoalNeverConstructed,
        ],
        needs: Some("schema"),
    },
    PassInfo {
        name: "predicates",
        codes: &[Code::ContradictoryPredicate],
        needs: None,
    },
    PassInfo {
        name: "unused",
        codes: &[Code::UnusedVariable],
        needs: None,
    },
    PassInfo {
        name: "cost",
        codes: &[Code::CostBlowup],
        needs: Some("document statistics"),
    },
    PassInfo {
        name: "stratification",
        codes: &[Code::NotStratifiable],
        needs: None,
    },
    PassInfo {
        name: "summary-inference",
        codes: &[
            Code::EmptyUnderSummary,
            Code::DeadRule,
            Code::PathNeverMatches,
        ],
        needs: Some("document summary"),
    },
];

/// The analyzer: run every applicable pass over a program and collect the
/// diagnostics into a [`Report`].
#[derive(Debug, Default)]
pub struct Analyzer {
    ctx: Context,
}

impl Analyzer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Provide an XML-GL schema (unlocks GQL006).
    pub fn with_gl_schema(mut self, schema: GlSchema) -> Self {
        self.ctx.gl_schema = Some(schema);
        self
    }

    /// Provide a WG-Log schema (unlocks GQL012/GQL013).
    pub fn with_wg_schema(mut self, schema: WgSchema) -> Self {
        self.ctx.wg_schema = Some(schema);
        self
    }

    /// Provide document statistics (unlocks GQL009).
    pub fn with_stats(mut self, stats: DocStats) -> Self {
        self.ctx.stats = Some(stats);
        self
    }

    /// Provide an inferred structural summary (unlocks GQL014–GQL016 and
    /// the cardinality bounds of [`Analyzer::infer_xmlgl`] /
    /// [`Analyzer::infer_wglog`]).
    pub fn with_summary(mut self, summary: Summary) -> Self {
        self.ctx.summary = Some(summary);
        self
    }

    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Full summary inference for an XML-GL program — GQL014 diagnostics
    /// plus per-node cardinality bounds. `None` without a summary in
    /// context.
    pub fn infer_xmlgl(&self, program: &gql_xmlgl::ast::Program) -> Option<Inference> {
        self.ctx
            .summary
            .as_ref()
            .map(|s| gql_infer::infer_xmlgl(program, s))
    }

    /// Full summary inference for a WG-Log program (GQL014/GQL015 and
    /// bounds). `None` without a summary in context.
    pub fn infer_wglog(&self, program: &gql_wglog::Program) -> Option<Inference> {
        self.ctx
            .summary
            .as_ref()
            .map(|s| gql_infer::infer_wglog(program, s))
    }

    /// Full summary inference for a parsed XPath expression (GQL016 and
    /// per-step bounds). `None` without a summary in context.
    pub fn infer_xpath(&self, expr: &gql_xpath::Expr) -> Option<Inference> {
        self.ctx
            .summary
            .as_ref()
            .map(|s| gql_infer::infer_xpath(expr, s))
    }

    /// Analyze a parsed XML-GL program.
    pub fn analyze_xmlgl(&self, program: &gql_xmlgl::ast::Program) -> Report {
        xmlgl::analyze(program, &self.ctx)
    }

    /// Analyze a parsed WG-Log program.
    pub fn analyze_wglog(&self, program: &gql_wglog::Program) -> Report {
        wglog::analyze(program, &self.ctx)
    }

    /// Parse and analyze XML-GL DSL source. Syntax errors become a GQL000
    /// diagnostic instead of an `Err`, so tooling has one output shape.
    pub fn analyze_xmlgl_src(&self, src: &str) -> Report {
        match gql_xmlgl::dsl::parse_unchecked(src) {
            Ok(program) => self.analyze_xmlgl(&program),
            Err(e) => Report::from(vec![syntax_diag(&e.to_string(), syntax_span_xmlgl(&e))]),
        }
    }

    /// Parse and analyze WG-Log DSL source (syntax errors become GQL000).
    pub fn analyze_wglog_src(&self, src: &str) -> Report {
        match gql_wglog::dsl::parse_unchecked(src) {
            Ok(program) => self.analyze_wglog(&program),
            Err(e) => Report::from(vec![syntax_diag(&e.to_string(), syntax_span_wglog(&e))]),
        }
    }

    /// Parse and analyze an XPath expression. Only the syntax (GQL000) and
    /// summary-inference (GQL016) passes apply to XPath; the latter needs a
    /// summary in context.
    pub fn analyze_xpath_src(&self, src: &str) -> Report {
        match gql_xpath::parse(src) {
            Ok(expr) => self
                .infer_xpath(&expr)
                .map(|inf| inf.report)
                .unwrap_or_default(),
            Err(e) => Report::from(vec![syntax_diag(&e.to_string(), syntax_span_xpath(&e))]),
        }
    }
}

fn syntax_diag(msg: &str, span: Span) -> Diagnostic {
    Diagnostic::new(Code::Syntax, msg).with_span(span)
}

fn syntax_span_xmlgl(e: &gql_xmlgl::XmlGlError) -> Span {
    match e {
        gql_xmlgl::XmlGlError::Syntax { line, col, .. } => Span::new(*line, *col),
        _ => Span::none(),
    }
}

fn syntax_span_wglog(e: &gql_wglog::WgLogError) -> Span {
    match e {
        gql_wglog::WgLogError::Syntax { line, col, .. } => Span::new(*line, *col),
        _ => Span::none(),
    }
}

fn syntax_span_xpath(e: &gql_xpath::XPathError) -> Span {
    // XPath expressions are single-line; the error offset is the column.
    match e {
        gql_xpath::XPathError::Lex { offset, .. } | gql_xpath::XPathError::Parse { offset, .. } => {
            Span::new(1, u32::try_from(offset + 1).unwrap_or(u32::MAX))
        }
        _ => Span::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_registry_covers_every_code() {
        let mut covered: Vec<&str> = PASSES
            .iter()
            .flat_map(|p| p.codes)
            .map(|c| c.as_str())
            .collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered.len(), Code::all().len());
    }

    #[test]
    fn syntax_errors_are_gql000_with_spans() {
        let r = Analyzer::new().analyze_xmlgl_src("rule {\n  extract {");
        assert_eq!(r.len(), 1);
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, Code::Syntax);
        assert!(d.is_error());
        let r = Analyzer::new().analyze_wglog_src("rule {\n query { $r restaurant } }");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, Code::Syntax);
        assert_eq!(d.span.line, 2);
    }

    #[test]
    fn summary_unlocks_inference_pass() {
        let doc = gql_ssdm::Document::parse_str(
            "<guide><restaurant><name>A</name></restaurant>\
             <restaurant><name>B</name></restaurant></guide>",
        )
        .unwrap();
        let analyzer = Analyzer::new().with_summary(Summary::build(&doc));
        // XML-GL: a tag absent from the document is statically empty.
        let r = analyzer.analyze_xmlgl_src(
            "rule { extract { cinema as $c { show } } construct { out { all $c } } }",
        );
        assert!(
            r.iter().any(|d| d.code == Code::EmptyUnderSummary),
            "{}",
            r.render()
        );
        // A live query gets cardinality bounds instead of diagnostics.
        let p = gql_xmlgl::dsl::parse_unchecked(
            "rule { extract { restaurant as $r { name } } construct { out { all $r } } }",
        )
        .unwrap();
        let inf = analyzer.infer_xmlgl(&p).unwrap();
        assert!(!inf.is_statically_empty());
        assert!(inf.cards.iter().any(|e| e.bound == 2), "{:?}", inf.cards);
        // XPath: dead step is GQL016, garbage is GQL000 with a column.
        let r = analyzer.analyze_xpath_src("/guide/cinema");
        assert!(r.iter().any(|d| d.code == Code::PathNeverMatches));
        let r = analyzer.analyze_xpath_src("/guide//");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, Code::Syntax);
        assert!(!d.span.is_none());
        // Without a summary the pass is skipped entirely.
        assert!(Analyzer::new()
            .analyze_xpath_src("/guide/cinema")
            .is_empty());
    }

    #[test]
    fn clean_program_clean_report() {
        let r = Analyzer::new().analyze_xmlgl_src(
            "rule { extract { restaurant as $r { menu } } construct { answer { all $r } } }",
        );
        assert!(r.is_empty(), "{}", r.render());
        let r = Analyzer::new().analyze_wglog_src(
            "rule { query { $r: restaurant  $m: menu  $r -menu-> $m } \
             construct { $l: rest-list  $l -member-> $r } } goal rest-list",
        );
        assert!(r.is_empty(), "{}", r.render());
    }
}
