//! `gql-analyze` — lint XML-GL (`.gql`), WG-Log (`.wgl`) and XPath (`.xp`)
//! query programs.
//!
//! ```text
//! Usage: gql-analyze [options] <file-or-dir>...
//!
//!   --json             machine-readable report (one JSON object per file)
//!   --deny-warnings    exit non-zero on warnings, not just errors
//!   --dtd FILE         XML DTD for the schema-conformance pass (GQL006)
//!   --instance FILE    XML document: extracts a WG-Log schema (GQL012/13),
//!                      collects statistics for the cost pass (GQL009) and
//!                      infers the structural summary for the
//!                      summary-inference pass (GQL014–GQL016) with
//!                      cardinality bounds
//!   --explain          print the pass/diagnostic-code table and exit
//! ```
//!
//! Directories are searched recursively for `.gql`/`.wgl`/`.xp` files. Exit
//! code
//! is 1 when any file has an Error-level diagnostic (with `--deny-warnings`,
//! also on Warning-level), 2 on usage/IO problems.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gql_analyze::{Analyzer, Code, Report, Severity};

struct Options {
    json: bool,
    deny_warnings: bool,
    dtd: Option<PathBuf>,
    instance: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "Usage: gql-analyze [--json] [--deny-warnings] [--dtd FILE] [--instance FILE] [--explain] <file-or-dir>..."
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        dtd: None,
        instance: None,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--dtd" => {
                let v = it.next().ok_or("--dtd needs a file argument")?;
                opts.dtd = Some(PathBuf::from(v));
            }
            "--instance" => {
                let v = it.next().ok_or("--instance needs a file argument")?;
                opts.instance = Some(PathBuf::from(v));
            }
            "--explain" => {
                explain();
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(opts)
}

fn explain() {
    println!("passes and diagnostic codes:");
    for pass in gql_analyze::PASSES {
        let codes: Vec<&str> = pass.codes.iter().map(|c| c.as_str()).collect();
        let needs = pass
            .needs
            .map_or(String::new(), |n| format!(" (needs {n})"));
        println!("  {:<20} {}{}", pass.name, codes.join(", "), needs);
    }
    println!("codes:");
    for code in Code::all() {
        println!(
            "  {} {:?} ({:?} by default)",
            code.as_str(),
            code,
            code.default_severity()
        );
    }
}

/// Collect `.gql`/`.wgl`/`.xp` files under a path (recursing into
/// directories), in sorted order for stable output.
fn collect(path: &Path, into: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            collect(&entry, into)?;
        }
        return Ok(());
    }
    match path.extension().and_then(|e| e.to_str()) {
        Some("gql") | Some("wgl") | Some("xp") => into.push(path.to_path_buf()),
        // Explicitly-named files of other types are an error; files found
        // during directory walks are just skipped.
        _ => {}
    }
    Ok(())
}

fn build_analyzer(opts: &Options) -> Result<Analyzer, String> {
    let mut analyzer = Analyzer::new();
    if let Some(dtd_path) = &opts.dtd {
        let text = std::fs::read_to_string(dtd_path)
            .map_err(|e| format!("{}: {e}", dtd_path.display()))?;
        let dtd =
            gql_ssdm::dtd::Dtd::parse(&text).map_err(|e| format!("{}: {e}", dtd_path.display()))?;
        analyzer = analyzer.with_gl_schema(gql_xmlgl::schema::GlSchema::from_dtd(&dtd));
    }
    if let Some(instance_path) = &opts.instance {
        let text = std::fs::read_to_string(instance_path)
            .map_err(|e| format!("{}: {e}", instance_path.display()))?;
        let doc = gql_ssdm::Document::parse_str(&text)
            .map_err(|e| format!("{}: {e}", instance_path.display()))?;
        let db = gql_wglog::Instance::from_document(&doc);
        analyzer = analyzer
            .with_wg_schema(gql_wglog::schema::WgSchema::extract(&db))
            .with_stats(gql_core::stats::DocStats::collect(&doc))
            .with_summary(gql_ssdm::Summary::build(&doc));
    }
    Ok(analyzer)
}

/// Analyze one file: its report, plus the summary inference (cardinality
/// bounds) when an `--instance` summary is in context and the file parses.
fn analyze_file(
    analyzer: &Analyzer,
    path: &Path,
) -> Result<(Report, Option<gql_analyze::Inference>), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    Ok(match ext {
        "gql" => match gql_xmlgl::dsl::parse_unchecked(&src) {
            Ok(p) => {
                let inf = analyzer.infer_xmlgl(&p);
                (analyzer.analyze_xmlgl(&p), inf)
            }
            Err(_) => (analyzer.analyze_xmlgl_src(&src), None),
        },
        "wgl" => match gql_wglog::dsl::parse_unchecked(&src) {
            Ok(p) => {
                let inf = analyzer.infer_wglog(&p);
                (analyzer.analyze_wglog(&p), inf)
            }
            Err(_) => (analyzer.analyze_wglog_src(&src), None),
        },
        "xp" => {
            let expr = src.trim();
            match gql_xpath::parse(expr) {
                Ok(p) => {
                    let inf = analyzer.infer_xpath(&p);
                    (analyzer.analyze_xpath_src(expr), inf)
                }
                Err(_) => (analyzer.analyze_xpath_src(expr), None),
            }
        }
        _ => return Err(format!("{}: unknown extension '{ext}'", path.display())),
    })
}

/// JSON array of cardinality facts: `u64::MAX` (unbounded) becomes `null`.
fn bounds_json(cards: &gql_analyze::CardinalityMap) -> String {
    let entries: Vec<String> = cards
        .iter()
        .map(|e| {
            let bound = if e.bound == u64::MAX {
                "null".to_string()
            } else {
                e.bound.to_string()
            };
            format!(
                "{{\"rule\":{},\"target\":{},\"bound\":{bound}}}",
                e.rule + 1,
                json_string(&e.target)
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gql-analyze: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let analyzer = match build_analyzer(&opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gql-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let mut files = Vec::new();
    for path in &opts.paths {
        if !path.exists() {
            eprintln!("gql-analyze: {}: no such file or directory", path.display());
            return ExitCode::from(2);
        }
        if let Err(e) = collect(path, &mut files) {
            eprintln!("gql-analyze: {e}");
            return ExitCode::from(2);
        }
    }
    let mut failed = false;
    let mut json_entries = Vec::new();
    let (mut errors, mut warnings, mut hints) = (0usize, 0usize, 0usize);
    for file in &files {
        let (report, inference) = match analyze_file(&analyzer, file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("gql-analyze: {e}");
                return ExitCode::from(2);
            }
        };
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        hints += report.count(Severity::Hint);
        if report.has_errors() || (opts.deny_warnings && report.count(Severity::Warning) > 0) {
            failed = true;
        }
        if opts.json {
            let bounds = inference
                .as_ref()
                .map_or(String::from("[]"), |inf| bounds_json(&inf.cards));
            json_entries.push(format!(
                "{{\"path\":{},\"report\":{},\"bounds\":{bounds}}}",
                json_string(&file.display().to_string()),
                report.to_json()
            ));
        } else {
            for d in report.iter() {
                println!("{}: {d}", file.display());
            }
            if let Some(inf) = &inference {
                for e in inf.cards.iter() {
                    let bound = if e.bound == u64::MAX {
                        String::from("unbounded")
                    } else {
                        format!("<= {}", e.bound)
                    };
                    println!(
                        "{}: rule {} {}: {bound}",
                        file.display(),
                        e.rule + 1,
                        e.target
                    );
                }
            }
        }
    }
    if opts.json {
        println!("{{\"files\":[{}]}}", json_entries.join(","));
    } else {
        println!(
            "{} file{} checked: {errors} error{}, {warnings} warning{}, {hints} hint{}",
            files.len(),
            if files.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
            if hints == 1 { "" } else { "s" },
        );
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
