//! WG-Log analysis passes.
//!
//! Well-formedness lives on `gql_wglog::Program::diagnostics`; this module
//! adds stratification diagnostics, schema conformance, goal reachability,
//! connectivity and contradictory constraints.

use std::collections::HashSet;

use gql_ssdm::{Code, Diagnostic, Report};
use gql_wglog::eval::stratify;
use gql_wglog::rule::{rule_label, Color, Rule, TypeTest};
use gql_wglog::schema::WgSchema;
use gql_wglog::Program;

use crate::Context;

/// Run every WG-Log pass applicable under `ctx`.
pub fn analyze(program: &Program, ctx: &Context) -> Report {
    let mut report = Report::new();
    let wf = program.diagnostics();
    let well_formed = !wf.iter().any(Diagnostic::is_error);
    report.extend(wf);
    if well_formed {
        // Stratification (and the per-rule lints) only mean anything for
        // well-formed rule graphs.
        report.extend(stratify::diagnose(program));
        for (i, rule) in program.rules.iter().enumerate() {
            let label = rule_label(rule, i);
            let mut ds = Vec::new();
            connectivity(rule, &mut ds);
            if let Some(schema) = &ctx.wg_schema {
                schema_conformance(rule, schema, &mut ds);
            }
            contradictions(rule, &mut ds);
            for mut d in ds {
                if d.span.is_none() {
                    d.span = rule.span;
                }
                report.push(d.with_rule(label.clone()));
            }
        }
        if let Some(schema) = &ctx.wg_schema {
            goal_constructed(program, schema, &mut report);
        }
        // Summary inference (GQL014/GQL015): dead rules and unavailable
        // goals under the document's inferred structural summary.
        if let Some(summary) = &ctx.summary {
            report.extend(gql_infer::infer_wglog(program, summary).report);
        }
    }
    report
}

/// GQL005: a rule graph in several connected components matches the cross
/// product of the components' embeddings.
fn connectivity(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let n = rule.nodes.len();
    if n < 2 {
        return;
    }
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(comp: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while comp[root] != root {
            root = comp[root];
        }
        let mut cur = i;
        while comp[cur] != root {
            let next = comp[cur];
            comp[cur] = root;
            cur = next;
        }
        root
    }
    for e in &rule.edges {
        if e.from.index() < n && e.to.index() < n {
            let (a, b) = (
                find(&mut comp, e.from.index()),
                find(&mut comp, e.to.index()),
            );
            comp[a] = b;
        }
    }
    // `per` and attribute copies also tie a construct node to query nodes.
    for (i, node) in rule.nodes.iter().enumerate() {
        let tie = |var: &str, comp: &mut [usize]| {
            if let Some(src) = rule.by_var(var) {
                let (a, b) = (find(comp, i), find(comp, src.index()));
                comp[a] = b;
            }
        };
        for var in &node.per {
            tie(var, &mut comp);
        }
        for (_, v) in &node.set_attrs {
            if let gql_wglog::rule::AttrValue::CopyFrom { var, .. } = v {
                tie(var, &mut comp);
            }
        }
    }
    let roots: HashSet<usize> = (0..n).map(|i| find(&mut comp, i)).collect();
    if roots.len() > 1 {
        let first = find(&mut comp, 0);
        let witness = (0..n).find(|&i| find(&mut comp, i) != first).unwrap_or(0);
        out.push(
            Diagnostic::new(
                Code::DisconnectedQuery,
                format!(
                    "rule graph has {} disconnected components; embeddings multiply \
                     into a cross product",
                    roots.len()
                ),
            )
            .with_span(rule.nodes[witness].span)
            .with_help(
                "connect the parts with an edge (or `per`/`set` references), \
                 or split the rule",
            ),
        );
    }
}

/// GQL012: query parts that mention types, attributes or relations the
/// schema does not declare can never match a conforming database.
fn schema_conformance(rule: &Rule, schema: &WgSchema, out: &mut Vec<Diagnostic>) {
    for msg in schema.check_rule(rule) {
        // Anchor the message on the node it names when possible.
        let span = msg
            .split('$')
            .nth(1)
            .and_then(|rest| {
                let var: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                rule.by_var(&var)
            })
            .map(|id| rule.node(id).span)
            .unwrap_or_default();
        out.push(
            Diagnostic::new(Code::WgSchemaMismatch, msg)
                .with_span(span)
                .with_help(
                    "against a database conforming to this schema the query part \
                     can never match",
                ),
        );
    }
}

/// GQL013: the goal type is neither constructed by any rule nor declared in
/// the schema — the answer is always empty.
fn goal_constructed(program: &Program, schema: &WgSchema, report: &mut Report) {
    let Some(goal) = &program.goal else {
        return;
    };
    let constructed = program.rules.iter().any(|r| {
        r.construct_nodes()
            .any(|id| matches!(&r.node(id).test, TypeTest::Type(t) if t == goal))
    });
    if !constructed && !schema.has_type(goal) {
        report.push(
            Diagnostic::new(
                Code::GoalNeverConstructed,
                format!(
                    "goal type '{goal}' is never constructed by any rule and is not \
                     declared in the schema; the answer is always empty"
                ),
            )
            .with_help("construct an object of the goal type or fix the goal name"),
        );
    }
}

/// GQL007: two constraints on the same attribute of one node that cannot
/// hold together.
fn contradictions(rule: &Rule, out: &mut Vec<Diagnostic>) {
    for node in &rule.nodes {
        if node.color != Color::Query {
            continue;
        }
        'outer: for (i, a) in node.constraints.iter().enumerate() {
            for b in &node.constraints[i + 1..] {
                if a.attr == b.attr
                    && crate::xmlgl::clauses_contradict(
                        (a.op, a.value.as_str()),
                        (b.op, b.value.as_str()),
                    )
                {
                    out.push(
                        Diagnostic::new(
                            Code::ContradictoryPredicate,
                            format!(
                                "constraints on ${}.{} can never hold together: \
                                 `{} \"{}\"` contradicts `{} \"{}\"`",
                                node.var,
                                a.attr,
                                a.op.symbol(),
                                a.value,
                                b.op.symbol(),
                                b.value
                            ),
                        )
                        .with_span(node.span)
                        .with_help("the rule matches nothing; drop or relax one constraint"),
                    );
                    break 'outer;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use gql_ssdm::Severity;

    #[test]
    fn non_stratifiable_program_reports_gql010() {
        let r = Analyzer::new().analyze_wglog_src(
            "rule { query { $a: doc  $b: doc  $a -link-> $b  not $a -q-> $b } construct { $a -p-> $b } }\n\
             rule { query { $a: doc  $b: doc  $a -p-> $b } construct { $a -q-> $b } }",
        );
        let d = r.iter().find(|d| d.code == Code::NotStratifiable).unwrap();
        assert!(d.is_error());
        assert!(d.message.contains("cycle:"), "{}", d.message);
    }

    #[test]
    fn disconnected_rule_graph_warns() {
        let r = Analyzer::new().analyze_wglog_src(
            "rule {\n  query {\n    $a: doc\n    $b: hotel\n  }\n  construct { $a -pair-> $b } }",
        );
        // $a and $b are joined by the construct edge, so connected; make a
        // genuinely disconnected one:
        assert!(!r.iter().any(|d| d.code == Code::DisconnectedQuery));
        let r = Analyzer::new().analyze_wglog_src(
            "rule {\n  query {\n    $a: doc\n    $b: hotel\n  }\n  construct {\n    $l: pair-list\n    $l -member-> $a\n  }\n}",
        );
        let d = r
            .iter()
            .find(|d| d.code == Code::DisconnectedQuery)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.line, 4); // $b: hotel
        assert_eq!(d.rule.as_deref(), Some("rule 1 (pair-list)"));
    }

    #[test]
    fn per_references_connect() {
        let r = Analyzer::new()
            .analyze_wglog_src("rule { query { $a: doc } construct { $s: summary per $a } }");
        assert!(
            !r.iter().any(|d| d.code == Code::DisconnectedQuery),
            "{}",
            r.render()
        );
    }

    #[test]
    fn schema_mismatch_and_goal() {
        let mut schema = WgSchema::new();
        schema.declare_type("restaurant", &["name", "stars"]);
        schema.declare_type("menu", &["price"]);
        schema.declare_relation(
            "restaurant",
            "menu",
            "menu",
            gql_wglog::schema::RelMult::Many,
        );
        let analyzer = Analyzer::new().with_wg_schema(schema);
        let r = analyzer.analyze_wglog_src(
            "rule {\n  query {\n    $r: restaurant where rating >= \"3\"\n    $m: pasta\n    $r -menu-> $m\n  }\n  construct { $l: rest-list  $l -member-> $r }\n}\ngoal top-list",
        );
        let mismatches: Vec<_> = r
            .iter()
            .filter(|d| d.code == Code::WgSchemaMismatch)
            .collect();
        assert!(
            mismatches.iter().any(|d| d.message.contains("rating")),
            "{}",
            r.render()
        );
        assert!(
            mismatches.iter().any(|d| d.message.contains("pasta")),
            "{}",
            r.render()
        );
        // The 'rating' warning anchors on $r's declaration line.
        let rating = mismatches
            .iter()
            .find(|d| d.message.contains("rating"))
            .unwrap();
        assert_eq!(rating.span.line, 3);
        // goal 'top-list' is neither constructed nor declared.
        let d = r
            .iter()
            .find(|d| d.code == Code::GoalNeverConstructed)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("top-list"));
    }

    #[test]
    fn contradictory_constraints_warn() {
        let r = Analyzer::new().analyze_wglog_src(
            "rule { query { $r: restaurant where stars > \"4\" and stars < \"2\" } \
             construct { $l: rest-list  $l -member-> $r } } goal rest-list",
        );
        let d = r
            .iter()
            .find(|d| d.code == Code::ContradictoryPredicate)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("stars"), "{}", d.message);
    }
}
