//! Golden-file tests: every diagnostic code has a fixture under
//! `tests/fixtures/` whose rendered report is pinned in a `.expected`
//! sidecar, and every paper query under `examples/queries/` gets a clean
//! bill of health.
//!
//! Regenerate the expectations with `BLESS=1 cargo test -p gql-analyze`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use gql_analyze::{Analyzer, Code, Report, Severity};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn examples_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/queries")
}

/// Build an analyzer with the fixture's sidecar context: `<stem>.dtd`
/// becomes the XML-GL schema, `<stem>.xml` the WG-Log schema, statistics and
/// structural summary.
fn analyzer_for(fixture: &Path) -> Analyzer {
    let mut analyzer = Analyzer::new();
    let dtd_path = fixture.with_extension("dtd");
    if let Ok(text) = std::fs::read_to_string(&dtd_path) {
        let dtd = gql_ssdm::dtd::Dtd::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", dtd_path.display()));
        analyzer = analyzer.with_gl_schema(gql_xmlgl::schema::GlSchema::from_dtd(&dtd));
    }
    let xml_path = fixture.with_extension("xml");
    if let Ok(text) = std::fs::read_to_string(&xml_path) {
        let doc = gql_ssdm::Document::parse_str(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", xml_path.display()));
        let db = gql_wglog::Instance::from_document(&doc);
        analyzer = analyzer
            .with_wg_schema(gql_wglog::schema::WgSchema::extract(&db))
            .with_stats(gql_core::stats::DocStats::collect(&doc))
            .with_summary(gql_ssdm::Summary::build(&doc));
    }
    analyzer
}

fn analyze(path: &Path) -> Report {
    let src = std::fs::read_to_string(path).unwrap();
    match path.extension().and_then(|e| e.to_str()) {
        Some("gql") => analyzer_for(path).analyze_xmlgl_src(&src),
        Some("wgl") => analyzer_for(path).analyze_wglog_src(&src),
        Some("xp") => analyzer_for(path).analyze_xpath_src(src.trim()),
        other => panic!("{}: unexpected extension {other:?}", path.display()),
    }
}

fn query_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("gql") | Some("wgl") | Some("xp")
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn fixtures_match_their_golden_reports() {
    let bless = std::env::var_os("BLESS").is_some();
    let fixtures = query_files(&fixtures_dir());
    assert!(!fixtures.is_empty(), "no fixtures found");
    let mut failures = Vec::new();
    for fixture in &fixtures {
        let rendered = analyze(fixture).render();
        let expected_path = fixture.with_extension("expected");
        if bless {
            std::fs::write(&expected_path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "{}: missing golden file (run with BLESS=1 to create)",
                expected_path.display()
            )
        });
        if rendered != expected {
            failures.push(format!(
                "{}:\n--- expected ---\n{expected}--- got ---\n{rendered}",
                fixture.display()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Each `gqlNNN_*` fixture must actually produce its namesake code, with a
/// source span (GQL013 is program-level and GQL016 expression-level — XPath
/// steps carry no source offsets — so both are exempt from the span rule).
#[test]
fn every_code_has_a_fixture_with_a_span() {
    let mut seen: BTreeMap<String, bool> = BTreeMap::new();
    for fixture in query_files(&fixtures_dir()) {
        let stem = fixture.file_stem().unwrap().to_string_lossy().to_string();
        let code_name = stem.split('_').next().unwrap().to_uppercase();
        let report = analyze(&fixture);
        let matching: Vec<_> = report
            .iter()
            .filter(|d| d.code.as_str() == code_name)
            .collect();
        assert!(
            !matching.is_empty(),
            "{stem}: no {code_name} diagnostic produced:\n{}",
            report.render()
        );
        let spanned = matching.iter().any(|d| !d.span.is_none());
        assert!(
            spanned || code_name == "GQL013" || code_name == "GQL016",
            "{stem}: {code_name} diagnostic carries no span"
        );
        seen.insert(code_name, spanned);
    }
    // Every code in the registry is exercised by some fixture…
    for code in Code::all() {
        assert!(
            seen.contains_key(code.as_str()),
            "no fixture exercises {}",
            code.as_str()
        );
    }
    // …and well over the minimum bar of codes are span-tested.
    let with_spans = seen.values().filter(|&&s| s).count();
    assert!(with_spans >= 7, "only {with_spans} codes tested with spans");
}

/// Every paper query shipped under `examples/queries/` analyzes clean:
/// no errors, no warnings (hints are advisory and allowed).
#[test]
fn paper_queries_get_a_clean_bill() {
    let queries = query_files(&examples_dir());
    assert!(
        queries.len() >= 6,
        "expected the paper queries to be present"
    );
    for query in &queries {
        let report = analyze(query);
        assert_eq!(
            report.count(Severity::Error) + report.count(Severity::Warning),
            0,
            "{}:\n{}",
            query.display(),
            report.render()
        );
    }
}
