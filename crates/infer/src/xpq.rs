//! Abstract interpretation of XPath expressions against a summary.
//!
//! A location path is walked over the summary automaton: the abstract state
//! is the set of summary paths the current node-set can live on, plus flags
//! for node kinds the summary does not track per-instance (text nodes,
//! comments, attribute members). Exact transitions exist for the child/
//! descendant/parent/ancestor/self/attribute axes; the sibling and
//! following/preceding axes use conservative supersets (all children of the
//! parents, or the whole document). Untracked members are harmless on
//! forward axes — text, comment, and attribute nodes have no children,
//! descendants, or attributes of their own — and are carried through the
//! "self" part of `self::`/`descendant-or-self::`; only the parent/
//! ancestor/sibling axes need their exact membership, so the walk gives up
//! (soundly, "unknown") there and only there. Predicates only *restrict* a
//! step, so ignoring them keeps the walk an over-approximation.
//!
//! When a step empties the state the query provably selects nothing from
//! that step on — [`Code::PathNeverMatches`] (GQL016), and the whole
//! expression (for a plain path) is statically empty. Bounds are the sum
//! of path counts whenever the state contains only tracked node kinds.

use std::collections::BTreeSet;

use gql_ssdm::diag::{Code, Diagnostic};
use gql_ssdm::summary::{PathId, Summary, ROOT_PATH};
use gql_xpath::ast::{Axis, Expr, LocationPath, NodeTest, Step};

use crate::Inference;

/// Abstractly interpret an XPath expression against a document summary.
pub fn infer_xpath(expr: &Expr, summary: &Summary) -> Inference {
    let mut inf = Inference::default();
    if let Some(out) = analyze(expr, summary, &mut inf) {
        inf.result_empty = out.empty;
        if let Some(b) = out.bound {
            inf.cards.push(0, "result", b);
        }
    }
    inf
}

struct Out {
    empty: bool,
    bound: Option<u64>,
}

fn analyze(expr: &Expr, s: &Summary, inf: &mut Inference) -> Option<Out> {
    match expr {
        Expr::Path(lp) => Some(walk(lp, s, inf)),
        Expr::Union(a, b) => {
            let oa = analyze(a, s, inf)?;
            let ob = analyze(b, s, inf)?;
            Some(Out {
                empty: oa.empty && ob.empty,
                bound: match (oa.bound, ob.bound) {
                    (Some(x), Some(y)) => Some(x.saturating_add(y)),
                    _ => None,
                },
            })
        }
        // Scalars evaluate to exactly one value.
        Expr::Literal(_) | Expr::Number(_) | Expr::Binary(..) | Expr::Neg(_) => Some(Out {
            empty: false,
            bound: Some(1),
        }),
        Expr::Call(..) | Expr::FilterPath(..) => None,
    }
}

/// Abstract node-set: element/document paths the set can live on, plus
/// whether it may contain text nodes, attribute nodes (with an exact
/// bound), or nodes the summary cannot track (comments).
#[derive(Clone, Default)]
struct State {
    elems: BTreeSet<PathId>,
    text: bool,
    attrs: Option<u64>,
    opaque: bool,
}

impl State {
    fn provably_empty(&self) -> bool {
        self.elems.is_empty() && !self.text && !self.opaque && self.attrs.unwrap_or(0) == 0
    }

    /// Result-count upper bound, when every member kind is tracked.
    fn bound(&self, s: &Summary) -> Option<u64> {
        if self.text || self.opaque {
            return None;
        }
        let elems: u64 = self.elems.iter().map(|&p| s.node(p).count).sum();
        Some(elems.saturating_add(self.attrs.unwrap_or(0)))
    }
}

fn describe(step: &Step) -> String {
    let test = match &step.test {
        NodeTest::Name(n) => n.clone(),
        NodeTest::Any => "*".into(),
        NodeTest::Text => "text()".into(),
        NodeTest::Comment => "comment()".into(),
        NodeTest::Node => "node()".into(),
    };
    format!("{}::{}", step.axis.name(), test)
}

fn walk(lp: &LocationPath, s: &Summary, inf: &mut Inference) -> Out {
    let mut st = State {
        elems: std::iter::once(ROOT_PATH).collect(),
        ..State::default()
    };
    for (i, step) in lp.steps.iter().enumerate() {
        st = match apply_step(&st, step, s) {
            Some(next) => next,
            // Reverse/sibling axis from members the summary does not
            // track: give up soundly.
            None => {
                return Out {
                    empty: false,
                    bound: None,
                }
            }
        };
        if st.provably_empty() {
            inf.report.push(
                Diagnostic::new(
                    Code::PathNeverMatches,
                    format!(
                        "step {} ({}) matches no path in the document summary",
                        i + 1,
                        describe(step)
                    ),
                )
                .with_help(
                    "the inferred DataGuide has no node reachable by this step; the \
                     path selects nothing on this document",
                ),
            );
            return Out {
                empty: true,
                bound: Some(0),
            };
        }
        if let Some(b) = st.bound(s) {
            inf.cards
                .push(0, format!("step {} ({})", i + 1, describe(step)), b);
        }
    }
    Out {
        empty: false,
        bound: st.bound(s),
    }
}

/// Candidate elements/documents reached by an axis, before the node test,
/// plus whether the axis can reach text nodes from `from`.
fn axis_candidates(from: &BTreeSet<PathId>, axis: Axis, s: &Summary) -> (BTreeSet<PathId>, bool) {
    let mut out = BTreeSet::new();
    let mut text = false;
    let direct_text = |set: &BTreeSet<PathId>| set.iter().any(|&p| s.node(p).text_count > 0);
    match axis {
        Axis::Child => {
            for &p in from {
                out.extend(s.node(p).children.iter().copied());
            }
            text = direct_text(from);
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            for &p in from {
                out.extend(s.descendants(p));
            }
            // Text children of `from` elements are descendants too.
            text = direct_text(from) || direct_text(&out);
            if axis == Axis::DescendantOrSelf {
                out.extend(from.iter().copied());
            }
        }
        Axis::Parent => {
            for &p in from {
                out.extend(s.node(p).parent);
            }
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            for &p in from {
                let mut cur = s.node(p).parent;
                while let Some(a) = cur {
                    out.insert(a);
                    cur = s.node(a).parent;
                }
            }
            if axis == Axis::AncestorOrSelf {
                out.extend(from.iter().copied());
            }
        }
        Axis::SelfAxis => {
            out.extend(from.iter().copied());
        }
        Axis::FollowingSibling | Axis::PrecedingSibling => {
            let parents: BTreeSet<PathId> = from.iter().filter_map(|&p| s.node(p).parent).collect();
            for &p in &parents {
                out.extend(s.node(p).children.iter().copied());
            }
            text = direct_text(&parents);
        }
        Axis::Following | Axis::Preceding => {
            out.extend(s.element_paths());
            text =
                s.node(ROOT_PATH).text_count > 0 || out.iter().any(|&p| s.node(p).text_count > 0);
        }
        // Attribute is handled in apply_step.
        Axis::Attribute => {}
    }
    (out, text)
}

fn apply_step(st: &State, step: &Step, s: &Summary) -> Option<State> {
    let from = &st.elems;
    let untracked = st.text || st.opaque || st.attrs.is_some();
    if step.axis == Axis::Attribute {
        let count = |name: Option<&str>| -> u64 {
            from.iter()
                .map(|&p| match name {
                    Some(a) => s.node(p).attrs.get(a).copied().unwrap_or(0),
                    None => s.node(p).attrs.values().sum(),
                })
                .sum()
        };
        // Only elements carry attributes, so untracked members (text,
        // comment, attribute nodes) contribute nothing here.
        return Some(match &step.test {
            NodeTest::Name(a) => State {
                attrs: Some(count(Some(a))),
                ..State::default()
            },
            // node() on the attribute axis selects attributes (its
            // principal node kind), like `@*`.
            NodeTest::Any | NodeTest::Node => State {
                attrs: Some(count(None)),
                ..State::default()
            },
            // text()/comment() on the attribute axis: engine-dependent
            // corner; stay agnostic rather than claim emptiness.
            NodeTest::Text | NodeTest::Comment => State {
                opaque: true,
                ..State::default()
            },
        });
    }

    // Reverse, sibling, and following/preceding-sibling transitions need
    // the exact membership of the current set; if it may contain members
    // the summary cannot track, their parents are unknowable here.
    if untracked
        && matches!(
            step.axis,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::FollowingSibling
                | Axis::PrecedingSibling
        )
    {
        return None;
    }

    // Forward axes see only the element members — text/comment/attribute
    // nodes have no children or descendants. The "self" part of self:: and
    // descendant-or-self:: carries the untracked flags through.
    let (cands, axis_text) = axis_candidates(from, step.axis, s);
    let carries_self = matches!(step.axis, Axis::SelfAxis | Axis::DescendantOrSelf);
    let self_text = carries_self && st.text;
    let self_attrs = if carries_self { st.attrs } else { None };
    let text = axis_text || self_text;
    Some(match &step.test {
        // Name/* match only elements (the principal node kind of every
        // non-attribute axis), so untracked members drop out.
        NodeTest::Name(n) => State {
            // Tag comparison excludes the virtual root (tag "").
            elems: cands.into_iter().filter(|&p| s.node(p).tag == *n).collect(),
            ..State::default()
        },
        NodeTest::Any => State {
            elems: cands.into_iter().filter(|&p| p != ROOT_PATH).collect(),
            ..State::default()
        },
        NodeTest::Text => State {
            text,
            ..State::default()
        },
        NodeTest::Comment => State {
            opaque: true,
            ..State::default()
        },
        NodeTest::Node => State {
            elems: cands,
            text,
            // Comments/PIs can hide anywhere the summary does not see.
            opaque: true,
            attrs: self_attrs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_ssdm::Document;
    use gql_xpath::parse;

    const BIB: &str = "<bib><book year='1994'><title>TCP/IP</title></book>\
                       <book year='2000'><title>Web</title></book>\
                       <article><title>GL</title></article></bib>";

    fn summarise(xml: &str) -> Summary {
        Summary::build(&Document::parse_str(xml).unwrap())
    }

    fn infer(src: &str, s: &Summary) -> Inference {
        infer_xpath(&parse(src).unwrap(), s)
    }

    #[test]
    fn exact_bounds_along_child_paths() {
        let s = summarise(BIB);
        let inf = infer("/bib/book/title", &s);
        assert!(inf.report.is_empty(), "{}", inf.report.render());
        assert!(!inf.is_statically_empty());
        assert_eq!(inf.cards.result_bound(0), Some(2));
    }

    #[test]
    fn descendant_bounds_cover_all_paths() {
        let s = summarise(BIB);
        let inf = infer("//title", &s);
        assert_eq!(inf.cards.result_bound(0), Some(3));
    }

    #[test]
    fn dead_step_is_flagged() {
        let s = summarise(BIB);
        let inf = infer("/bib/journal/title", &s);
        assert!(inf.is_statically_empty());
        let d = inf.report.iter().next().unwrap();
        assert_eq!(d.code, Code::PathNeverMatches);
        assert!(d.message.contains("step 2"), "{}", d.message);
        assert_eq!(inf.cards.result_bound(0), Some(0));
    }

    #[test]
    fn wrong_nesting_is_flagged() {
        let s = summarise(BIB);
        // titles exist, but never directly under bib.
        let inf = infer("/bib/title", &s);
        assert!(inf.is_statically_empty());
    }

    #[test]
    fn attribute_counts_are_exact() {
        let s = summarise(BIB);
        let inf = infer("//book/@year", &s);
        assert_eq!(inf.cards.result_bound(0), Some(2));
        let inf = infer("//article/@year", &s);
        assert!(inf.is_statically_empty());
    }

    #[test]
    fn text_steps_respect_presence() {
        let s = summarise(BIB);
        let inf = infer("/bib/book/title/text()", &s);
        assert!(!inf.is_statically_empty());
        // Text node counts are not tracked — no bound.
        assert_eq!(inf.cards.result_bound(0), None);
        // book elements have no direct text.
        let inf = infer("/bib/book/text()", &s);
        assert!(inf.is_statically_empty());
    }

    #[test]
    fn predicates_do_not_affect_the_walk() {
        let s = summarise(BIB);
        let inf = infer("/bib/book[@year='1994']/title", &s);
        assert!(!inf.is_statically_empty());
        assert_eq!(inf.cards.result_bound(0), Some(2));
    }

    #[test]
    fn reverse_axes_walk_the_automaton() {
        let s = summarise(BIB);
        let inf = infer("//title/parent::book", &s);
        assert!(!inf.is_statically_empty());
        assert_eq!(inf.cards.result_bound(0), Some(2));
        let inf = infer("//title/ancestor::journal", &s);
        assert!(inf.is_statically_empty());
    }

    #[test]
    fn union_is_empty_only_when_both_sides_are() {
        let s = summarise(BIB);
        let inf = infer("/bib/journal | /bib/article", &s);
        assert!(!inf.is_statically_empty());
        // The dead branch still gets its step diagnostic.
        assert!(inf.report.iter().any(|d| d.code == Code::PathNeverMatches));
        assert_eq!(inf.cards.result_bound(0), Some(1));
        let inf = infer("/bib/journal | /bib/letter", &s);
        assert!(inf.is_statically_empty());
    }

    #[test]
    fn comments_and_functions_stay_unknown() {
        let s = summarise(BIB);
        let inf = infer("//comment()", &s);
        assert!(!inf.is_statically_empty());
        assert_eq!(inf.cards.result_bound(0), None);
        let inf = infer("count(//book)", &s);
        assert!(!inf.is_statically_empty());
        assert_eq!(inf.cards.result_bound(0), None);
    }

    #[test]
    fn scalars_bound_to_one() {
        let s = summarise(BIB);
        let inf = infer("1 + 2", &s);
        assert_eq!(inf.cards.result_bound(0), Some(1));
    }

    #[test]
    fn sibling_axes_are_conservative() {
        let s = summarise(BIB);
        let inf = infer("/bib/book/following-sibling::article", &s);
        assert!(!inf.is_statically_empty());
        let inf = infer("/bib/book/following-sibling::journal", &s);
        assert!(inf.is_statically_empty());
    }
}
