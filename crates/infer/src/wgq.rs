//! Abstract interpretation of WG-Log programs against a summary.
//!
//! The instance loader maps elements to objects typed by their tag,
//! containment to edges labelled with the child's tag, and ID/IDREF
//! resolution to edges labelled by the referencing attribute (falling back
//! to `ref`). The *base availability* therefore over-approximates as:
//! types ⊆ document tags, labels ⊆ tags ∪ attribute names ∪ {`ref`}.
//!
//! Liveness is a fixpoint over that availability: a rule is *live* when
//! every positive (non-negated, query-coloured) observation is satisfiable
//! — each typed node's type is available, each labelled edge's label is
//! available (a `(…)*` path is satisfiable with zero steps) — and a live
//! rule contributes its construct types and labels back. Rules still dead
//! at the fixpoint can never fire regardless of evaluation order, which is
//! exactly [`Code::DeadRule`] (GQL015); a goal type outside the final
//! availability makes the whole program provably empty
//! ([`Code::EmptyUnderSummary`], GQL014).
//!
//! Attribute constraints are not folded: WG-Log attributes are multivalued
//! (`category = "a"` and `category = "b"` can hold simultaneously), so no
//! constant conflict is decidable from counts alone.

use std::collections::HashSet;

use gql_ssdm::diag::{Code, Diagnostic};
use gql_ssdm::summary::Summary;
use gql_wglog::rule::{rule_label, AttrValue, Color, LabelTest, PathRep, Program, Rule, TypeTest};

use crate::Inference;

/// Abstractly interpret a WG-Log program against a document summary.
pub fn infer_wglog(program: &Program, summary: &Summary) -> Inference {
    let mut inf = Inference::default();

    let base_types: HashSet<&str> = summary.tag_names().collect();
    let mut types: HashSet<&str> = base_types.clone();
    let mut labels: HashSet<&str> = summary.tag_names().chain(summary.attr_names()).collect();
    if summary.ref_edge_count() > 0 {
        labels.insert("ref");
    }

    let mut live = vec![false; program.rules.len()];
    loop {
        let mut changed = false;
        for (i, rule) in program.rules.iter().enumerate() {
            if live[i] || !rule_satisfiable(rule, &types, &labels) {
                continue;
            }
            live[i] = true;
            changed = true;
            for id in rule.construct_nodes() {
                if let TypeTest::Type(t) = &rule.node(id).test {
                    types.insert(t);
                }
            }
            for e in rule.edges.iter().filter(|e| e.color == Color::Construct) {
                if let LabelTest::Label(l) = &e.label {
                    labels.insert(l);
                }
            }
        }
        if !changed {
            break;
        }
    }

    inf.empty_rules = live.iter().map(|&l| !l).collect();
    for (i, rule) in program.rules.iter().enumerate() {
        if !live[i] {
            inf.report.push(
                Diagnostic::new(
                    Code::DeadRule,
                    format!(
                        "{} is dead: its positive observations can never be satisfied \
                         by this document or any live rule's output",
                        rule_label(rule, i)
                    ),
                )
                .with_span(rule.span)
                .with_rule(rule_label(rule, i))
                .with_help(
                    "no reachable instance contains the types/labels this rule's query \
                     part requires; the rule will never fire and can be removed",
                ),
            );
        }
    }

    // Types invented by live rules have unknown cardinality.
    let constructed: HashSet<&str> = program
        .rules
        .iter()
        .enumerate()
        .filter(|(i, _)| live[*i])
        .flat_map(|(_, r)| {
            r.construct_nodes()
                .filter_map(|id| match &r.node(id).test {
                    TypeTest::Type(t) => Some(t.as_str()),
                    TypeTest::Any => None,
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let var_bound = |rule: &Rule, var: &str| -> Option<u64> {
        let id = rule.by_var(var)?;
        match &rule.node(id).test {
            TypeTest::Type(t) if !constructed.contains(t.as_str()) => Some(summary.tag_total(t)),
            TypeTest::Any if constructed.is_empty() => Some(summary.element_count()),
            _ => None,
        }
    };

    for (i, rule) in program.rules.iter().enumerate() {
        if !live[i] {
            continue;
        }
        for id in rule.query_nodes() {
            let n = rule.node(id);
            if let Some(b) = var_bound(rule, &n.var) {
                inf.cards.push(i, format!("${}", n.var), b);
            }
        }
    }

    if let Some(goal) = &program.goal {
        if !types.contains(goal.as_str()) {
            inf.result_empty = true;
            inf.report.push(
                Diagnostic::new(
                    Code::EmptyUnderSummary,
                    format!(
                        "goal type '{goal}' is neither loaded from this document nor \
                         constructed by any live rule: the result is provably empty"
                    ),
                )
                .with_help(
                    "the inferred summary has no element of this tag and no live rule \
                     invents objects of this type",
                ),
            );
        } else if let Some(bound) =
            goal_bound(program, &live, goal, summary, &base_types, |r, v| {
                var_bound(r, v)
            })
        {
            // Program-level fact, recorded on rule 0 by convention.
            inf.cards.push(0, "result", bound);
        }
    }
    inf
}

/// Upper bound on objects of the goal type: the loaded ones plus, per live
/// rule, one invention per distinct binding of each goal-typed construct
/// node's parameter variables. `None` when any contributing bound is
/// unknowable (e.g. a parameter ranges over an invented type).
fn goal_bound(
    program: &Program,
    live: &[bool],
    goal: &str,
    summary: &Summary,
    base_types: &HashSet<&str>,
    var_bound: impl Fn(&Rule, &str) -> Option<u64>,
) -> Option<u64> {
    let mut total = if base_types.contains(goal) {
        summary.tag_total(goal)
    } else {
        0
    };
    for (i, rule) in program.rules.iter().enumerate() {
        if !live[i] {
            continue;
        }
        for id in rule.construct_nodes() {
            let n = rule.node(id);
            if !matches!(&n.test, TypeTest::Type(t) if t == goal) {
                continue;
            }
            // Parameter variables: explicit `per` plus implicit copy
            // sources, deduplicated.
            let mut params: Vec<&str> = n.per.iter().map(String::as_str).collect();
            for (_, v) in &n.set_attrs {
                if let AttrValue::CopyFrom { var, .. } = v {
                    params.push(var);
                }
            }
            params.sort_unstable();
            params.dedup();
            let mut invented = 1u64;
            for var in params {
                invented = invented.saturating_mul(var_bound(rule, var)?);
            }
            total = total.saturating_add(invented);
        }
    }
    Some(total)
}

/// Whether every positive observation of the rule's query part is
/// satisfiable under the available types and labels.
fn rule_satisfiable(rule: &Rule, types: &HashSet<&str>, labels: &HashSet<&str>) -> bool {
    // Mirror the evaluator's existential convention (eval/embed.rs): a
    // query node whose incident edges are all negated edges *into* it never
    // binds — each such edge asserts "the source has no matching
    // neighbour", which only gets easier to satisfy when the target's type
    // is absent. Its type must therefore not gate liveness.
    let existential = |q| {
        let mut incident = rule.edges.iter().filter(|e| e.from == q || e.to == q);
        let mut any = false;
        for e in incident.by_ref() {
            any = true;
            if !(e.negated && e.to == q && e.from != q) {
                return false;
            }
        }
        any
    };
    let (mut total, mut binding) = (0usize, 0usize);
    for id in rule.query_nodes() {
        total += 1;
        if existential(id) {
            continue;
        }
        binding += 1;
        let ok = match &rule.node(id).test {
            TypeTest::Type(t) => types.contains(t.as_str()),
            TypeTest::Any => !types.is_empty(),
        };
        if !ok {
            return false;
        }
    }
    // When every query node is existential the evaluator produces no
    // embeddings at all, so the rule can never fire.
    if total > 0 && binding == 0 {
        return false;
    }
    for e in &rule.edges {
        if e.color != Color::Query || e.negated {
            continue;
        }
        let ok = match &e.label {
            LabelTest::Label(l) => labels.contains(l.as_str()),
            LabelTest::Any => !labels.is_empty(),
            LabelTest::Regex(re) => {
                re.rep == PathRep::Star || re.labels.iter().any(|l| labels.contains(l.as_str()))
            }
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_ssdm::Document;
    use gql_wglog::{dsl, rule::RuleBuilder};

    const GUIDE: &str = "<guide>\
        <restaurant id='r1'><name>Roma</name><menu><price>20</price></menu>\
        <near ref='h1'/></restaurant>\
        <restaurant id='r2'><name>Milano</name></restaurant>\
        <hotel id='h1'><name>Grand</name></hotel></guide>";

    fn summarise(xml: &str) -> Summary {
        Summary::build(&Document::parse_str(xml).unwrap())
    }

    #[test]
    fn live_program_has_no_diagnostics() {
        let s = summarise(GUIDE);
        let p = dsl::parse(
            "rule { query { $r: restaurant; $m: menu; $r -menu-> $m } \
                    construct { $l: rest-list; $l -member-> $r } } \
             goal rest-list",
        )
        .unwrap();
        let inf = infer_wglog(&p, &s);
        assert!(inf.report.is_empty(), "{}", inf.report.render());
        assert_eq!(inf.cards.bound_for(0, "$r"), Some(2));
        assert_eq!(inf.cards.bound_for(0, "$m"), Some(1));
    }

    #[test]
    fn missing_type_makes_rule_dead_and_goal_empty() {
        let s = summarise(GUIDE);
        let p = dsl::parse(
            "rule { query { $c: casino } construct { $l: casino-list; $l -member-> $c } } \
             goal casino-list",
        )
        .unwrap();
        let inf = infer_wglog(&p, &s);
        let codes: Vec<_> = inf.report.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::DeadRule));
        assert!(codes.contains(&Code::EmptyUnderSummary));
        assert!(inf.is_statically_empty());
    }

    #[test]
    fn missing_edge_label_makes_rule_dead() {
        let s = summarise(GUIDE);
        let p = dsl::parse(
            "rule { query { $r: restaurant; $h: hotel; $r -shuttle-> $h } \
                    construct { $l: out; $l -member-> $r } } \
             goal out",
        )
        .unwrap();
        let inf = infer_wglog(&p, &s);
        assert!(inf
            .report
            .iter()
            .any(|d| d.code == Code::DeadRule && d.rule.as_deref() == Some("rule 1 (out)")));
    }

    #[test]
    fn ref_edges_count_as_labels() {
        let s = summarise(GUIDE);
        let p = dsl::parse(
            "rule { query { $r: restaurant; $h: hotel; $r -ref-> $h } \
                    construct { $l: out; $l -member-> $r } } \
             goal out",
        )
        .unwrap();
        let inf = infer_wglog(&p, &s);
        assert!(
            !inf.report.iter().any(|d| d.code == Code::DeadRule),
            "{}",
            inf.report.render()
        );
    }

    #[test]
    fn fixpoint_feeds_constructed_types_forward() {
        let s = summarise(GUIDE);
        let p = dsl::parse(
            "rule { query { $r: restaurant } construct { $l: rest-list; $l -member-> $r } } \
             rule { query { $l: rest-list } construct { $t: top; $t -has-> $l } } \
             goal top",
        )
        .unwrap();
        let inf = infer_wglog(&p, &s);
        assert!(
            !inf.report.iter().any(|d| d.code == Code::DeadRule),
            "{}",
            inf.report.render()
        );
        // rest-list is invented, so $l in rule 2 gets no bound.
        assert_eq!(inf.cards.bound_for(1, "$l"), None);
    }

    #[test]
    fn negated_edges_do_not_kill_rules() {
        let s = summarise(GUIDE);
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("h", "hotel")
            .negated_edge("r", "shuttle", "h")
            .unwrap()
            .construct_node("l", "out")
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let p = Program {
            rules: vec![rule],
            goal: Some("out".into()),
        };
        let inf = infer_wglog(&p, &s);
        assert!(
            !inf.report.iter().any(|d| d.code == Code::DeadRule),
            "{}",
            inf.report.render()
        );
    }

    #[test]
    fn star_paths_are_satisfiable_without_labels() {
        let s = summarise(GUIDE);
        let rule = RuleBuilder::new()
            .query_node("a", "restaurant")
            .query_node("b", "hotel")
            .path_edge(
                "a",
                gql_wglog::rule::PathRe {
                    labels: vec!["shuttle".into()],
                    rep: PathRep::Star,
                },
                "b",
            )
            .unwrap()
            .construct_node("l", "out")
            .construct_edge("l", "member", "a")
            .unwrap()
            .build()
            .unwrap();
        let p = Program {
            rules: vec![rule],
            goal: Some("out".into()),
        };
        let inf = infer_wglog(&p, &s);
        assert!(!inf.report.iter().any(|d| d.code == Code::DeadRule));
    }

    #[test]
    fn goal_bound_covers_inventions() {
        let s = summarise(GUIDE);
        // One rest-list per restaurant binding (`per $r`).
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .construct_node("l", "rest-list")
            .per("r")
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let p = Program {
            rules: vec![rule],
            goal: Some("rest-list".into()),
        };
        let inf = infer_wglog(&p, &s);
        assert_eq!(inf.cards.result_bound(0), Some(2));
    }
}
