//! Abstract interpretation of XML-GL extract graphs against a summary.
//!
//! Every query node is mapped to the set of summary paths it could bind on
//! (its *abstract extent*) and a binding-count upper bound `W`:
//!
//! ```text
//! W(q) = 0               if q's extent is empty or its predicate folds false
//! W(q) = cnt(extent(q))  if q has no non-negated child edges
//! W(q) = ∏_c S_c         over non-negated child edges c, where
//!        S_c = W(c)            for plain containment / text / attribute
//!        S_c = mult_c · W(c)   for deep (`*`) edges
//! ```
//!
//! Soundness: the concrete binding count is `Σ_e ∏_c n(e,c)` over elements
//! `e` in the extent, where `n(e,c)` is the number of bindings of subtree
//! `c` anchored at `e`. For non-negative numbers
//! `Σ_e ∏_c n(e,c) ≤ ∏_c (Σ_e n(e,c))`, so it suffices that
//! `Σ_e n(e,c) ≤ S_c`. For a plain containment edge every candidate of `c`
//! has exactly one parent, so the sum counts each candidate at most once
//! and is `≤ W(c)`; likewise for shallow text/attribute edges anchored at
//! `e` itself. For a deep edge one candidate can serve several `e`s — at
//! most one per ancestor(-or-self, for text/attribute) path of its own path
//! that lies in the parent extent, which `mult_c` maximises over candidate
//! paths. Negated edges and join constraints only restrict matches, so
//! ignoring them keeps `W` an upper bound; a negated subtree's emptiness
//! never propagates (absence can hold).
//!
//! GQL014 fires when some root's `W` is zero: the rule then has no
//! bindings, so its construct side emits at most the zero-binding skeleton
//! and extraction is provably fruitless.

use std::collections::BTreeSet;

use gql_ssdm::diag::{Code, Diagnostic};
use gql_ssdm::summary::{PathId, Summary};
use gql_xmlgl::ast::{ExtractGraph, NameTest, Program, QNodeId, QNodeKind, Rule};

use crate::fold::predicate_unsat;
use crate::Inference;

/// Abstractly interpret an XML-GL program against a document summary.
pub fn infer_xmlgl(program: &Program, summary: &Summary) -> Inference {
    let mut inf = Inference::default();
    for (ri, rule) in program.rules.iter().enumerate() {
        let g = &rule.extract;
        let mut bounds = Vec::with_capacity(g.roots.len());
        let mut empty_at: Option<QNodeId> = None;
        for &root in &g.roots {
            let extent = root_extent(g, root, summary);
            let (w, zero) = node_bound(g, root, &extent, summary, &mut inf, ri);
            bounds.push(w);
            if empty_at.is_none() {
                empty_at = zero;
            }
        }
        if !g.roots.is_empty() {
            let total = bounds.iter().fold(1u64, |a, &b| a.saturating_mul(b));
            inf.cards.push(ri, "result", total);
        }
        inf.empty_rules.push(empty_at.is_some());
        if let Some(q) = empty_at {
            let n = g.node(q);
            let what = describe(g, q);
            inf.report.push(
                Diagnostic::new(
                    Code::EmptyUnderSummary,
                    format!("query is empty under the document summary: {what} can never match"),
                )
                .with_span(n.span)
                .with_rule(format!("rule {}", ri + 1))
                .with_help(
                    "the inferred DataGuide contains no path satisfying this part of the \
                     extract graph; the rule will produce no bindings on this document",
                ),
            );
        }
        inf.root_bounds.push(bounds);
    }
    inf
}

fn describe(g: &ExtractGraph, q: QNodeId) -> String {
    let n = g.node(q);
    let base = match &n.kind {
        QNodeKind::Element(t) => format!("element node <{t}>"),
        QNodeKind::Text => "text node".to_string(),
        QNodeKind::Attribute(a) => format!("attribute node @{a}"),
    };
    match &n.var {
        Some(v) => format!("{base} (${v})"),
        None => base,
    }
}

fn card_target(g: &ExtractGraph, q: QNodeId) -> String {
    match &g.node(q).var {
        Some(v) => format!("${v}"),
        None => format!("q{}", q.0),
    }
}

/// Extent of a root node: every summary path matching its name test
/// (roots match anywhere in the document).
fn root_extent(g: &ExtractGraph, root: QNodeId, s: &Summary) -> BTreeSet<PathId> {
    match &g.node(root).kind {
        QNodeKind::Element(NameTest::Name(n)) => s.paths_with_tag(n).iter().copied().collect(),
        QNodeKind::Element(NameTest::Wildcard) => s.element_paths().collect(),
        // Text/attribute roots are not produced by the DSL; stay
        // conservative and give them the whole document as extent.
        QNodeKind::Text | QNodeKind::Attribute(_) => s.element_paths().collect(),
    }
}

/// Compute `W` for the subtree rooted at `q` whose element extent is
/// `extent`. Returns the bound and, when it is zero along a non-negated
/// spine, the query node that first proved empty. Cardinality entries are
/// recorded for every node along the way.
fn node_bound(
    g: &ExtractGraph,
    q: QNodeId,
    extent: &BTreeSet<PathId>,
    s: &Summary,
    inf: &mut Inference,
    rule: usize,
) -> (u64, Option<QNodeId>) {
    let n = g.node(q);
    let cnt: u64 = match &n.kind {
        QNodeKind::Element(_) => extent.iter().map(|&p| s.node(p).count).sum(),
        // A text node binds only on elements with a *direct* text child —
        // exactly what `text_count` counts per path.
        QNodeKind::Text => extent.iter().map(|&p| s.node(p).text_count).sum(),
        // Attributes are single-valued per element.
        QNodeKind::Attribute(a) => extent
            .iter()
            .map(|&p| s.node(p).attrs.get(a).copied().unwrap_or(0))
            .sum(),
    };
    let cnt = if predicate_unsat(&n.predicate) {
        0
    } else {
        cnt
    };

    let mut prod = 1u64;
    let mut has_child = false;
    let mut zero = if cnt == 0 { Some(q) } else { None };
    for edge in &n.children {
        let child_extent = edge_extent(g, edge.target, extent, edge.deep, s);
        let (cw, czero) = node_bound(g, edge.target, &child_extent, s, inf, rule);
        if edge.negated {
            // Absence constraints never bound the parent; the subtree's own
            // card entries were still recorded above.
            continue;
        }
        has_child = true;
        let sc = if edge.deep {
            // Deep element edges range over proper descendants; deep text
            // and attribute edges over descendants-or-self.
            let or_self = !matches!(g.node(edge.target).kind, QNodeKind::Element(_));
            deep_multiplicity(extent, &child_extent, or_self, s).saturating_mul(cw)
        } else {
            cw
        };
        prod = prod.saturating_mul(sc);
        if zero.is_none() && cw == 0 {
            zero = czero.or(Some(edge.target));
        }
    }
    let mut w = if cnt == 0 {
        0
    } else if has_child {
        prod
    } else {
        cnt
    };
    if zero.is_some() {
        w = 0;
    }
    inf.cards.push(rule, card_target(g, q), w);
    (w, zero)
}

/// For a deep edge: the largest number of parent-extent paths that are
/// ancestors (or, with `or_self`, ancestors-or-self) of any one candidate
/// path — how many distinct parents a single concrete candidate can serve.
fn deep_multiplicity(
    parents: &BTreeSet<PathId>,
    children: &BTreeSet<PathId>,
    or_self: bool,
    s: &Summary,
) -> u64 {
    let mut best = 0u64;
    for &d in children {
        let mut m = 0u64;
        if or_self && parents.contains(&d) {
            m += 1;
        }
        let mut cur = s.node(d).parent;
        while let Some(p) = cur {
            if parents.contains(&p) {
                m += 1;
            }
            cur = s.node(p).parent;
        }
        best = best.max(m);
    }
    best
}

/// Extent of an edge target given the parent extent: matching children for
/// a plain containment edge, matching proper descendants for a `*` edge.
/// Text and attribute targets keep the *parent* extent — their counts are
/// read off the element paths that carry them — extended to all descendant
/// paths for deep edges, which the matcher resolves descendant-or-self.
fn edge_extent(
    g: &ExtractGraph,
    target: QNodeId,
    parents: &BTreeSet<PathId>,
    deep: bool,
    s: &Summary,
) -> BTreeSet<PathId> {
    let test = match &g.node(target).kind {
        QNodeKind::Element(t) => t,
        QNodeKind::Text | QNodeKind::Attribute(_) => {
            let mut out = parents.clone();
            if deep {
                for &p in parents {
                    out.extend(s.descendants(p));
                }
            }
            return out;
        }
    };
    let mut out = BTreeSet::new();
    for &p in parents {
        if deep {
            for d in s.descendants(p) {
                if test.matches(&s.node(d).tag) {
                    out.insert(d);
                }
            }
        } else {
            for &c in &s.node(p).children {
                if test.matches(&s.node(c).tag) {
                    out.insert(c);
                }
            }
        }
    }
    out
}

/// Choose a root evaluation order for a multi-root rule from per-root
/// bounds: start at the smallest bound and greedily append the
/// smallest-bound root that is *join-connected* to the prefix (falling
/// back to the global minimum when none is), so selective roots shrink the
/// intermediate result early without introducing avoidable cross products.
///
/// Returns `None` when there is nothing to reorder (fewer than two roots or
/// mismatched bounds). Ties break towards declaration order, so equal-bound
/// inputs reproduce the left-to-right default.
pub fn plan_root_order(rule: &Rule, bounds: &[u64]) -> Option<Vec<usize>> {
    let g = &rule.extract;
    let roots = &g.roots;
    if roots.len() < 2 || bounds.len() != roots.len() {
        return None;
    }

    // Owner root of every query node, by walking each root's subtree.
    let mut owner = vec![usize::MAX; g.nodes.len()];
    for (ri, &root) in roots.iter().enumerate() {
        let mut stack = vec![root];
        while let Some(q) = stack.pop() {
            if owner[q.index()] != usize::MAX {
                continue;
            }
            owner[q.index()] = ri;
            stack.extend(g.node(q).children.iter().map(|e| e.target));
        }
    }
    let mut connected = vec![vec![false; roots.len()]; roots.len()];
    for &(a, b) in &g.joins {
        let (oa, ob) = (owner[a.index()], owner[b.index()]);
        if oa != ob && oa != usize::MAX && ob != usize::MAX {
            connected[oa][ob] = true;
            connected[ob][oa] = true;
        }
    }

    let mut order = Vec::with_capacity(roots.len());
    let mut used = vec![false; roots.len()];
    while order.len() < roots.len() {
        let joined = |ri: usize| order.iter().any(|&o: &usize| connected[o][ri]);
        let pick = (0..roots.len())
            .filter(|&ri| !used[ri])
            .filter(|&ri| order.is_empty() || joined(ri))
            .min_by_key(|&ri| (bounds[ri], ri))
            .or_else(|| {
                (0..roots.len())
                    .filter(|&ri| !used[ri])
                    .min_by_key(|&ri| (bounds[ri], ri))
            })?;
        used[pick] = true;
        order.push(pick);
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_ssdm::Document;
    use gql_xmlgl::dsl;

    fn summarise(xml: &str) -> (Document, Summary) {
        let doc = Document::parse_str(xml).unwrap();
        let s = Summary::build(&doc);
        (doc, s)
    }

    const BIB: &str = "<bib><book year='1994'><title>TCP/IP</title><price>55</price></book>\
                       <book year='2000'><title>Web</title><price>39</price></book>\
                       <article><title>GL</title></article></bib>";

    #[test]
    fn satisfiable_query_gets_bounds() {
        let (_, s) = summarise(BIB);
        let p =
            dsl::parse("rule { extract { book as $b { title } } construct { out { all $b } } }")
                .unwrap();
        let inf = infer_xmlgl(&p, &s);
        assert!(inf.report.is_empty());
        assert_eq!(inf.root_bounds, vec![vec![2]]);
        assert_eq!(inf.cards.result_bound(0), Some(2));
    }

    #[test]
    fn missing_tag_is_statically_empty() {
        let (_, s) = summarise(BIB);
        let p =
            dsl::parse("rule { extract { journal as $j } construct { out { all $j } } }").unwrap();
        let inf = infer_xmlgl(&p, &s);
        assert!(inf.empty_rules[0]);
        let d = inf.report.iter().next().unwrap();
        assert_eq!(d.code, Code::EmptyUnderSummary);
        assert_eq!(inf.root_bounds, vec![vec![0]]);
    }

    #[test]
    fn missing_child_path_is_statically_empty() {
        let (_, s) = summarise(BIB);
        // Articles exist and prices exist, but never an article price.
        let p =
            dsl::parse("rule { extract { article as $a { price } } construct { out { all $a } } }")
                .unwrap();
        let inf = infer_xmlgl(&p, &s);
        assert!(inf.empty_rules[0]);
    }

    #[test]
    fn negated_missing_child_is_fine() {
        let (_, s) = summarise(BIB);
        let p = dsl::parse(
            "rule { extract { article as $a { not price } } construct { out { all $a } } }",
        )
        .unwrap();
        let inf = infer_xmlgl(&p, &s);
        assert!(!inf.empty_rules[0], "{}", inf.report.render());
        assert_eq!(inf.root_bounds, vec![vec![1]]);
    }

    #[test]
    fn unsat_predicate_folds_to_empty() {
        let (_, s) = summarise(BIB);
        let p = dsl::parse(
            r#"rule { extract { book { price as $p > "z" and < "a" } }
                      construct { out { all $p } } }"#,
        )
        .unwrap();
        let inf = infer_xmlgl(&p, &s);
        assert!(inf.empty_rules[0], "{}", inf.report.render());
    }

    #[test]
    fn bounds_multiply_down_the_tree() {
        let (_, s) = summarise(BIB);
        // Two books, each with one title and one price: the true binding
        // count is 2, W = 2·2·2 = 8 — looser, but an upper bound.
        let p = dsl::parse(
            "rule { extract { book as $b { title price } } construct { out { all $b } } }",
        )
        .unwrap();
        let inf = infer_xmlgl(&p, &s);
        let b = inf.root_bounds[0][0];
        assert!((2..=8).contains(&b), "bound {b} must cover the 2 bindings");
    }

    #[test]
    fn deep_edges_use_descendant_paths() {
        let (_, s) = summarise("<a><a><b/></a></a>");
        let p = dsl::parse("rule { extract { a as $x { deep b } } construct { out { all $x } } }")
            .unwrap();
        let inf = infer_xmlgl(&p, &s);
        assert!(!inf.empty_rules[0]);
        // Two a-elements can each reach the one b: bound must be ≥ 2.
        assert!(inf.root_bounds[0][0] >= 2);
    }

    #[test]
    fn attribute_and_text_counts() {
        let (_, s) = summarise(BIB);
        let p =
            dsl::parse("rule { extract { book { @year as $y } } construct { out { copy $y } } }")
                .unwrap();
        let inf = infer_xmlgl(&p, &s);
        assert_eq!(inf.cards.bound_for(0, "$y"), Some(2));
        let p = dsl::parse(
            "rule { extract { article { @year as $y } } construct { out { copy $y } } }",
        )
        .unwrap();
        let inf = infer_xmlgl(&p, &s);
        assert!(inf.empty_rules[0]);
    }

    #[test]
    fn planner_starts_with_the_selective_root() {
        let (_, s) = summarise(BIB);
        let p = dsl::parse(
            r#"rule {
                 extract {
                   book { title { text as $t1 } }
                   article { title { text as $t2 } }
                   join $t1 == $t2
                 }
                 construct { out { all $t1 } }
               }"#,
        )
        .unwrap();
        let inf = infer_xmlgl(&p, &s);
        let order = plan_root_order(&p.rules[0], &inf.root_bounds[0]).unwrap();
        // article (1 element) is more selective than book (2).
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn planner_prefers_joined_roots_over_cross_products() {
        // Roots 0 and 2 are joined; root 1 is isolated.
        let p = dsl::parse(
            r#"rule {
                 extract {
                   book { title { text as $a } }
                   article as $m
                   book { title { text as $b } }
                   join $a == $b
                 }
                 construct { out { all $m } }
               }"#,
        )
        .unwrap();
        let order = plan_root_order(&p.rules[0], &[5, 1, 2]).unwrap();
        // Root 1 has the smallest bound and starts; nothing joins to it, so
        // the fallback picks the cheaper joined root, whose partner follows.
        assert_eq!(order, vec![1, 2, 0]);
        let order = plan_root_order(&p.rules[0], &[5, 9, 2]).unwrap();
        // Now start at root 2 (bound 2), then its join partner 0, then 1.
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn single_root_needs_no_plan() {
        let p = dsl::parse("rule { extract { book as $b } construct { out { all $b } } }").unwrap();
        assert_eq!(plan_root_order(&p.rules[0], &[3]), None);
    }
}
