//! # gql-infer — static satisfiability and cardinality analysis
//!
//! The paper assumes queries are checked against a schema before they run;
//! `gql-analyze` covers the case where an explicit DTD or schema graph is at
//! hand. This crate covers every other document: it interprets queries
//! abstractly against the *inferred* structural summary
//! ([`gql_ssdm::Summary`], a DataGuide with per-path counts) and derives
//!
//! * **static emptiness** — [`Code::EmptyUnderSummary`] (GQL014) when a
//!   query provably selects nothing, [`Code::DeadRule`] (GQL015) for
//!   WG-Log rules whose positive observations can never be satisfied, and
//!   [`Code::PathNeverMatches`] (GQL016) for XPath steps that walk off the
//!   summary automaton;
//! * **cardinality upper bounds** per query node, exported as a
//!   [`CardinalityMap`] — the cost facts the planner consumes (the XML-GL
//!   matcher orders its root joins by them, see [`plan_root_order`]).
//!
//! Every claim is an over-approximation of the concrete semantics: a query
//! flagged empty evaluates empty on the summarised document, and no result
//! count ever exceeds its bound. The argument is spelled out in DESIGN.md
//! and enforced end-to-end by `gql-testkit`'s differential oracles.

pub mod fold;
pub mod glq;
pub mod wgq;
pub mod xpq;

use gql_ssdm::diag::Report;

pub use glq::{infer_xmlgl, plan_root_order};
pub use wgq::infer_wglog;
pub use xpq::infer_xpath;

/// One cardinality fact: an upper bound on how many bindings (or result
/// nodes) a query component can produce on the summarised document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardEntry {
    /// Rule index for the rule-based languages; 0 for XPath.
    pub rule: usize,
    /// What the bound is for: a variable (`$v`), an anonymous query node
    /// (`q3`), an XPath step (`step 2 (child::title)`), or `result`.
    pub target: String,
    /// Upper bound on the binding/result count. Saturating arithmetic —
    /// `u64::MAX` reads as "unbounded".
    pub bound: u64,
}

/// The per-query-component cardinality facts produced by an inference run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CardinalityMap {
    entries: Vec<CardEntry>,
}

impl CardinalityMap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, rule: usize, target: impl Into<String>, bound: u64) {
        self.entries.push(CardEntry {
            rule,
            target: target.into(),
            bound,
        });
    }

    pub fn iter(&self) -> impl Iterator<Item = &CardEntry> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The bound recorded for a component, if any.
    pub fn bound_for(&self, rule: usize, target: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.rule == rule && e.target == target)
            .map(|e| e.bound)
    }

    /// The whole-query bound for a rule (the `result` entry).
    pub fn result_bound(&self, rule: usize) -> Option<u64> {
        self.bound_for(rule, "result")
    }

    /// Human-readable rendering for the CLI surfaces: one line per fact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if e.bound == u64::MAX {
                out.push_str(&format!("rule {} {} ≤ ∞\n", e.rule + 1, e.target));
            } else {
                out.push_str(&format!("rule {} {} ≤ {}\n", e.rule + 1, e.target, e.bound));
            }
        }
        out
    }
}

/// Result of abstractly interpreting one query against a summary.
#[derive(Debug, Clone, Default)]
pub struct Inference {
    /// GQL014/GQL015/GQL016 diagnostics (all Warning severity by default).
    pub report: Report,
    /// Cardinality facts for the CLI and the planner.
    pub cards: CardinalityMap,
    /// XML-GL only: per rule, the upper bound for each extract root in
    /// declaration order — the join-ordering facts. Empty for the other
    /// languages.
    pub root_bounds: Vec<Vec<u64>>,
    /// Per rule: this rule provably produces no bindings (XML-GL) or never
    /// fires (WG-Log). Empty for XPath.
    pub empty_rules: Vec<bool>,
    /// The whole query provably produces an empty result: an XPath
    /// node-set with no members, or a WG-Log goal type that is never
    /// available. (Not asserted for XML-GL, whose construct side may emit
    /// a skeleton even with zero bindings — use [`Inference::empty_rules`]
    /// there.)
    pub result_empty: bool,
}

impl Inference {
    /// Whether the analysis proved the whole query result empty.
    pub fn is_statically_empty(&self) -> bool {
        self.result_empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_map_lookup_and_render() {
        let mut m = CardinalityMap::new();
        m.push(0, "$b", 12);
        m.push(0, "result", 24);
        m.push(1, "result", u64::MAX);
        assert_eq!(m.bound_for(0, "$b"), Some(12));
        assert_eq!(m.result_bound(0), Some(24));
        assert_eq!(m.result_bound(2), None);
        assert_eq!(m.len(), 3);
        let text = m.render();
        assert!(text.contains("rule 1 $b ≤ 12"));
        assert!(text.contains("rule 2 result ≤ ∞"));
    }
}
