//! Predicate interval and constant folding.
//!
//! XML-GL predicates are CNF over string comparisons with numeric coercion
//! (`CmpOp::eval` compares numerically when both sides parse as numbers and
//! falls back to lexicographic order otherwise). Folding must respect both
//! interpretations: a predicate is declared unsatisfiable only when *no*
//! string — numeric or not — can pass every clause. Anything we cannot
//! decide stays satisfiable; soundness here means never calling a
//! satisfiable predicate empty.

use gql_ssdm::CmpOp;
use gql_xmlgl::ast::Predicate;

fn num(s: &str) -> Option<f64> {
    s.trim().parse::<f64>().ok().filter(|n| n.is_finite())
}

/// Interval over one ordering, with open/closed endpoints. `None` endpoints
/// are unbounded.
struct Range<'a, T> {
    lo: Option<(T, bool)>, // (value, strict)
    hi: Option<(T, bool)>,
    eq: Vec<&'a str>,
}

impl<T: PartialOrd + Copy> Range<'_, T> {
    fn new() -> Self {
        Range {
            lo: None,
            hi: None,
            eq: Vec::new(),
        }
    }

    fn tighten_lo(&mut self, v: T, strict: bool) {
        match self.lo {
            Some((cur, cs)) if cur > v || (cur == v && cs) => {}
            _ => self.lo = Some((v, strict)),
        }
    }

    fn tighten_hi(&mut self, v: T, strict: bool) {
        match self.hi {
            Some((cur, cs)) if cur < v || (cur == v && cs) => {}
            _ => self.hi = Some((v, strict)),
        }
    }

    /// Whether the open/closed interval `[lo, hi]` is empty. Conservative:
    /// adjacent-but-distinct endpoints count as non-empty.
    fn interval_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Some((lo, ls)), Some((hi, hs))) => lo > hi || (lo == hi && (*ls || *hs)),
            _ => false,
        }
    }

    fn contains(&self, v: T) -> bool {
        if let Some((lo, strict)) = self.lo {
            if v < lo || (v == lo && strict) {
                return false;
            }
        }
        if let Some((hi, strict)) = self.hi {
            if v > hi || (v == hi && strict) {
                return false;
            }
        }
        true
    }
}

/// Decide whether `p` is unsatisfiable: no data string can make it true.
///
/// Only singleton clauses are folded (a disjunction can always escape
/// through its other alternative). The checks:
///
/// * an empty clause (no alternatives) is vacuously false;
/// * two `=` clauses whose constants differ both as numbers and as strings;
/// * `<`/`<=`/`>`/`>=` chains whose numeric interval *and* lexicographic
///   interval are both empty — a data string is compared numerically when
///   it and the constant both parse, lexicographically otherwise, so both
///   orderings must rule it out;
/// * an `=` constant excluded by those same interval pairs.
pub fn predicate_unsat(p: &Predicate) -> bool {
    if p.clauses.iter().any(Vec::is_empty) {
        return true;
    }
    // Three interval views: numeric bounds (apply to numeric data), lex
    // bounds from *non-numeric* constants (apply to every data string —
    // a non-numeric constant always falls back to lexicographic order),
    // and lex bounds from all constants (apply to non-numeric data).
    let mut nrange: Range<'_, f64> = Range::new();
    let mut lnn: Range<'_, &str> = Range::new();
    let mut lrange: Range<'_, &str> = Range::new();
    for clause in &p.clauses {
        let [(op, v)] = clause.as_slice() else {
            continue;
        };
        let n = num(v);
        match op {
            CmpOp::Eq => {
                nrange.eq.push(v);
                lrange.eq.push(v);
            }
            CmpOp::Lt | CmpOp::Le => {
                let strict = *op == CmpOp::Lt;
                match n {
                    Some(n) => nrange.tighten_hi(n, strict),
                    None => lnn.tighten_hi(v.as_str(), strict),
                }
                lrange.tighten_hi(v.as_str(), strict);
            }
            CmpOp::Gt | CmpOp::Ge => {
                let strict = *op == CmpOp::Gt;
                match n {
                    Some(n) => nrange.tighten_lo(n, strict),
                    None => lnn.tighten_lo(v.as_str(), strict),
                }
                lrange.tighten_lo(v.as_str(), strict);
            }
            _ => {}
        }
    }

    // Two pinned constants that no single string satisfies together. `=`
    // passes on numeric equality (when both sides parse) or exact string
    // equality, so constants conflict only when both readings differ.
    for pair in nrange.eq.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a == b {
            continue;
        }
        match (num(a), num(b)) {
            (Some(x), Some(y)) if x == y => {}
            _ => return true,
        }
    }

    // A pinned constant outside the feasible interval. Data equal to a
    // numeric constant is compared numerically against numeric bounds and
    // could be *any* string spelling of that number, so only the numeric
    // interval applies; a non-numeric constant is compared
    // lexicographically against every bound.
    if let Some(&e) = nrange.eq.first() {
        return match num(e) {
            Some(n) => !nrange.contains(n),
            None => !lrange.contains(e),
        };
    }

    // Pure interval emptiness. Numeric data must fit the numeric bounds
    // and lex-satisfy the non-numeric constants; non-numeric data must
    // lex-satisfy everything. Unsat iff both populations are excluded.
    (nrange.interval_empty() || lnn.interval_empty()) && lrange.interval_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_and_open_predicates_are_satisfiable() {
        assert!(!predicate_unsat(&Predicate::always()));
        assert!(!predicate_unsat(&Predicate::cmp(CmpOp::Gt, "10")));
        assert!(!predicate_unsat(
            &Predicate::cmp(CmpOp::Gt, "10").and(CmpOp::Lt, "20")
        ));
        // Real-valued gap: 9 < x < 10 admits 9.5.
        assert!(!predicate_unsat(
            &Predicate::cmp(CmpOp::Gt, "9").and(CmpOp::Lt, "10")
        ));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let p = Predicate {
            clauses: vec![vec![], vec![(CmpOp::Eq, "x".into())]],
        };
        assert!(predicate_unsat(&p));
    }

    #[test]
    fn contradictory_equalities() {
        assert!(predicate_unsat(
            &Predicate::cmp(CmpOp::Eq, "a").and(CmpOp::Eq, "b")
        ));
        assert!(predicate_unsat(
            &Predicate::cmp(CmpOp::Eq, "1").and(CmpOp::Eq, "2")
        ));
        // Numerically equal spellings are compatible.
        assert!(!predicate_unsat(
            &Predicate::cmp(CmpOp::Eq, "20.0").and(CmpOp::Eq, "20")
        ));
    }

    #[test]
    fn empty_numeric_interval() {
        // x > 20 and x < 10: numerically empty, and lexicographically
        // "20" > "10" leaves no room either.
        assert!(predicate_unsat(
            &Predicate::cmp(CmpOp::Gt, "20").and(CmpOp::Lt, "10")
        ));
        // x >= 10 and x <= 10 pins 10 — satisfiable.
        assert!(!predicate_unsat(
            &Predicate::cmp(CmpOp::Ge, "10").and(CmpOp::Le, "10")
        ));
        // x > 10 and x <= 10 is empty both ways.
        assert!(predicate_unsat(
            &Predicate::cmp(CmpOp::Gt, "10").and(CmpOp::Le, "10")
        ));
    }

    #[test]
    fn empty_lexicographic_interval() {
        // No numeric reading exists; every data string is ordered
        // lexicographically, and nothing is above "z" yet below "a".
        assert!(predicate_unsat(
            &Predicate::cmp(CmpOp::Gt, "z").and(CmpOp::Lt, "a")
        ));
    }

    #[test]
    fn lex_feasible_gap_is_satisfiable() {
        // Non-numeric bounds leave a lexicographic gap ("4x" sits between
        // "3x" and "5x"), so this must not fold even though no number
        // satisfies it.
        assert!(!predicate_unsat(
            &Predicate::cmp(CmpOp::Gt, "3x").and(CmpOp::Lt, "5x")
        ));
    }

    #[test]
    fn equality_outside_interval() {
        assert!(predicate_unsat(
            &Predicate::cmp(CmpOp::Eq, "5").and(CmpOp::Gt, "10")
        ));
        assert!(!predicate_unsat(
            &Predicate::cmp(CmpOp::Eq, "15").and(CmpOp::Gt, "10")
        ));
        // Non-numeric pinned constant against lexicographic bounds.
        assert!(predicate_unsat(
            &Predicate::cmp(CmpOp::Eq, "apple").and(CmpOp::Gt, "banana")
        ));
        assert!(!predicate_unsat(
            &Predicate::cmp(CmpOp::Eq, "cherry").and(CmpOp::Gt, "banana")
        ));
    }

    #[test]
    fn disjunctions_never_fold() {
        // (= a or = b) and (= a): the disjunction can satisfy = a.
        let p = Predicate::cmp(CmpOp::Eq, "a")
            .or(CmpOp::Eq, "b")
            .and(CmpOp::Eq, "a");
        assert!(!predicate_unsat(&p));
    }

    #[test]
    fn contains_and_startswith_are_opaque() {
        assert!(!predicate_unsat(
            &Predicate::cmp(CmpOp::Contains, "x").and(CmpOp::Eq, "y")
        ));
    }
}
