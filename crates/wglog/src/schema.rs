//! WG-Log schema graphs.
//!
//! WG-Log is the *schema-aware* of the paper's two languages: its queries
//! are drawn against a schema, which lets them stay smaller than their
//! untyped equivalents (the editor can offer the `offers` relation because
//! the schema declares it). This module provides:
//!
//! * the schema graph model ([`WgSchema`]): object types with attribute
//!   declarations and typed, multiplicity-annotated relations;
//! * schema **extraction** from an instance (the loader's world is
//!   schema-free XML, so WG-Log's schema is recovered from data);
//! * validation of instances against a schema;
//! * static checking of rules against a schema — the feature XML-GL, being
//!   schema-optional, deliberately does without (comparison point in T1).

use std::collections::{HashMap, HashSet};

use crate::instance::Instance;
use crate::rule::{Color, LabelTest, Rule, TypeTest};

/// Relation multiplicity as observed/declared: whether one source object
/// may have several targets, mirroring the 1 / n edge annotations of the
/// figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelMult {
    One,
    Many,
}

/// A relation declaration: `from --label--> to`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelDecl {
    pub from: String,
    pub label: String,
    pub to: String,
}

/// One object-type declaration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TypeDecl {
    /// Attribute names this type may carry.
    pub attrs: HashSet<String>,
}

/// A WG-Log schema graph.
#[derive(Debug, Clone, Default)]
pub struct WgSchema {
    types: HashMap<String, TypeDecl>,
    relations: HashMap<RelDecl, RelMult>,
}

impl WgSchema {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn declare_type(&mut self, name: &str, attrs: &[&str]) {
        let decl = self.types.entry(name.to_string()).or_default();
        decl.attrs.extend(attrs.iter().map(|a| a.to_string()));
    }

    pub fn declare_relation(&mut self, from: &str, label: &str, to: &str, mult: RelMult) {
        self.relations.insert(
            RelDecl {
                from: from.to_string(),
                label: label.to_string(),
                to: to.to_string(),
            },
            mult,
        );
    }

    pub fn has_type(&self, name: &str) -> bool {
        self.types.contains_key(name)
    }

    pub fn type_decl(&self, name: &str) -> Option<&TypeDecl> {
        self.types.get(name)
    }

    pub fn relation(&self, from: &str, label: &str, to: &str) -> Option<RelMult> {
        self.relations
            .get(&RelDecl {
                from: from.into(),
                label: label.into(),
                to: to.into(),
            })
            .copied()
    }

    /// Relations leaving a type — what an editor would offer while drawing.
    pub fn relations_from<'a>(
        &'a self,
        ty: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a str, RelMult)> {
        self.relations
            .iter()
            .filter(move |(r, _)| r.from == ty)
            .map(|(r, m)| (r.label.as_str(), r.to.as_str(), *m))
    }

    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Recover a schema from an instance: every object type with the union
    /// of its attribute names; every (from-type, label, to-type) edge with
    /// multiplicity Many iff some source object has two such targets.
    pub fn extract(db: &Instance) -> WgSchema {
        let mut schema = WgSchema::new();
        for (_, obj) in db.objects() {
            let decl = schema.types.entry(obj.ty.clone()).or_default();
            decl.attrs.extend(obj.attrs.iter().map(|(n, _)| n.clone()));
        }
        // Count per (source object, label, to-type) to derive multiplicity.
        let mut counts: HashMap<(crate::ObjId, String, String), usize> = HashMap::new();
        for e in db.edges() {
            let to_ty = db.object(e.to).ty.clone();
            *counts.entry((e.from, e.label.clone(), to_ty)).or_default() += 1;
        }
        for ((from_obj, label, to_ty), count) in counts {
            let from_ty = db.object(from_obj).ty.clone();
            let decl = RelDecl {
                from: from_ty,
                label,
                to: to_ty,
            };
            let mult = if count > 1 {
                RelMult::Many
            } else {
                RelMult::One
            };
            schema
                .relations
                .entry(decl)
                .and_modify(|m| {
                    if mult == RelMult::Many {
                        *m = RelMult::Many;
                    }
                })
                .or_insert(mult);
        }
        schema
    }

    /// Validate an instance against the schema; returns violations.
    pub fn validate(&self, db: &Instance) -> Vec<String> {
        let mut v = Vec::new();
        for (_, obj) in db.objects() {
            match self.types.get(&obj.ty) {
                None => v.push(format!("object type '{}' is not declared", obj.ty)),
                Some(decl) => {
                    for (a, _) in &obj.attrs {
                        if !decl.attrs.contains(a) {
                            v.push(format!("attribute '{a}' not declared on type '{}'", obj.ty));
                        }
                    }
                }
            }
        }
        // Relation conformance + multiplicity.
        let mut per_source: HashMap<(crate::ObjId, &str, &str), usize> = HashMap::new();
        for e in db.edges() {
            let from_ty = db.object(e.from).ty.as_str();
            let to_ty = db.object(e.to).ty.as_str();
            match self.relation(from_ty, &e.label, to_ty) {
                None => v.push(format!(
                    "relation {from_ty} -{}-> {to_ty} is not declared",
                    e.label
                )),
                Some(_) => {
                    *per_source.entry((e.from, &e.label, to_ty)).or_default() += 1;
                }
            }
        }
        for ((from_obj, label, to_ty), count) in per_source {
            let from_ty = db.object(from_obj).ty.as_str();
            if count > 1 && self.relation(from_ty, label, to_ty) == Some(RelMult::One) {
                v.push(format!(
                    "object of type '{from_ty}' has {count} '{label}' edges to '{to_ty}' but the relation is declared single-valued"
                ));
            }
        }
        v
    }

    /// Statically check a rule against the schema: query node types must be
    /// declared, constraints must use declared attributes, and concrete
    /// query edge labels must be declared between the endpoint types.
    /// Construct parts may extend the schema and are not checked.
    pub fn check_rule(&self, rule: &Rule) -> Vec<String> {
        let mut v = Vec::new();
        for id in rule.query_nodes() {
            let n = rule.node(id);
            match &n.test {
                TypeTest::Any => {}
                TypeTest::Type(t) => match self.types.get(t) {
                    None => v.push(format!("query node ${} uses undeclared type '{t}'", n.var)),
                    Some(decl) => {
                        for c in &n.constraints {
                            if !decl.attrs.contains(&c.attr) {
                                v.push(format!(
                                    "constraint on ${} uses undeclared attribute '{}'",
                                    n.var, c.attr
                                ));
                            }
                        }
                    }
                },
            }
        }
        for e in &rule.edges {
            if e.color != Color::Query || e.negated {
                continue;
            }
            let LabelTest::Label(label) = &e.label else {
                continue;
            };
            let (from, to) = (rule.node(e.from), rule.node(e.to));
            if let (TypeTest::Type(ft), TypeTest::Type(tt)) = (&from.test, &to.test) {
                if self.relation(ft, label, tt).is_none() {
                    v.push(format!(
                        "edge ${} -{label}-> ${} has no declared relation {ft} -{label}-> {tt}",
                        from.var, to.var
                    ));
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Object;
    use crate::rule::{CmpOp, RuleBuilder};

    fn city_db() -> Instance {
        let mut db = Instance::new();
        let r = db.add_object(Object::new("restaurant"));
        db.add_attr(r, "category", "italian");
        let m1 = db.add_object(Object::new("menu"));
        let m2 = db.add_object(Object::new("menu"));
        db.add_attr(m1, "price", "20");
        db.add_attr(m2, "price", "30");
        db.add_edge(r, "offers", m1);
        db.add_edge(r, "offers", m2);
        let h = db.add_object(Object::new("hotel"));
        db.add_edge(r, "near", h);
        db
    }

    #[test]
    fn extraction() {
        let s = WgSchema::extract(&city_db());
        assert_eq!(s.type_count(), 3);
        assert!(s
            .type_decl("restaurant")
            .unwrap()
            .attrs
            .contains("category"));
        assert_eq!(
            s.relation("restaurant", "offers", "menu"),
            Some(RelMult::Many)
        );
        assert_eq!(
            s.relation("restaurant", "near", "hotel"),
            Some(RelMult::One)
        );
        assert_eq!(s.relation("menu", "offers", "restaurant"), None);
        assert_eq!(s.relation_count(), 2);
    }

    #[test]
    fn validation_accepts_own_instance() {
        let db = city_db();
        let s = WgSchema::extract(&db);
        assert!(s.validate(&db).is_empty());
    }

    #[test]
    fn validation_rejects_undeclared() {
        let db = city_db();
        let s = WgSchema::extract(&db);
        let mut other = db.clone();
        let x = other.add_object(Object::new("spaceship"));
        other.add_attr(x, "warp", "9");
        let v = s.validate(&other);
        assert!(v.iter().any(|m| m.contains("spaceship")));
        let mut third = db.clone();
        let r = third.objects_of_type("restaurant")[0];
        third.add_attr(r, "zzz", "1");
        assert!(s.validate(&third).iter().any(|m| m.contains("'zzz'")));
    }

    #[test]
    fn multiplicity_violation() {
        let mut s = WgSchema::new();
        s.declare_type("restaurant", &["category"]);
        s.declare_type("menu", &["price"]);
        s.declare_type("hotel", &[]);
        s.declare_relation("restaurant", "offers", "menu", RelMult::One);
        s.declare_relation("restaurant", "near", "hotel", RelMult::One);
        let v = s.validate(&city_db());
        assert!(v.iter().any(|m| m.contains("single-valued")), "{v:?}");
    }

    #[test]
    fn rule_checking() {
        let s = WgSchema::extract(&city_db());
        let good = RuleBuilder::new()
            .query_node("r", "restaurant")
            .constraint("category", CmpOp::Eq, "italian")
            .query_node("m", "menu")
            .query_edge("r", "offers", "m")
            .unwrap()
            .construct_node("l", "rest-list")
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        assert!(s.check_rule(&good).is_empty());

        let bad_type = RuleBuilder::new()
            .query_node("x", "pizzeria")
            .build()
            .unwrap();
        assert!(s.check_rule(&bad_type)[0].contains("pizzeria"));

        let bad_attr = RuleBuilder::new()
            .query_node("r", "restaurant")
            .constraint("rating", CmpOp::Ge, "4")
            .build()
            .unwrap();
        assert!(s.check_rule(&bad_attr)[0].contains("rating"));

        let bad_rel = RuleBuilder::new()
            .query_node("m", "menu")
            .query_node("h", "hotel")
            .query_edge("m", "offers", "h")
            .unwrap()
            .build()
            .unwrap();
        assert!(s.check_rule(&bad_rel)[0].contains("no declared relation"));
    }

    #[test]
    fn editor_affordances() {
        let s = WgSchema::extract(&city_db());
        let from_restaurant: Vec<_> = s.relations_from("restaurant").collect();
        assert_eq!(from_restaurant.len(), 2);
        assert!(from_restaurant
            .iter()
            .any(|(l, t, _)| *l == "offers" && *t == "menu"));
    }
}
