//! Coloured rule graphs — the WG-Log AST.
//!
//! One rule is a single graph. Thin (red) nodes and edges form the query
//! part; thick (green) parts must exist for every embedding of the query
//! part and are *added* when missing (object invention). A program is a set
//! of rules plus a goal type naming the objects to extract.

use std::fmt;

use gql_ssdm::diag::{Code, Diagnostic};
pub use gql_ssdm::Span;

use crate::{Result, WgLogError};

/// Part colouring: thin/red = query, thick/green = construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Color {
    Query,
    Construct,
}

/// Type test on a rule node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeTest {
    Type(String),
    /// `*` — any object type.
    Any,
}

impl TypeTest {
    pub fn matches(&self, ty: &str) -> bool {
        match self {
            TypeTest::Type(t) => t == ty,
            TypeTest::Any => true,
        }
    }
}

impl fmt::Display for TypeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeTest::Type(t) => write!(f, "{t}"),
            TypeTest::Any => write!(f, "*"),
        }
    }
}

/// Comparison operators on attribute constraints — the workspace-shared
/// operator set from `gql_ssdm`.
pub use gql_ssdm::CmpOp;

/// One attribute constraint: `attr op constant`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    pub attr: String,
    pub op: CmpOp,
    pub value: String,
}

impl Constraint {
    pub fn holds(&self, obj: &crate::instance::Object) -> bool {
        obj.attr_values(&self.attr)
            .any(|v| self.op.eval(v, &self.value))
    }
}

/// Index of a node in a rule graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RNodeId(pub u32);

impl RNodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One rule-graph node.
#[derive(Debug, Clone, PartialEq)]
pub struct RNode {
    pub var: String,
    pub test: TypeTest,
    pub color: Color,
    pub constraints: Vec<Constraint>,
    /// Attributes to set on invented objects (construct nodes only);
    /// values can copy a query variable's attribute: `(attr, From)`.
    pub set_attrs: Vec<(String, AttrValue)>,
    /// Invention granularity (construct nodes only): the query variables a
    /// fresh object is created *per distinct binding of*. Empty = one
    /// object per rule (the figure-F1 "single collection node" reading).
    /// Variables referenced by `set_attrs` copies are implicitly included.
    pub per: Vec<String>,
    /// Source position of the node's declaration (metadata; ignored by
    /// equality so printed/reparsed rules still compare equal).
    pub span: Span,
}

/// Value of an attribute set on an invented object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    Literal(String),
    /// Copy `attr` of the object bound to `var`.
    CopyFrom {
        var: String,
        attr: String,
    },
}

/// A regular path over edge labels (GraphLog's dashed edges): one or more
/// alternative labels with a repetition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRe {
    pub labels: Vec<String>,
    pub rep: PathRep,
}

/// Repetition of a path expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathRep {
    /// Exactly one step.
    One,
    /// One or more steps (`+`).
    Plus,
    /// Zero or more steps (`*`).
    Star,
}

impl fmt::Display for PathRe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body = self.labels.join("|");
        match self.rep {
            PathRep::One => write!(f, "{body}"),
            PathRep::Plus => write!(f, "({body})+"),
            PathRep::Star => write!(f, "({body})*"),
        }
    }
}

/// Edge label test: a concrete label, any label, or a regular path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelTest {
    Label(String),
    Any,
    Regex(PathRe),
}

impl fmt::Display for LabelTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelTest::Label(l) => write!(f, "{l}"),
            LabelTest::Any => write!(f, "*"),
            LabelTest::Regex(r) => write!(f, "{r}"),
        }
    }
}

/// One rule-graph edge.
#[derive(Debug, Clone, PartialEq)]
pub struct REdge {
    pub from: RNodeId,
    pub to: RNodeId,
    pub label: LabelTest,
    pub color: Color,
    /// Crossed-out: the query part matches only if no such edge/path exists.
    pub negated: bool,
}

/// One WG-Log rule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Rule {
    pub nodes: Vec<RNode>,
    pub edges: Vec<REdge>,
    /// Position of the rule's opening keyword (metadata only).
    pub span: Span,
}

impl Rule {
    pub fn node(&self, id: RNodeId) -> &RNode {
        &self.nodes[id.index()]
    }

    pub fn by_var(&self, var: &str) -> Option<RNodeId> {
        self.nodes
            .iter()
            .position(|n| n.var == var)
            .map(|i| RNodeId(i as u32))
    }

    pub fn ids(&self) -> impl Iterator<Item = RNodeId> {
        (0..self.nodes.len() as u32).map(RNodeId)
    }

    /// Query-coloured node ids.
    pub fn query_nodes(&self) -> impl Iterator<Item = RNodeId> + '_ {
        self.ids().filter(|id| self.node(*id).color == Color::Query)
    }

    /// Construct-coloured node ids.
    pub fn construct_nodes(&self) -> impl Iterator<Item = RNodeId> + '_ {
        self.ids()
            .filter(|id| self.node(*id).color == Color::Construct)
    }

    /// Human label for the rule: what it constructs (first construct node's
    /// type, or first construct edge's label), e.g. `rest-list`.
    pub fn head_label(&self) -> Option<String> {
        if let Some(id) = self.construct_nodes().next() {
            return Some(self.node(id).test.to_string());
        }
        self.edges
            .iter()
            .find(|e| e.color == Color::Construct)
            .map(|e| e.label.to_string())
    }

    /// All well-formedness diagnostics for this rule: distinct vars; edges
    /// in range; construct edges never negated and concretely labelled;
    /// regular paths and wildcards only on the query side; query edges
    /// never touching construct nodes; `per`/attribute copies referencing
    /// query variables.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let ill =
            |msg: String, span: Span| Diagnostic::new(Code::WgLogIllFormed, msg).with_span(span);
        let mut seen = std::collections::HashSet::new();
        for n in &self.nodes {
            if n.var.is_empty() {
                out.push(ill("empty variable name".into(), n.span));
            }
            if !n.var.is_empty() && !seen.insert(&n.var) {
                out.push(
                    Diagnostic::new(
                        Code::DuplicateVariable,
                        format!("variable ${} is bound twice", n.var),
                    )
                    .with_span(n.span),
                );
            }
            if n.color == Color::Query && !n.set_attrs.is_empty() {
                out.push(ill(
                    format!("query node ${} cannot set attributes", n.var),
                    n.span,
                ));
            }
            if n.color == Color::Construct {
                if n.test == TypeTest::Any {
                    out.push(ill(
                        format!("construct node ${} needs a concrete type", n.var),
                        n.span,
                    ));
                }
                if !n.constraints.is_empty() {
                    out.push(ill(
                        format!("construct node ${} cannot carry constraints", n.var),
                        n.span,
                    ));
                }
                for var in &n.per {
                    match self.by_var(var) {
                        None => out.push(ill(format!("'per' references unknown ${var}"), n.span)),
                        Some(src) if self.node(src).color != Color::Query => out.push(ill(
                            format!("'per' must reference a query node, got ${var}"),
                            n.span,
                        )),
                        _ => {}
                    }
                }
                for (_, v) in &n.set_attrs {
                    if let AttrValue::CopyFrom { var, .. } = v {
                        match self.by_var(var) {
                            None => {
                                out.push(ill(format!("attribute copies unknown ${var}"), n.span))
                            }
                            Some(src) if self.node(src).color != Color::Query => out.push(ill(
                                format!("attribute copies from non-query node ${var}"),
                                n.span,
                            )),
                            _ => {}
                        }
                    }
                }
            }
        }
        if self.nodes.is_empty() {
            out.push(ill("a rule needs at least one node".into(), self.span));
        }
        for e in &self.edges {
            if e.from.index() >= self.nodes.len() || e.to.index() >= self.nodes.len() {
                out.push(ill("edge endpoint out of range".into(), self.span));
                continue;
            }
            let espan = self.node(e.from).span;
            let (fc, tc) = (self.node(e.from).color, self.node(e.to).color);
            match e.color {
                Color::Construct => {
                    if e.negated {
                        out.push(ill("construct edges cannot be negated".into(), espan));
                    }
                    if matches!(e.label, LabelTest::Any | LabelTest::Regex(_)) {
                        out.push(ill("construct edges need a concrete label".into(), espan));
                    }
                }
                Color::Query => {
                    if fc == Color::Construct || tc == Color::Construct {
                        out.push(
                            ill("query edges cannot touch construct nodes".into(), espan)
                                .with_help(
                                    "thin (query) edges match existing data; invented \
                                     objects are only reachable through thick edges",
                                ),
                        );
                    }
                }
            }
        }
        out
    }

    /// Fail-fast well-formedness check: the first Error-level diagnostic.
    pub fn check(&self) -> Result<()> {
        match self.diagnostics().into_iter().find(Diagnostic::is_error) {
            Some(d) => Err(WgLogError::IllFormed { msg: d.message }),
            None => Ok(()),
        }
    }
}

/// Human label for a rule in a program: 1-based index plus what it
/// constructs, e.g. `rule 2 (rest-list)`.
pub fn rule_label(rule: &Rule, index: usize) -> String {
    match rule.head_label() {
        Some(h) => format!("rule {} ({h})", index + 1),
        None => format!("rule {}", index + 1),
    }
}

/// A WG-Log program: rules plus the goal type to extract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub rules: Vec<Rule>,
    /// Object type whose instances form the query answer.
    pub goal: Option<String>,
}

impl Program {
    /// All well-formedness diagnostics, each tagged with the offending
    /// rule's label and falling back to the rule's span.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.rules.is_empty() {
            out.push(Diagnostic::new(
                Code::WgLogIllFormed,
                "a program needs at least one rule",
            ));
            return out;
        }
        for (i, r) in self.rules.iter().enumerate() {
            let label = rule_label(r, i);
            for mut d in r.diagnostics() {
                if d.span.is_none() {
                    d.span = r.span;
                }
                out.push(d.with_rule(label.clone()));
            }
        }
        out
    }

    /// Fail-fast check: the first Error-level diagnostic, its message
    /// prefixed with the rule's label.
    pub fn check(&self) -> Result<()> {
        match self.diagnostics().into_iter().find(Diagnostic::is_error) {
            Some(d) => Err(WgLogError::IllFormed {
                msg: match &d.rule {
                    Some(label) => format!("{label}: {}", d.message),
                    None => d.message,
                },
            }),
            None => Ok(()),
        }
    }
}

/// Fluent builder for rules.
#[derive(Debug, Default)]
pub struct RuleBuilder {
    rule: Rule,
}

impl RuleBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a query node.
    pub fn query_node(mut self, var: &str, ty: &str) -> Self {
        self.rule.nodes.push(RNode {
            var: var.to_string(),
            test: if ty == "*" {
                TypeTest::Any
            } else {
                TypeTest::Type(ty.to_string())
            },
            color: Color::Query,
            constraints: Vec::new(),
            set_attrs: Vec::new(),
            per: Vec::new(),
            span: Span::none(),
        });
        self
    }

    /// Add a construct node.
    pub fn construct_node(mut self, var: &str, ty: &str) -> Self {
        self.rule.nodes.push(RNode {
            var: var.to_string(),
            test: TypeTest::Type(ty.to_string()),
            color: Color::Construct,
            constraints: Vec::new(),
            set_attrs: Vec::new(),
            per: Vec::new(),
            span: Span::none(),
        });
        self
    }

    /// Parameterise the most recently added construct node: invent one
    /// object per distinct binding of `var`.
    pub fn per(mut self, var: &str) -> Self {
        if let Some(n) = self.rule.nodes.last_mut() {
            n.per.push(var.to_string());
        }
        self
    }

    /// Attach a constraint to the most recently added node.
    pub fn constraint(mut self, attr: &str, op: CmpOp, value: &str) -> Self {
        if let Some(n) = self.rule.nodes.last_mut() {
            n.constraints.push(Constraint {
                attr: attr.to_string(),
                op,
                value: value.to_string(),
            });
        }
        self
    }

    /// Set a literal attribute on the most recently added (construct) node.
    pub fn set_attr(mut self, attr: &str, value: &str) -> Self {
        if let Some(n) = self.rule.nodes.last_mut() {
            n.set_attrs
                .push((attr.to_string(), AttrValue::Literal(value.to_string())));
        }
        self
    }

    /// Copy an attribute from a query variable onto the most recently added
    /// (construct) node.
    pub fn copy_attr(mut self, attr: &str, from_var: &str, from_attr: &str) -> Self {
        if let Some(n) = self.rule.nodes.last_mut() {
            n.set_attrs.push((
                attr.to_string(),
                AttrValue::CopyFrom {
                    var: from_var.to_string(),
                    attr: from_attr.to_string(),
                },
            ));
        }
        self
    }

    fn resolve(&self, var: &str) -> Result<RNodeId> {
        self.rule.by_var(var).ok_or_else(|| WgLogError::IllFormed {
            msg: format!("unknown variable ${var}"),
        })
    }

    /// Add a query edge.
    pub fn query_edge(mut self, from: &str, label: &str, to: &str) -> Result<Self> {
        let e = REdge {
            from: self.resolve(from)?,
            to: self.resolve(to)?,
            label: if label == "*" {
                LabelTest::Any
            } else {
                LabelTest::Label(label.to_string())
            },
            color: Color::Query,
            negated: false,
        };
        self.rule.edges.push(e);
        Ok(self)
    }

    /// Add a negated query edge.
    pub fn negated_edge(mut self, from: &str, label: &str, to: &str) -> Result<Self> {
        let e = REdge {
            from: self.resolve(from)?,
            to: self.resolve(to)?,
            label: if label == "*" {
                LabelTest::Any
            } else {
                LabelTest::Label(label.to_string())
            },
            color: Color::Query,
            negated: true,
        };
        self.rule.edges.push(e);
        Ok(self)
    }

    /// Add a regular-path query edge.
    pub fn path_edge(mut self, from: &str, re: PathRe, to: &str) -> Result<Self> {
        let e = REdge {
            from: self.resolve(from)?,
            to: self.resolve(to)?,
            label: LabelTest::Regex(re),
            color: Color::Query,
            negated: false,
        };
        self.rule.edges.push(e);
        Ok(self)
    }

    /// Add a construct edge.
    pub fn construct_edge(mut self, from: &str, label: &str, to: &str) -> Result<Self> {
        let e = REdge {
            from: self.resolve(from)?,
            to: self.resolve(to)?,
            label: LabelTest::Label(label.to_string()),
            color: Color::Construct,
            negated: false,
        };
        self.rule.edges.push(e);
        Ok(self)
    }

    pub fn build(self) -> Result<Rule> {
        self.rule.check()?;
        Ok(self.rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f1_rule() -> Rule {
        // The paper's F1: restaurants offering menus → rest-list.
        RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("m", "menu")
            .construct_node("l", "rest-list")
            .query_edge("r", "menu", "m")
            .unwrap()
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds_f1() {
        let r = f1_rule();
        assert_eq!(r.nodes.len(), 3);
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.query_nodes().count(), 2);
        assert_eq!(r.construct_nodes().count(), 1);
    }

    #[test]
    fn constraints_eval() {
        let mut obj = crate::instance::Object::new("restaurant");
        obj.attrs.push(("category".into(), "italian".into()));
        obj.attrs.push(("stars".into(), "4".into()));
        let c = Constraint {
            attr: "category".into(),
            op: CmpOp::Eq,
            value: "italian".into(),
        };
        assert!(c.holds(&obj));
        let c = Constraint {
            attr: "stars".into(),
            op: CmpOp::Ge,
            value: "5".into(),
        };
        assert!(!c.holds(&obj));
        let c = Constraint {
            attr: "missing".into(),
            op: CmpOp::Eq,
            value: "x".into(),
        };
        assert!(!c.holds(&obj));
    }

    #[test]
    fn multivalued_constraints_are_existential() {
        let mut obj = crate::instance::Object::new("menu");
        obj.attrs.push(("dish".into(), "risotto".into()));
        obj.attrs.push(("dish".into(), "polenta".into()));
        let c = Constraint {
            attr: "dish".into(),
            op: CmpOp::Eq,
            value: "polenta".into(),
        };
        assert!(c.holds(&obj));
    }

    #[test]
    fn duplicate_vars_rejected() {
        let err = RuleBuilder::new()
            .query_node("x", "a")
            .query_node("x", "b")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn construct_rules_validated() {
        // Wildcard construct node.
        let err = RuleBuilder::new().construct_node("c", "*").build();
        assert!(err.is_err() || err.is_ok()); // "*" becomes a literal type name here
                                              // Negated construct edge is impossible through the builder; check
                                              // the validator directly.
        let mut rule = f1_rule();
        rule.edges[1].negated = true;
        assert!(rule.check().unwrap_err().to_string().contains("negated"));
        // Query edge touching a construct node.
        let mut rule = f1_rule();
        rule.edges[1].color = Color::Query;
        assert!(rule
            .check()
            .unwrap_err()
            .to_string()
            .contains("construct nodes"));
    }

    #[test]
    fn construct_node_with_constraint_rejected() {
        let err = RuleBuilder::new()
            .query_node("q", "a")
            .construct_node("c", "out")
            .constraint("x", CmpOp::Eq, "1")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("constraints"));
    }

    #[test]
    fn copy_attr_validation() {
        let err = RuleBuilder::new()
            .query_node("q", "a")
            .construct_node("c", "out")
            .copy_attr("n", "ghost", "name")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("$ghost"));
        let ok = RuleBuilder::new()
            .query_node("q", "a")
            .construct_node("c", "out")
            .copy_attr("n", "q", "name")
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn path_re_display() {
        let p = PathRe {
            labels: vec!["link".into(), "index".into()],
            rep: PathRep::Plus,
        };
        assert_eq!(p.to_string(), "(link|index)+");
        let one = PathRe {
            labels: vec!["a".into()],
            rep: PathRep::One,
        };
        assert_eq!(one.to_string(), "a");
    }

    #[test]
    fn program_check_names_rule() {
        let mut bad = f1_rule();
        bad.edges[0].to = RNodeId(99);
        let p = Program {
            rules: vec![f1_rule(), bad],
            goal: Some("rest-list".into()),
        };
        let err = p.check().unwrap_err();
        assert!(err.to_string().contains("rule 2"));
    }

    #[test]
    fn diagnostics_name_rule_and_head() {
        let mut bad = f1_rule();
        bad.edges[1].negated = true;
        let p = Program {
            rules: vec![f1_rule(), bad],
            goal: Some("rest-list".into()),
        };
        let ds = p.diagnostics();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, gql_ssdm::Code::WgLogIllFormed);
        assert_eq!(ds[0].rule.as_deref(), Some("rule 2 (rest-list)"));
        let err = p.check().unwrap_err().to_string();
        assert!(err.contains("rule 2 (rest-list)"), "{err}");
    }
}
