//! Conversion of WG-Log rules to renderable diagrams.
//!
//! The figure convention: one graph per rule, rounded boxes for complex
//! objects, thin solid edges for the query part, thick edges for the
//! construct part, dashed edges for regular paths, a crossed label for
//! negation. (The original uses red/green colouring; line weight carries
//! the same bit in our monochrome renderers, exactly as the paper's own
//! printed figures fall back to thin/thick.)

use gql_layout::{Diagram, EdgeSpec, EdgeStyle, NodeSpec, Shape};
use gql_vgraph::NodeIx;

use crate::rule::{AttrValue, Color, LabelTest, Rule};

/// Build a diagram of one rule.
pub fn rule_diagram(rule: &Rule) -> Diagram {
    let mut d = Diagram::new();
    let nodes: Vec<NodeIx> = rule
        .nodes
        .iter()
        .map(|n| {
            let shape = if n.color == Color::Construct {
                Shape::RoundedBox
            } else {
                Shape::Box
            };
            let mut spec = NodeSpec::new(format!("{}: {}", n.var, n.test), shape);
            let mut notes: Vec<String> = n
                .constraints
                .iter()
                .map(|c| format!("{} {} \"{}\"", c.attr, c.op.symbol(), c.value))
                .collect();
            for (attr, v) in &n.set_attrs {
                match v {
                    AttrValue::Literal(s) => notes.push(format!("{attr} := \"{s}\"")),
                    AttrValue::CopyFrom { var, attr: a } => {
                        notes.push(format!("{attr} := ${var}.{a}"))
                    }
                }
            }
            if !notes.is_empty() {
                spec = spec.with_sublabel(notes.join(", "));
            }
            d.add_node(spec)
        })
        .collect();
    for e in &rule.edges {
        let style = match (&e.label, e.color) {
            (LabelTest::Regex(_), _) => EdgeStyle::Dashed,
            (_, Color::Construct) => EdgeStyle::Thick,
            (_, Color::Query) => EdgeStyle::Solid,
        };
        let mut label = e.label.to_string();
        if e.negated {
            label = format!("✗ {label}");
        }
        d.add_edge(
            nodes[e.from.index()],
            nodes[e.to.index()],
            EdgeSpec::labelled(label, style),
        );
    }
    d
}

/// Render a rule straight to SVG with default layout options.
pub fn rule_to_svg(rule: &Rule) -> String {
    let d = rule_diagram(rule);
    let layout = gql_layout::layout(&d, &gql_layout::LayoutOptions::default());
    gql_layout::render::to_svg(&d, &layout)
}

/// Render a rule to ASCII art with default layout options.
pub fn rule_to_ascii(rule: &Rule) -> String {
    let d = rule_diagram(rule);
    let layout = gql_layout::layout(&d, &gql_layout::LayoutOptions::default());
    gql_layout::render::to_ascii(&d, &layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{CmpOp, PathRe, PathRep, RuleBuilder};

    fn sample() -> Rule {
        RuleBuilder::new()
            .query_node("r", "restaurant")
            .constraint("category", CmpOp::Eq, "italian")
            .query_node("m", "menu")
            .query_edge("r", "offers", "m")
            .unwrap()
            .negated_edge("r", "closed", "m")
            .unwrap()
            .path_edge(
                "r",
                PathRe {
                    labels: vec!["near".into()],
                    rep: PathRep::Plus,
                },
                "m",
            )
            .unwrap()
            .construct_node("l", "rest-list")
            .copy_attr("city", "r", "city")
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn diagram_shape() {
        let d = rule_diagram(&sample());
        assert_eq!(d.node_count(), 3);
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn svg_distinguishes_parts() {
        let svg = rule_to_svg(&sample());
        assert!(svg.contains("rx=\"8\"")); // rounded construct node
        assert!(svg.contains("stroke-width=\"3\"")); // thick construct edge
        assert!(svg.contains("stroke-dasharray")); // regular path edge
        assert!(svg.contains("✗ closed")); // negation marker
        assert!(svg.contains("member"));
    }

    #[test]
    fn ascii_renders() {
        let text = rule_to_ascii(&sample());
        assert!(text.contains("[r: restaurant]"));
        assert!(text.contains("[l: rest-list]"));
    }
}
