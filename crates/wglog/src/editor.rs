//! The editor simulation for WG-Log rule graphs.
//!
//! WG-Log is the schema-*aware* language: the paper emphasises that queries
//! are drawn against a schema, which keeps them small because the editor
//! can offer the declared relations while drawing. This module keeps that
//! workflow as an API — gestures ([`EditOp`]) validated in context, undo,
//! schema-derived affordances ([`Editor::suggest_relations`]), and a final
//! [`Editor::finish`] producing a checked [`Rule`].

use crate::rule::{
    AttrValue, CmpOp, Color, Constraint, LabelTest, PathRe, REdge, RNode, RNodeId, Rule, TypeTest,
};
use crate::schema::WgSchema;
use crate::{Result, WgLogError};

/// One editing gesture on the single coloured rule graph.
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// Drop a thin (query) node.
    AddQueryNode { var: String, ty: String },
    /// Drop a thick (construct) node.
    AddConstructNode { var: String, ty: String },
    /// Draw a thin edge.
    AddQueryEdge {
        from: String,
        label: String,
        to: String,
    },
    /// Draw a crossed-out (negated) thin edge.
    AddNegatedEdge {
        from: String,
        label: String,
        to: String,
    },
    /// Draw a dashed regular-path edge.
    AddPathEdge {
        from: String,
        re: PathRe,
        to: String,
    },
    /// Draw a thick (construct) edge.
    AddConstructEdge {
        from: String,
        label: String,
        to: String,
    },
    /// Write a constraint next to a query node.
    AddConstraint {
        var: String,
        attr: String,
        op: CmpOp,
        value: String,
    },
    /// Parameterise invention of a construct node.
    AddPer { var: String, by: String },
    /// Set an attribute on an invented object (literal).
    SetAttr {
        var: String,
        attr: String,
        value: String,
    },
    /// Copy an attribute from a query node onto an invented object.
    CopyAttr {
        var: String,
        attr: String,
        from: String,
        from_attr: String,
    },
}

/// An editing session over one rule graph.
#[derive(Debug, Default)]
pub struct Editor {
    rule: Rule,
    history: Vec<Rule>,
    schema: Option<WgSchema>,
}

impl Editor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a schema: node types, constraint attributes and edge labels are
    /// then checked while drawing, and suggestions become available.
    pub fn with_schema(mut self, schema: WgSchema) -> Self {
        self.schema = Some(schema);
        self
    }

    pub fn current(&self) -> &Rule {
        &self.rule
    }

    pub fn depth(&self) -> usize {
        self.history.len()
    }

    /// Relations the schema declares from the type of a drawn node — the
    /// palette the paper's editor shows next to a selected object.
    pub fn suggest_relations(&self, var: &str) -> Vec<(String, String)> {
        let (Some(schema), Some(id)) = (&self.schema, self.rule.by_var(var)) else {
            return Vec::new();
        };
        let TypeTest::Type(ty) = &self.rule.node(id).test else {
            return Vec::new();
        };
        schema
            .relations_from(ty)
            .map(|(label, to, mult)| (label.to_string(), format!("{to} ({mult:?})")))
            .collect()
    }

    pub fn apply(&mut self, op: EditOp) -> Result<()> {
        let snapshot = self.rule.clone();
        match self.try_apply(&op) {
            Ok(()) => {
                self.history.push(snapshot);
                Ok(())
            }
            Err(e) => {
                self.rule = snapshot;
                Err(e)
            }
        }
    }

    pub fn undo(&mut self) -> bool {
        match self.history.pop() {
            Some(prev) => {
                self.rule = prev;
                true
            }
            None => false,
        }
    }

    pub fn finish(self) -> Result<Rule> {
        self.rule.check()?;
        Ok(self.rule)
    }

    // ------------------------------------------------------------------

    fn ill(msg: impl Into<String>) -> WgLogError {
        WgLogError::IllFormed { msg: msg.into() }
    }

    fn resolve(&self, var: &str) -> Result<RNodeId> {
        self.rule
            .by_var(var)
            .ok_or_else(|| Self::ill(format!("no node ${var} on the canvas")))
    }

    fn add_node(&mut self, var: &str, ty: &str, color: Color) -> Result<()> {
        if var.is_empty() || ty.is_empty() {
            return Err(Self::ill("nodes need a variable and a type"));
        }
        if self.rule.by_var(var).is_some() {
            return Err(Self::ill(format!("${var} is already on the canvas")));
        }
        let test = if ty == "*" {
            if color == Color::Construct {
                return Err(Self::ill("construct nodes need a concrete type"));
            }
            TypeTest::Any
        } else {
            TypeTest::Type(ty.to_string())
        };
        // Schema gate: query node types must be declared (construct nodes
        // extend the schema and pass).
        if color == Color::Query {
            if let (Some(schema), TypeTest::Type(t)) = (&self.schema, &test) {
                if !schema.has_type(t) {
                    return Err(Self::ill(format!("schema declares no type '{t}'")));
                }
            }
        }
        self.rule.nodes.push(RNode {
            var: var.to_string(),
            test,
            color,
            constraints: Vec::new(),
            set_attrs: Vec::new(),
            per: Vec::new(),
            span: gql_ssdm::Span::none(),
        });
        Ok(())
    }

    fn add_edge(
        &mut self,
        from: &str,
        label: LabelTest,
        to: &str,
        color: Color,
        negated: bool,
    ) -> Result<()> {
        let f = self.resolve(from)?;
        let t = self.resolve(to)?;
        let (fc, tc) = (self.rule.node(f).color, self.rule.node(t).color);
        if color == Color::Query && (fc == Color::Construct || tc == Color::Construct) {
            return Err(Self::ill("thin edges cannot touch thick nodes"));
        }
        // Schema gate for concrete query edges between typed nodes.
        if color == Color::Query && !negated {
            if let (Some(schema), LabelTest::Label(l)) = (&self.schema, &label) {
                if let (TypeTest::Type(ft), TypeTest::Type(tt)) =
                    (&self.rule.node(f).test, &self.rule.node(t).test)
                {
                    if schema.relation(ft, l, tt).is_none() {
                        return Err(Self::ill(format!(
                            "schema declares no relation {ft} -{l}-> {tt}"
                        )));
                    }
                }
            }
        }
        self.rule.edges.push(REdge {
            from: f,
            to: t,
            label,
            color,
            negated,
        });
        Ok(())
    }

    fn try_apply(&mut self, op: &EditOp) -> Result<()> {
        match op {
            EditOp::AddQueryNode { var, ty } => self.add_node(var, ty, Color::Query),
            EditOp::AddConstructNode { var, ty } => self.add_node(var, ty, Color::Construct),
            EditOp::AddQueryEdge { from, label, to } => {
                let label = if label == "*" {
                    LabelTest::Any
                } else {
                    LabelTest::Label(label.clone())
                };
                self.add_edge(from, label, to, Color::Query, false)
            }
            EditOp::AddNegatedEdge { from, label, to } => {
                let label = if label == "*" {
                    LabelTest::Any
                } else {
                    LabelTest::Label(label.clone())
                };
                self.add_edge(from, label, to, Color::Query, true)
            }
            EditOp::AddPathEdge { from, re, to } => {
                if re.labels.is_empty() {
                    return Err(Self::ill("a path edge needs at least one label"));
                }
                self.add_edge(from, LabelTest::Regex(re.clone()), to, Color::Query, false)
            }
            EditOp::AddConstructEdge { from, label, to } => {
                if label.is_empty() || label == "*" {
                    return Err(Self::ill("thick edges need a concrete label"));
                }
                self.add_edge(
                    from,
                    LabelTest::Label(label.clone()),
                    to,
                    Color::Construct,
                    false,
                )
            }
            EditOp::AddConstraint {
                var,
                attr,
                op,
                value,
            } => {
                let id = self.resolve(var)?;
                if self.rule.node(id).color != Color::Query {
                    return Err(Self::ill("constraints annotate query nodes"));
                }
                if let (Some(schema), TypeTest::Type(t)) = (&self.schema, &self.rule.node(id).test)
                {
                    if let Some(decl) = schema.type_decl(t) {
                        if !decl.attrs.contains(attr) {
                            return Err(Self::ill(format!(
                                "schema declares no attribute '{attr}' on '{t}'"
                            )));
                        }
                    }
                }
                self.rule.nodes[id.index()].constraints.push(Constraint {
                    attr: attr.clone(),
                    op: *op,
                    value: value.clone(),
                });
                Ok(())
            }
            EditOp::AddPer { var, by } => {
                let id = self.resolve(var)?;
                let by_id = self.resolve(by)?;
                if self.rule.node(id).color != Color::Construct {
                    return Err(Self::ill("'per' parameterises construct nodes"));
                }
                if self.rule.node(by_id).color != Color::Query {
                    return Err(Self::ill("'per' ranges over query nodes"));
                }
                self.rule.nodes[id.index()].per.push(by.clone());
                Ok(())
            }
            EditOp::SetAttr { var, attr, value } => {
                let id = self.resolve(var)?;
                if self.rule.node(id).color != Color::Construct {
                    return Err(Self::ill("attributes are set on invented objects"));
                }
                self.rule.nodes[id.index()]
                    .set_attrs
                    .push((attr.clone(), AttrValue::Literal(value.clone())));
                Ok(())
            }
            EditOp::CopyAttr {
                var,
                attr,
                from,
                from_attr,
            } => {
                let id = self.resolve(var)?;
                let src = self.resolve(from)?;
                if self.rule.node(id).color != Color::Construct {
                    return Err(Self::ill("attributes are set on invented objects"));
                }
                if self.rule.node(src).color != Color::Query {
                    return Err(Self::ill("attribute copies read query nodes"));
                }
                self.rule.nodes[id.index()].set_attrs.push((
                    attr.clone(),
                    AttrValue::CopyFrom {
                        var: from.clone(),
                        attr: from_attr.clone(),
                    },
                ));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, Object};

    fn city_db() -> Instance {
        let mut db = Instance::new();
        let r0 = db.add_object(Object::new("restaurant"));
        db.add_attr(r0, "category", "italian");
        let r1 = db.add_object(Object::new("restaurant"));
        db.add_attr(r1, "category", "french");
        let m = db.add_object(Object::new("menu"));
        db.add_attr(m, "price", "20");
        db.add_edge(r0, "offers", m);
        db
    }

    #[test]
    fn build_f1_by_gestures() {
        let mut ed = Editor::new();
        ed.apply(EditOp::AddQueryNode {
            var: "r".into(),
            ty: "restaurant".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddQueryNode {
            var: "m".into(),
            ty: "menu".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddQueryEdge {
            from: "r".into(),
            label: "offers".into(),
            to: "m".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddConstructNode {
            var: "l".into(),
            ty: "rest-list".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddConstructEdge {
            from: "l".into(),
            label: "member".into(),
            to: "r".into(),
        })
        .unwrap();
        let rule = ed.finish().unwrap();
        let mut db = city_db();
        crate::eval::fixpoint(&[&rule], &mut db, crate::eval::FixpointMode::SemiNaive).unwrap();
        let lists = db.objects_of_type("rest-list");
        assert_eq!(lists.len(), 1);
        assert_eq!(db.out_edges(lists[0]).count(), 1);
    }

    #[test]
    fn schema_gates_types_relations_and_attributes() {
        let schema = WgSchema::extract(&city_db());
        let mut ed = Editor::new().with_schema(schema);
        // Undeclared type refused.
        assert!(ed
            .apply(EditOp::AddQueryNode {
                var: "x".into(),
                ty: "pizzeria".into()
            })
            .is_err());
        ed.apply(EditOp::AddQueryNode {
            var: "r".into(),
            ty: "restaurant".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddQueryNode {
            var: "m".into(),
            ty: "menu".into(),
        })
        .unwrap();
        // Undeclared relation refused; declared accepted.
        assert!(ed
            .apply(EditOp::AddQueryEdge {
                from: "m".into(),
                label: "offers".into(),
                to: "r".into()
            })
            .is_err());
        ed.apply(EditOp::AddQueryEdge {
            from: "r".into(),
            label: "offers".into(),
            to: "m".into(),
        })
        .unwrap();
        // Undeclared constraint attribute refused.
        assert!(ed
            .apply(EditOp::AddConstraint {
                var: "r".into(),
                attr: "rating".into(),
                op: CmpOp::Ge,
                value: "4".into()
            })
            .is_err());
        ed.apply(EditOp::AddConstraint {
            var: "r".into(),
            attr: "category".into(),
            op: CmpOp::Eq,
            value: "italian".into(),
        })
        .unwrap();
        // Construct nodes extend the schema freely.
        ed.apply(EditOp::AddConstructNode {
            var: "l".into(),
            ty: "hits".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddConstructEdge {
            from: "l".into(),
            label: "member".into(),
            to: "r".into(),
        })
        .unwrap();
        assert!(ed.finish().is_ok());
    }

    #[test]
    fn suggestions_list_declared_relations() {
        let schema = WgSchema::extract(&city_db());
        let mut ed = Editor::new().with_schema(schema);
        ed.apply(EditOp::AddQueryNode {
            var: "r".into(),
            ty: "restaurant".into(),
        })
        .unwrap();
        let suggestions = ed.suggest_relations("r");
        assert_eq!(suggestions.len(), 1);
        assert_eq!(suggestions[0].0, "offers");
        assert!(suggestions[0].1.starts_with("menu"));
        assert!(ed.suggest_relations("ghost").is_empty());
    }

    #[test]
    fn colour_discipline_enforced_while_drawing() {
        let mut ed = Editor::new();
        ed.apply(EditOp::AddQueryNode {
            var: "q".into(),
            ty: "a".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddConstructNode {
            var: "c".into(),
            ty: "out".into(),
        })
        .unwrap();
        // Thin edge touching a thick node.
        assert!(ed
            .apply(EditOp::AddQueryEdge {
                from: "q".into(),
                label: "l".into(),
                to: "c".into()
            })
            .is_err());
        // Thick edge with a wildcard label.
        assert!(ed
            .apply(EditOp::AddConstructEdge {
                from: "c".into(),
                label: "*".into(),
                to: "q".into()
            })
            .is_err());
        // Constraints on thick nodes.
        assert!(ed
            .apply(EditOp::AddConstraint {
                var: "c".into(),
                attr: "x".into(),
                op: CmpOp::Eq,
                value: "1".into()
            })
            .is_err());
        // per must point construct→query.
        assert!(ed
            .apply(EditOp::AddPer {
                var: "q".into(),
                by: "c".into()
            })
            .is_err());
        ed.apply(EditOp::AddPer {
            var: "c".into(),
            by: "q".into(),
        })
        .unwrap();
        // Wildcard construct type.
        assert!(ed
            .apply(EditOp::AddConstructNode {
                var: "w".into(),
                ty: "*".into()
            })
            .is_err());
    }

    #[test]
    fn undo_and_isolation_on_error() {
        let mut ed = Editor::new();
        ed.apply(EditOp::AddQueryNode {
            var: "a".into(),
            ty: "t".into(),
        })
        .unwrap();
        let before = ed.current().clone();
        assert!(ed
            .apply(EditOp::AddQueryEdge {
                from: "a".into(),
                label: "l".into(),
                to: "ghost".into()
            })
            .is_err());
        assert_eq!(ed.current(), &before);
        assert!(ed.undo());
        assert!(ed.current().nodes.is_empty());
        assert!(!ed.undo());
    }

    #[test]
    fn copy_attr_gesture_feeds_invention() {
        let mut ed = Editor::new();
        ed.apply(EditOp::AddQueryNode {
            var: "r".into(),
            ty: "restaurant".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddConstructNode {
            var: "s".into(),
            ty: "summary".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddPer {
            var: "s".into(),
            by: "r".into(),
        })
        .unwrap();
        ed.apply(EditOp::CopyAttr {
            var: "s".into(),
            attr: "cat".into(),
            from: "r".into(),
            from_attr: "category".into(),
        })
        .unwrap();
        ed.apply(EditOp::AddConstructEdge {
            from: "s".into(),
            label: "about".into(),
            to: "r".into(),
        })
        .unwrap();
        let rule = ed.finish().unwrap();
        let mut db = city_db();
        crate::eval::fixpoint(&[&rule], &mut db, crate::eval::FixpointMode::SemiNaive).unwrap();
        let summaries = db.objects_of_type("summary");
        assert_eq!(summaries.len(), 2);
        let cats: std::collections::HashSet<&str> = summaries
            .iter()
            .filter_map(|&s| db.object(s).attr("cat"))
            .collect();
        assert_eq!(cats, ["italian", "french"].into_iter().collect());
    }
}
