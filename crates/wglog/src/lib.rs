//! # gql-wglog — the WG-Log graphical query language
//!
//! WG-Log is the second language the paper presents: a schema-aware,
//! G-Log/GraphLog-derived graphical language for querying complex-object
//! graphs. Where XML-GL draws a rule as *two* graphs (extract | construct),
//! a WG-Log rule is **one** graph whose nodes and edges are coloured: thin
//! (red) parts are the query, thick (green) parts are what must exist — and
//! is *added* when missing. Evaluation is a datalog-style fixpoint with
//! object invention and stratified negation, which gives WG-Log the
//! recursion XML-GL lacks (the expressiveness gap of experiments T1/T2).
//!
//! The crate provides:
//!
//! * a complex-object graph model ([`instance`]) with a loader from the
//!   semi-structured store (elements → objects, text-only children →
//!   attributes, containment and ID/IDREF → labelled edges);
//! * schema graphs and schema extraction ([`schema`]);
//! * the coloured rule graphs ([`rule`]), a textual concrete syntax
//!   ([`dsl`]), and GraphLog-style regular path edges (`-(label+)->`);
//! * the evaluation engine ([`eval`]): subgraph embedding, semi-naive (and,
//!   for the ablation, naive) fixpoint, stratification;
//! * diagram conversion for rendering ([`diagram`]).
//!
//! ```
//! use gql_ssdm::Document;
//! use gql_wglog::{dsl, instance::Instance, eval};
//!
//! let doc = Document::parse_str(
//!     "<guide><restaurant id='r1'><name>Roma</name><menu><price>20</price></menu></restaurant>\
//!      <restaurant id='r2'><name>Milano</name></restaurant></guide>").unwrap();
//! let db = Instance::from_document(&doc);
//! let program = dsl::parse(r#"
//!     rule {
//!       query { $r: restaurant; $m: menu; $r -menu-> $m }
//!       construct { $l: rest-list; $l -member-> $r }
//!     }
//!     goal rest-list
//! "#).unwrap();
//! let result = eval::run(&program, &db).unwrap();
//! assert_eq!(result.objects_of_type("rest-list").len(), 1);
//! ```

pub mod diagram;
pub mod dsl;
pub mod editor;
pub mod eval;
pub mod instance;
pub mod rule;
pub mod schema;

pub use instance::{Instance, ObjId};
pub use rule::{rule_label, Color, Program, Rule};

/// Errors shared by the WG-Log front- and back-ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WgLogError {
    /// DSL syntax error.
    Syntax { line: u32, col: u32, msg: String },
    /// Rule-graph well-formedness violation.
    IllFormed { msg: String },
    /// The program cannot be stratified (negation through recursion).
    NotStratifiable { msg: String },
    /// Runtime failure.
    Eval { msg: String },
    /// A resource budget tripped during evaluation (carries the partial
    /// progress report).
    Budget(gql_guard::GuardError),
}

impl std::fmt::Display for WgLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WgLogError::Syntax { line, col, msg } => {
                write!(f, "WG-Log syntax error at {line}:{col}: {msg}")
            }
            WgLogError::IllFormed { msg } => write!(f, "ill-formed WG-Log rule: {msg}"),
            WgLogError::NotStratifiable { msg } => {
                write!(f, "program is not stratifiable: {msg}")
            }
            WgLogError::Eval { msg } => write!(f, "WG-Log evaluation error: {msg}"),
            WgLogError::Budget(e) => write!(f, "WG-Log {e}"),
        }
    }
}

impl std::error::Error for WgLogError {}

pub type Result<T> = std::result::Result<T, WgLogError>;
