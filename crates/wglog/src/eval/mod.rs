//! WG-Log evaluation: embedding search, stratification, fixpoint.

pub mod embed;
pub mod fixpoint;
pub mod stratify;

use gql_guard::Guard;
use gql_ssdm::Document;
use gql_trace::Trace;

use crate::instance::Instance;
use crate::rule::Program;
use crate::Result;

pub use embed::{embeddings, path_exists, Embedding};
pub use fixpoint::{fixpoint, fixpoint_guarded, fixpoint_traced, FixpointMode, FixpointStats};
pub use stratify::stratify;

/// Evaluate a program over a database: stratified fixpoint with the default
/// (semi-naive) mode. Returns the *extended* instance, which contains the
/// original objects plus everything the rules derived.
pub fn run(program: &Program, db: &Instance) -> Result<Instance> {
    run_with(program, db, FixpointMode::SemiNaive).map(|(db, _)| db)
}

/// Evaluate with an explicit fixpoint mode; also returns statistics (used by
/// the fixpoint ablation bench).
pub fn run_with(
    program: &Program,
    db: &Instance,
    mode: FixpointMode,
) -> Result<(Instance, FixpointStats)> {
    run_traced(program, db, mode, &Trace::disabled())
}

/// [`run_with`] reporting into a [`Trace`]: a `stratify` span, then one
/// `stratum[i]` span per stratum whose children are the fixpoint rounds
/// (see [`fixpoint_traced`]), each carrying rule counts and the derived
/// instance growth. With `Trace::disabled()` this is exactly `run_with`.
pub fn run_traced(
    program: &Program,
    db: &Instance,
    mode: FixpointMode,
    trace: &Trace,
) -> Result<(Instance, FixpointStats)> {
    run_guarded(program, db, mode, trace, &Guard::unlimited())
}

/// [`run_traced`] under a resource [`Guard`]: each stratum's fixpoint runs
/// with the guard's round/match/node caps (see
/// [`fixpoint::fixpoint_guarded`]) and trips cleanly with a partial-progress
/// report. With `Guard::unlimited()` this is exactly `run_traced`.
pub fn run_guarded(
    program: &Program,
    db: &Instance,
    mode: FixpointMode,
    trace: &Trace,
    guard: &Guard,
) -> Result<(Instance, FixpointStats)> {
    program.check()?;
    let strata = {
        let _s = trace.span("stratify");
        let strata = stratify(program)?;
        if trace.is_enabled() {
            trace.count("strata", strata.len() as u64);
            trace.count("rules", program.rules.len() as u64);
        }
        strata
    };
    let mut work = db.clone();
    let mut stats = FixpointStats::default();
    if trace.is_enabled() {
        trace.note(
            "mode",
            match mode {
                FixpointMode::Naive => "naive",
                FixpointMode::SemiNaive => "semi_naive",
            },
        );
    }
    for (si, stratum) in strata.iter().enumerate() {
        let label = if trace.is_enabled() {
            format!("stratum[{si}]")
        } else {
            String::new()
        };
        let span = trace.span(&label);
        let rules: Vec<&crate::rule::Rule> = stratum.iter().map(|&i| &program.rules[i]).collect();
        let (objs_before, edges_before) = (work.object_count(), work.edge_count());
        let s = fixpoint_guarded(&rules, &mut work, mode, trace, guard)?;
        if trace.is_enabled() {
            trace.count("stratum_rules", rules.len() as u64);
            trace.count(
                "instance_objects_grown",
                (work.object_count() - objs_before) as u64,
            );
            trace.count(
                "instance_edges_grown",
                (work.edge_count() - edges_before) as u64,
            );
        }
        drop(span);
        stats.iterations += s.iterations;
        stats.objects_created += s.objects_created;
        stats.edges_created += s.edges_created;
        stats.embeddings_found += s.embeddings_found;
    }
    if trace.is_enabled() {
        trace.count("instance_objects", work.object_count() as u64);
        trace.count("instance_edges", work.edge_count() as u64);
    }
    Ok((work, stats))
}

/// Evaluate and extract the goal objects as a document (`<answer>` root,
/// following edges two levels deep).
pub fn answer(program: &Program, db: &Instance) -> Result<Document> {
    let result = run(program, db)?;
    let goal = program
        .goal
        .clone()
        .ok_or_else(|| crate::WgLogError::Eval {
            msg: "program has no goal type".into(),
        })?;
    Ok(result.to_document("answer", &goal, 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleBuilder;

    #[test]
    fn doctest_scenario_runs() {
        let doc = gql_ssdm::Document::parse_str(
            "<guide><restaurant id='r1'><name>Roma</name><menu><price>20</price></menu></restaurant>\
             <restaurant id='r2'><name>Milano</name></restaurant></guide>",
        )
        .unwrap();
        let db = Instance::from_document(&doc);
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("m", "menu")
            .construct_node("l", "rest-list")
            .query_edge("r", "menu", "m")
            .unwrap()
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let program = Program {
            rules: vec![rule],
            goal: Some("rest-list".into()),
        };
        let result = run(&program, &db).unwrap();
        assert_eq!(result.objects_of_type("rest-list").len(), 1);
        let doc = answer(&program, &db).unwrap();
        let xml = doc.to_xml_string();
        assert!(xml.contains("<name>Roma</name>"), "{xml}");
        assert!(!xml.contains("Milano"), "{xml}");
    }
}
