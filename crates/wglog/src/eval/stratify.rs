//! Stratification: ordering rules so that negation is never evaluated
//! against facts still being derived.
//!
//! Rule B *feeds* rule A when something B constructs (an edge label or an
//! invented object type) is observable by A's query part. The dependency is
//! *negative* when A observes it through a negated edge. Strata are the
//! strongly connected components of the feeds-graph in topological order; a
//! negative dependency inside one component makes the program
//! unstratifiable.

use std::collections::{HashSet, VecDeque};

use gql_ssdm::diag::{Code, Diagnostic};
use gql_vgraph::{algo, Graph, NodeIx};

use crate::rule::{rule_label, Color, LabelTest, Program, Rule, TypeTest};
use crate::{Result, WgLogError};

/// What a rule produces: (edge labels, object types).
fn produces(rule: &Rule) -> (HashSet<String>, HashSet<String>) {
    let mut labels = HashSet::new();
    let mut types = HashSet::new();
    for e in &rule.edges {
        if e.color == Color::Construct {
            if let LabelTest::Label(l) = &e.label {
                labels.insert(l.clone());
            }
        }
    }
    for id in rule.construct_nodes() {
        if let TypeTest::Type(t) = &rule.node(id).test {
            types.insert(t.clone());
        }
    }
    (labels, types)
}

/// Positive observations (labels, types) and negative observations (labels,
/// types) of a rule's query part.
type Observations = (
    (HashSet<String>, HashSet<String>),
    (HashSet<String>, HashSet<String>),
);

/// What a rule's query part observes. A wildcard observes everything
/// (encoded as `"*"`).
fn observes(rule: &Rule) -> Observations {
    let mut pos_labels = HashSet::new();
    let mut neg_labels = HashSet::new();
    for e in &rule.edges {
        if e.color != Color::Query {
            continue;
        }
        let bucket = if e.negated {
            &mut neg_labels
        } else {
            &mut pos_labels
        };
        match &e.label {
            LabelTest::Label(l) => {
                bucket.insert(l.clone());
            }
            LabelTest::Any => {
                bucket.insert("*".to_string());
            }
            LabelTest::Regex(re) => {
                bucket.extend(re.labels.iter().cloned());
            }
        }
    }
    let mut pos_types = HashSet::new();
    for id in rule.query_nodes() {
        match &rule.node(id).test {
            TypeTest::Type(t) => {
                pos_types.insert(t.clone());
            }
            TypeTest::Any => {
                pos_types.insert("*".to_string());
            }
        }
    }
    // Types are only observed positively (nodes cannot be negated, only
    // edges), so the negative type set is empty.
    ((pos_labels, pos_types), (neg_labels, HashSet::new()))
}

fn meets(produced: &HashSet<String>, observed: &HashSet<String>) -> bool {
    observed.contains("*") && !produced.is_empty() || produced.iter().any(|p| observed.contains(p))
}

/// Build the feeds-graph: edge B → A when B's output is observed by A;
/// weight true for negative observation.
fn feeds_graph(program: &Program) -> Graph<usize, bool> {
    let n = program.rules.len();
    let prod: Vec<(HashSet<String>, HashSet<String>)> =
        program.rules.iter().map(produces).collect();
    let obs: Vec<Observations> = program.rules.iter().map(observes).collect();
    let mut g: Graph<usize, bool> = Graph::new();
    for i in 0..n {
        g.add_node(i);
    }
    for (a, ((pos_l, pos_t), (neg_l, _))) in obs.iter().enumerate() {
        for (b, (labels, types)) in prod.iter().enumerate() {
            let negative = meets(labels, neg_l);
            let positive = meets(labels, pos_l) || meets(types, pos_t);
            if positive || negative {
                g.add_edge(NodeIx(b as u32), NodeIx(a as u32), negative);
            }
        }
    }
    g
}

/// SCCs of the feeds-graph in topological (evaluation) order, plus each
/// node's component index.
fn components(g: &Graph<usize, bool>, n: usize) -> (Vec<Vec<NodeIx>>, Vec<usize>) {
    let mut sccs = algo::tarjan_scc(g);
    sccs.reverse(); // Tarjan emits reverse-topological order.
    let mut comp_of = vec![0usize; n];
    for (ci, scc) in sccs.iter().enumerate() {
        for &node in scc {
            comp_of[node.index()] = ci;
        }
    }
    (sccs, comp_of)
}

/// Compute strata: each stratum is a set of rule indexes; strata are
/// returned in evaluation order.
pub fn stratify(program: &Program) -> Result<Vec<Vec<usize>>> {
    let g = feeds_graph(program);
    let (sccs, comp_of) = components(&g, program.rules.len());

    // Negative edge inside an SCC ⇒ not stratifiable.
    for e in g.edge_indices() {
        if *g.edge(e) {
            let (s, t) = g.endpoints(e);
            if comp_of[s.index()] == comp_of[t.index()] {
                return Err(WgLogError::NotStratifiable {
                    msg: format!(
                        "rule {} negates something rule {} derives within the same recursive component",
                        t.index() + 1,
                        s.index() + 1
                    ),
                });
            }
        }
    }

    Ok(sccs
        .into_iter()
        .map(|scc| scc.into_iter().map(|ix| ix.index()).collect())
        .collect())
}

/// The edge labels rule `a` observes under negation that rule `b` derives —
/// what the negation-through-recursion conflict is *about*.
fn negated_overlap(program: &Program, b: usize, a: usize) -> Vec<String> {
    let (labels, _) = produces(&program.rules[b]);
    let (_, (neg_l, _)) = observes(&program.rules[a]);
    if neg_l.contains("*") {
        let mut all: Vec<String> = labels.into_iter().collect();
        all.sort();
        return all;
    }
    let mut out: Vec<String> = labels.intersection(&neg_l).cloned().collect();
    out.sort();
    out
}

/// Shortest feeds-path from `from` to `to` staying inside one component
/// (predecessor BFS; the graphs are rule-sized, so O(V·E) is fine).
fn path_within(g: &Graph<usize, bool>, comp_of: &[usize], from: usize, to: usize) -> Vec<usize> {
    let comp = comp_of[from];
    let mut prev: Vec<Option<usize>> = vec![None; comp_of.len()];
    let mut queue = VecDeque::from([from]);
    let mut seen = HashSet::from([from]);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            break;
        }
        for e in g.edge_indices() {
            let (s, t) = g.endpoints(e);
            if s.index() == cur && comp_of[t.index()] == comp && seen.insert(t.index()) {
                prev[t.index()] = Some(cur);
                queue.push_back(t.index());
            }
        }
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        match prev[cur] {
            Some(p) => {
                path.push(p);
                cur = p;
            }
            None => break, // no path (self-loop case: from == to handled above)
        }
    }
    path.reverse();
    path
}

/// Stratification diagnostics: one [`Code::NotStratifiable`] Error per
/// negative dependency inside a recursive component, naming the cycle
/// rule-by-rule. Empty when the program stratifies.
pub fn diagnose(program: &Program) -> Vec<Diagnostic> {
    let g = feeds_graph(program);
    let (_, comp_of) = components(&g, program.rules.len());
    let label = |i: usize| rule_label(&program.rules[i], i);
    let mut out = Vec::new();
    for e in g.edge_indices() {
        if !*g.edge(e) {
            continue;
        }
        let (s, t) = g.endpoints(e);
        let (b, a) = (s.index(), t.index()); // b derives, a negates
        if comp_of[b] != comp_of[a] {
            continue;
        }
        let what = negated_overlap(program, b, a);
        let what = if what.is_empty() {
            "its output".to_string()
        } else {
            what.iter()
                .map(|l| format!("'{l}'"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        // The cycle: a's output feeds … feeds b, whose output a negates.
        let cycle: Vec<String> = path_within(&g, &comp_of, a, b)
            .into_iter()
            .chain([a])
            .map(label)
            .collect();
        out.push(
            Diagnostic::new(
                Code::NotStratifiable,
                format!(
                    "negation through recursion: {} negates {what}, which {} derives \
                     in the same recursive component (cycle: {})",
                    label(a),
                    label(b),
                    cycle.join(" → "),
                ),
            )
            .with_span(program.rules[a].span)
            .with_rule(label(a))
            .with_help(
                "break the cycle so every negated label is fully derived in an \
                 earlier stratum than the rule that negates it",
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleBuilder;

    fn base_and_step() -> (Rule, Rule) {
        let base = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "link", "b")
            .unwrap()
            .construct_edge("a", "reach", "b")
            .unwrap()
            .build()
            .unwrap();
        let step = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_node("c", "doc")
            .query_edge("a", "reach", "b")
            .unwrap()
            .query_edge("b", "link", "c")
            .unwrap()
            .construct_edge("a", "reach", "c")
            .unwrap()
            .build()
            .unwrap();
        (base, step)
    }

    #[test]
    fn recursive_rules_share_a_stratum() {
        let (base, step) = base_and_step();
        let p = Program {
            rules: vec![base, step],
            goal: None,
        };
        let strata = stratify(&p).unwrap();
        // step depends on itself; base feeds step. base may sit alone
        // before step's stratum or share it — but step's self-loop forces
        // step into a stratum not before base's.
        let pos_of = |i: usize| strata.iter().position(|s| s.contains(&i)).unwrap();
        assert!(pos_of(0) <= pos_of(1));
    }

    #[test]
    fn negation_after_derivation_is_stratified() {
        let (base, step) = base_and_step();
        // unreachable(a,b) when no reach edge: must come after closure rules.
        let neg = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .negated_edge("a", "reach", "b")
            .unwrap()
            .construct_edge("a", "unreachable", "b")
            .unwrap()
            .build()
            .unwrap();
        let p = Program {
            rules: vec![neg.clone(), base, step],
            goal: None,
        };
        let strata = stratify(&p).unwrap();
        let pos_of = |i: usize| strata.iter().position(|s| s.contains(&i)).unwrap();
        // neg (index 0) must evaluate after both producers.
        assert!(pos_of(0) > pos_of(1));
        assert!(pos_of(0) > pos_of(2));
    }

    #[test]
    fn negation_through_recursion_rejected() {
        // p(a,b) :- link(a,b), not q(a,b);  q(a,b) :- p(a,b).
        let r1 = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "link", "b")
            .unwrap()
            .negated_edge("a", "q", "b")
            .unwrap()
            .construct_edge("a", "p", "b")
            .unwrap()
            .build()
            .unwrap();
        let r2 = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "p", "b")
            .unwrap()
            .construct_edge("a", "q", "b")
            .unwrap()
            .build()
            .unwrap();
        let p = Program {
            rules: vec![r1, r2],
            goal: None,
        };
        let err = stratify(&p).unwrap_err();
        assert!(matches!(err, WgLogError::NotStratifiable { .. }));

        let ds = diagnose(&p);
        assert!(!ds.is_empty());
        assert_eq!(ds[0].code, Code::NotStratifiable);
        // The cycle is spelled out rule-by-rule with head labels.
        assert!(ds[0].message.contains("rule 1 (p)"), "{}", ds[0].message);
        assert!(ds[0].message.contains("rule 2 (q)"), "{}", ds[0].message);
        assert!(ds[0].message.contains("'q'"), "{}", ds[0].message);
        assert!(ds[0].message.contains("cycle:"), "{}", ds[0].message);
    }

    #[test]
    fn stratifiable_programs_have_no_diagnose_output() {
        let (base, step) = base_and_step();
        let p = Program {
            rules: vec![base, step],
            goal: None,
        };
        assert!(diagnose(&p).is_empty());
    }

    #[test]
    fn independent_rules_each_get_a_stratum() {
        let r1 = RuleBuilder::new()
            .query_node("a", "x")
            .construct_node("l", "lx")
            .construct_edge("l", "m", "a")
            .unwrap()
            .build()
            .unwrap();
        let r2 = RuleBuilder::new()
            .query_node("a", "y")
            .construct_node("l", "ly")
            .construct_edge("l", "m", "a")
            .unwrap()
            .build()
            .unwrap();
        let p = Program {
            rules: vec![r1, r2],
            goal: None,
        };
        let strata = stratify(&p).unwrap();
        assert_eq!(strata.len(), 2);
        let all: Vec<usize> = strata.into_iter().flatten().collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn wildcard_observation_depends_on_everything() {
        let producer = RuleBuilder::new()
            .query_node("a", "x")
            .construct_node("l", "derived")
            .construct_edge("l", "m", "a")
            .unwrap()
            .build()
            .unwrap();
        let wildcard = RuleBuilder::new()
            .query_node("a", "*")
            .construct_node("l", "list")
            .construct_edge("l", "member", "a")
            .unwrap()
            .build()
            .unwrap();
        let p = Program {
            rules: vec![wildcard, producer],
            goal: None,
        };
        let strata = stratify(&p).unwrap();
        let pos_of = |i: usize| strata.iter().position(|s| s.contains(&i)).unwrap();
        // The wildcard rule observes 'derived' and 'list' objects: it sits
        // in a (recursive) stratum not before the producer... unless they
        // end up cyclic: wildcard also produces 'list' which it observes,
        // so it is self-recursive; producer feeds it.
        assert!(pos_of(1) <= pos_of(0));
    }
}
