//! Rule application to fixpoint with object invention.
//!
//! For every embedding of a rule's query part, the construct part must hold;
//! missing objects are invented and missing edges added. Invented objects
//! are identified by a Skolem key — (rule, construct node, bindings of the
//! node's `per` parameters) — so re-running a rule never duplicates them
//! and recursion through invention terminates for sane programs.
//!
//! Two iteration strategies (the D3 ablation):
//!
//! * **Naive** — every iteration re-evaluates every rule until nothing
//!   changes;
//! * **SemiNaive** — a rule is re-evaluated only while the previous
//!   iteration added edges with labels (or objects with types) its query
//!   part can observe. This is a relevance filter rather than textbook
//!   delta-evaluation, but it captures the same asymptotic win on the
//!   transitive-closure workloads of the benchmarks.

use std::collections::{HashMap, HashSet};

use gql_guard::Guard;
use gql_trace::Trace;

use crate::instance::{Instance, ObjId};
use crate::rule::{AttrValue, Color, LabelTest, RNodeId, Rule, TypeTest};
use crate::{Result, WgLogError};

use super::embed::embeddings;

/// Iteration strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixpointMode {
    Naive,
    SemiNaive,
}

/// Counters reported by the fixpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixpointStats {
    pub iterations: usize,
    pub objects_created: usize,
    pub edges_created: usize,
    pub embeddings_found: usize,
}

/// Hard iteration cap: rules that keep inventing fresh objects forever
/// (e.g. a rule matching its own inventions with a fresh `per` binding)
/// are reported instead of hanging.
const MAX_ITERATIONS: usize = 100_000;

/// A fixpoint can run for tens of thousands of rounds; recording one child
/// span per round would bloat the profile without adding signal. The first
/// `MAX_TRACED_ROUNDS` rounds get their own spans (that's where semi-naive
/// convergence behaviour is visible); later rounds fold into aggregate
/// counters, an explicit `rounds_truncated` count and a `round_spans:
/// truncated` note on the stratum span — the truncation is never silent.
const MAX_TRACED_ROUNDS: usize = 64;

/// Run one stratum's rules to fixpoint on `db` in place.
pub fn fixpoint(rules: &[&Rule], db: &mut Instance, mode: FixpointMode) -> Result<FixpointStats> {
    fixpoint_traced(rules, db, mode, &Trace::disabled())
}

/// [`fixpoint`] reporting into a [`Trace`]: one `round[i]` child span per
/// iteration (capped at [`MAX_TRACED_ROUNDS`]) carrying the semi-naive
/// diagnostics — rules evaluated after the relevance filter, embeddings
/// found, and the delta of objects/edges derived that round. With
/// `Trace::disabled()` this is exactly `fixpoint`.
pub fn fixpoint_traced(
    rules: &[&Rule],
    db: &mut Instance,
    mode: FixpointMode,
    trace: &Trace,
) -> Result<FixpointStats> {
    fixpoint_guarded(rules, db, mode, trace, &Guard::unlimited())
}

/// [`fixpoint_traced`] under a resource [`Guard`]: the round cap is charged
/// at the start of every round, the match cap after every rule's embedding
/// batch, and the node cap with every round's derived delta, so a
/// non-converging fixpoint trips the budget instead of running to
/// [`MAX_ITERATIONS`]. With `Guard::unlimited()` this is exactly
/// `fixpoint_traced`.
pub fn fixpoint_guarded(
    rules: &[&Rule],
    db: &mut Instance,
    mode: FixpointMode,
    trace: &Trace,
    guard: &Guard,
) -> Result<FixpointStats> {
    let mut stats = FixpointStats::default();
    // Skolem table shared across iterations: (rule idx, cnode, key) → object.
    let mut invented: HashMap<(usize, RNodeId, Vec<Option<ObjId>>), ObjId> = HashMap::new();
    // What each rule's query part can observe (labels and types), for the
    // semi-naive relevance filter.
    let observed: Vec<(HashSet<String>, HashSet<String>)> = rules
        .iter()
        .map(|r| {
            let mut labels = HashSet::new();
            let mut types = HashSet::new();
            for e in &r.edges {
                if e.color == Color::Query {
                    match &e.label {
                        LabelTest::Label(l) => {
                            labels.insert(l.clone());
                        }
                        LabelTest::Any => {
                            labels.insert("*".to_string());
                        }
                        LabelTest::Regex(re) => {
                            labels.extend(re.labels.iter().cloned());
                        }
                    }
                }
            }
            for id in r.query_nodes() {
                match &r.node(id).test {
                    TypeTest::Type(t) => {
                        types.insert(t.clone());
                    }
                    TypeTest::Any => {
                        types.insert("*".to_string());
                    }
                }
            }
            (labels, types)
        })
        .collect();

    // Changes of the previous iteration, per rule relevance.
    let mut prev_labels: HashSet<String> = HashSet::new();
    let mut prev_types: HashSet<String> = HashSet::new();
    let mut first = true;

    loop {
        stats.iterations += 1;
        if stats.iterations > MAX_ITERATIONS {
            return Err(WgLogError::Eval {
                msg: format!("fixpoint did not converge within {MAX_ITERATIONS} iterations"),
            });
        }
        if gql_guard::fault::active() {
            gql_guard::fault::maybe_stall_round(stats.iterations as u64);
        }
        // Budget probe: rounds are charged *before* the round runs, so a
        // round cap of N never evaluates round N+1's (possibly explosive)
        // embedding search.
        guard.try_rounds(1).map_err(WgLogError::Budget)?;
        let round_span = if trace.is_enabled() && stats.iterations <= MAX_TRACED_ROUNDS {
            Some(trace.span(&format!("round[{}]", stats.iterations - 1)))
        } else {
            None
        };
        let before = stats;
        let mut rules_run = 0u64;
        let mut new_labels: HashSet<String> = HashSet::new();
        let mut new_types: HashSet<String> = HashSet::new();
        let mut changed = false;

        for (ri, rule) in rules.iter().enumerate() {
            if mode == FixpointMode::SemiNaive && !first {
                let (labels, types) = &observed[ri];
                let relevant = labels.contains("*")
                    || types.contains("*")
                    || labels.iter().any(|l| prev_labels.contains(l))
                    || types.iter().any(|t| prev_types.contains(t));
                if !relevant {
                    continue;
                }
            }
            rules_run += 1;
            let embs = embeddings(rule, db);
            stats.embeddings_found += embs.len();
            guard
                .try_matches(embs.len() as u64)
                .map_err(WgLogError::Budget)?;
            for emb in embs {
                apply_construct(
                    rule,
                    ri,
                    &emb,
                    db,
                    &mut invented,
                    &mut stats,
                    &mut new_labels,
                    &mut new_types,
                    &mut changed,
                )?;
            }
        }

        if trace.is_enabled() {
            if round_span.is_some() {
                trace.count("rules_run", rules_run);
                trace.count(
                    "embeddings",
                    (stats.embeddings_found - before.embeddings_found) as u64,
                );
                trace.count(
                    "delta_objects",
                    (stats.objects_created - before.objects_created) as u64,
                );
                trace.count(
                    "delta_edges",
                    (stats.edges_created - before.edges_created) as u64,
                );
                drop(round_span);
            } else {
                // Past the cap: fold this round into stratum-level counters
                // with an explicit truncation marker.
                trace.count("rounds_truncated", 1);
            }
        }
        // Budget probe: charge the round's instance growth against the
        // node cap.
        let delta_nodes = (stats.objects_created - before.objects_created)
            + (stats.edges_created - before.edges_created);
        guard
            .try_nodes(delta_nodes as u64)
            .map_err(WgLogError::Budget)?;

        if !changed {
            if trace.is_enabled() {
                trace.count("rounds", stats.iterations as u64);
                trace.count("embeddings_total", stats.embeddings_found as u64);
                trace.count("objects_created", stats.objects_created as u64);
                trace.count("edges_created", stats.edges_created as u64);
                if stats.iterations > MAX_TRACED_ROUNDS {
                    trace.note("round_spans", "truncated");
                }
            }
            return Ok(stats);
        }
        prev_labels = new_labels;
        prev_types = new_types;
        first = false;
    }
}

/// Key of an invented object: the bindings of its `per` variables (plus the
/// variables its attribute copies reference).
fn skolem_key(rule: &Rule, cnode: RNodeId, emb: &[Option<ObjId>]) -> Vec<Option<ObjId>> {
    let node = rule.node(cnode);
    let mut vars: Vec<&str> = node.per.iter().map(String::as_str).collect();
    for (_, v) in &node.set_attrs {
        if let AttrValue::CopyFrom { var, .. } = v {
            vars.push(var);
        }
    }
    vars.sort();
    vars.dedup();
    vars.into_iter()
        .map(|v| rule.by_var(v).and_then(|id| emb[id.index()]))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn apply_construct(
    rule: &Rule,
    rule_idx: usize,
    emb: &[Option<ObjId>],
    db: &mut Instance,
    invented: &mut HashMap<(usize, RNodeId, Vec<Option<ObjId>>), ObjId>,
    stats: &mut FixpointStats,
    new_labels: &mut HashSet<String>,
    new_types: &mut HashSet<String>,
    changed: &mut bool,
) -> Result<()> {
    // Resolve every construct node to an object (inventing if needed).
    let mut resolved: Vec<Option<ObjId>> = emb.to_vec();
    for cnode in rule.construct_nodes() {
        let node = rule.node(cnode);
        let key = (rule_idx, cnode, skolem_key(rule, cnode, emb));
        let id = match invented.get(&key) {
            Some(&id) => id,
            None => {
                let ty = match &node.test {
                    TypeTest::Type(t) => t.clone(),
                    TypeTest::Any => {
                        return Err(WgLogError::Eval {
                            msg: format!("construct node ${} has no concrete type", node.var),
                        })
                    }
                };
                let mut obj = crate::instance::Object::new(&ty);
                for (attr, value) in &node.set_attrs {
                    let v = match value {
                        AttrValue::Literal(s) => s.clone(),
                        AttrValue::CopyFrom { var, attr } => {
                            let src = rule.by_var(var).and_then(|id| emb[id.index()]).ok_or_else(
                                || WgLogError::Eval {
                                    msg: format!("attribute copy from unbound ${var}"),
                                },
                            )?;
                            db.object(src).attr(attr).unwrap_or("").to_string()
                        }
                    };
                    obj.attrs.push((attr.clone(), v));
                }
                let id = db.add_object(obj);
                invented.insert(key, id);
                stats.objects_created += 1;
                new_types.insert(ty);
                *changed = true;
                id
            }
        };
        resolved[cnode.index()] = Some(id);
    }
    // Add construct edges.
    for e in &rule.edges {
        if e.color != Color::Construct {
            continue;
        }
        let LabelTest::Label(label) = &e.label else {
            return Err(WgLogError::Eval {
                msg: "construct edges need a concrete label".into(),
            });
        };
        let (Some(from), Some(to)) = (resolved[e.from.index()], resolved[e.to.index()]) else {
            return Err(WgLogError::Eval {
                msg: "construct edge references an unbound node".into(),
            });
        };
        if db.add_edge(from, label.clone(), to) {
            stats.edges_created += 1;
            new_labels.insert(label.clone());
            *changed = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Object;
    use crate::rule::{CmpOp, PathRe, PathRep, Program, RuleBuilder};

    fn city_db() -> Instance {
        let mut db = Instance::new();
        for (i, cat) in ["italian", "french", "italian"].iter().enumerate() {
            let r = db.add_object(Object::new("restaurant"));
            db.add_attr(r, "category", *cat);
            db.add_attr(r, "name", format!("R{i}"));
            if i != 1 {
                let m = db.add_object(Object::new("menu"));
                db.add_attr(m, "price", format!("{}", 20 + i * 10));
                db.add_edge(r, "offers", m);
            }
        }
        db
    }

    #[test]
    fn f1_single_collection_object() {
        // F1: one rest-list whose members are all restaurants offering menus.
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("m", "menu")
            .construct_node("l", "rest-list")
            .query_edge("r", "offers", "m")
            .unwrap()
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let mut db = city_db();
        let stats = fixpoint(&[&rule], &mut db, FixpointMode::SemiNaive).unwrap();
        let lists = db.objects_of_type("rest-list");
        assert_eq!(lists.len(), 1);
        assert_eq!(db.out_edges(lists[0]).count(), 2); // R0 and R2
        assert_eq!(stats.objects_created, 1);
        assert_eq!(stats.edges_created, 2);
    }

    #[test]
    fn per_parameter_invents_one_object_per_binding() {
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .construct_node("s", "summary")
            .per("r")
            .copy_attr("name", "r", "name")
            .construct_edge("s", "about", "r")
            .unwrap()
            .build()
            .unwrap();
        let mut db = city_db();
        fixpoint(&[&rule], &mut db, FixpointMode::SemiNaive).unwrap();
        let summaries = db.objects_of_type("summary");
        assert_eq!(summaries.len(), 3);
        let names: HashSet<&str> = summaries
            .iter()
            .filter_map(|&s| db.object(s).attr("name"))
            .collect();
        assert_eq!(names, HashSet::from(["R0", "R1", "R2"]));
    }

    #[test]
    fn rerunning_is_idempotent() {
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .construct_node("l", "rest-list")
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let mut db = city_db();
        let s1 = fixpoint(&[&rule], &mut db, FixpointMode::Naive).unwrap();
        let objects_after_first = db.object_count();
        let s2 = fixpoint(&[&rule], &mut db, FixpointMode::Naive).unwrap();
        assert_eq!(db.object_count(), objects_after_first + 1);
        // Second run invents its own list object (fresh skolem table) but
        // adds no further edges past the first iteration's.
        assert_eq!(s1.edges_created, 3);
        assert_eq!(s2.edges_created, 3);
    }

    fn chain_db(n: usize) -> Instance {
        let mut db = Instance::new();
        let nodes: Vec<ObjId> = (0..n).map(|_| db.add_object(Object::new("doc"))).collect();
        for w in nodes.windows(2) {
            db.add_edge(w[0], "link", w[1]);
        }
        db
    }

    #[test]
    fn transitive_closure_via_recursion() {
        // reach(a,b) :- link(a,b);  reach(a,c) :- reach(a,b), link(b,c).
        let base = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "link", "b")
            .unwrap()
            .construct_edge("a", "reach", "b")
            .unwrap()
            .build()
            .unwrap();
        let step = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_node("c", "doc")
            .query_edge("a", "reach", "b")
            .unwrap()
            .query_edge("b", "link", "c")
            .unwrap()
            .construct_edge("a", "reach", "c")
            .unwrap()
            .build()
            .unwrap();
        let mut db = chain_db(8);
        let stats = fixpoint(&[&base, &step], &mut db, FixpointMode::SemiNaive).unwrap();
        // 8-chain: 28 reachable ordered pairs.
        let reach_edges = db.edges().iter().filter(|e| e.label == "reach").count();
        assert_eq!(reach_edges, 28);
        assert!(stats.iterations >= 3);
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let base = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_edge("a", "link", "b")
            .unwrap()
            .construct_edge("a", "reach", "b")
            .unwrap()
            .build()
            .unwrap();
        let step = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .query_node("c", "doc")
            .query_edge("a", "reach", "b")
            .unwrap()
            .query_edge("b", "link", "c")
            .unwrap()
            .construct_edge("a", "reach", "c")
            .unwrap()
            .build()
            .unwrap();
        let mut naive = chain_db(6);
        let mut semi = chain_db(6);
        let sn = fixpoint(&[&base, &step], &mut naive, FixpointMode::Naive).unwrap();
        let ss = fixpoint(&[&base, &step], &mut semi, FixpointMode::SemiNaive).unwrap();
        assert_eq!(naive.edge_count(), semi.edge_count());
        assert_eq!(sn.edges_created, ss.edges_created);
        // The relevance filter skips irrelevant re-evaluations.
        assert!(ss.embeddings_found <= sn.embeddings_found);
    }

    #[test]
    fn fixpoint_respects_constraints() {
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .constraint("category", CmpOp::Eq, "italian")
            .construct_node("l", "italian-list")
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let mut db = city_db();
        fixpoint(&[&rule], &mut db, FixpointMode::SemiNaive).unwrap();
        let l = db.objects_of_type("italian-list")[0];
        assert_eq!(db.out_edges(l).count(), 2);
    }

    #[test]
    fn regular_path_in_rule_body() {
        let rule = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .path_edge(
                "a",
                PathRe {
                    labels: vec!["link".into()],
                    rep: PathRep::Plus,
                },
                "b",
            )
            .unwrap()
            .construct_edge("a", "reaches", "b")
            .unwrap()
            .build()
            .unwrap();
        let mut db = chain_db(5);
        fixpoint(&[&rule], &mut db, FixpointMode::SemiNaive).unwrap();
        assert_eq!(
            db.edges().iter().filter(|e| e.label == "reaches").count(),
            10
        );
    }

    #[test]
    fn program_run_with_stats() {
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("m", "menu")
            .construct_node("l", "rest-list")
            .query_edge("r", "offers", "m")
            .unwrap()
            .construct_edge("l", "member", "r")
            .unwrap()
            .build()
            .unwrap();
        let program = Program {
            rules: vec![rule],
            goal: Some("rest-list".into()),
        };
        let db = city_db();
        let (out, stats) = super::super::run_with(&program, &db, FixpointMode::Naive).unwrap();
        assert_eq!(out.objects_of_type("rest-list").len(), 1);
        assert!(stats.embeddings_found >= 2);
        // Source is untouched.
        assert!(db.objects_of_type("rest-list").is_empty());
    }
}
