//! Subgraph embedding: matching the query (thin/red) part of a rule graph
//! against an instance.
//!
//! Embeddings are graph homomorphisms (two variables may bind the same
//! object, matching G-Log semantics). The search is backtracking with two
//! standard improvements: candidate enumeration through the adjacency of an
//! already-bound neighbour whenever one exists, and constraint checking at
//! bind time rather than at the end. Regular path edges are verified with a
//! label-filtered BFS.

use std::collections::{HashSet, VecDeque};

use crate::instance::{Instance, ObjId};
use crate::rule::{Color, LabelTest, PathRe, PathRep, REdge, RNodeId, Rule};

/// A query embedding: per rule node, the bound object (construct nodes stay
/// unbound).
pub type Embedding = Vec<Option<ObjId>>;

/// Does a path matching `re` lead from `from` to `to`?
pub fn path_exists(db: &Instance, from: ObjId, to: ObjId, re: &PathRe) -> bool {
    match re.rep {
        PathRep::One => db
            .out_edges(from)
            .any(|e| re.labels.contains(&e.label) && e.to == to),
        PathRep::Plus | PathRep::Star => {
            if re.rep == PathRep::Star && from == to {
                return true;
            }
            // BFS over edges whose label is in the alternative set.
            let mut seen: HashSet<ObjId> = HashSet::new();
            let mut queue = VecDeque::new();
            queue.push_back(from);
            while let Some(cur) = queue.pop_front() {
                for e in db.out_edges(cur) {
                    if !re.labels.contains(&e.label) {
                        continue;
                    }
                    if e.to == to {
                        return true;
                    }
                    if seen.insert(e.to) {
                        queue.push_back(e.to);
                    }
                }
            }
            false
        }
    }
}

/// All objects reachable from `from` via a path matching `re` (used by the
/// planner in `gql-core`; exposed for reuse).
pub fn path_targets(db: &Instance, from: ObjId, re: &PathRe) -> Vec<ObjId> {
    match re.rep {
        PathRep::One => db
            .out_edges(from)
            .filter(|e| re.labels.contains(&e.label))
            .map(|e| e.to)
            .collect(),
        PathRep::Plus | PathRep::Star => {
            let mut seen: HashSet<ObjId> = HashSet::new();
            let mut order = Vec::new();
            let mut queue = VecDeque::new();
            if re.rep == PathRep::Star {
                seen.insert(from);
                order.push(from);
            }
            queue.push_back(from);
            while let Some(cur) = queue.pop_front() {
                for e in db.out_edges(cur) {
                    if re.labels.contains(&e.label) && seen.insert(e.to) {
                        order.push(e.to);
                        queue.push_back(e.to);
                    }
                }
            }
            order
        }
    }
}

fn edge_satisfied(db: &Instance, e: &REdge, from: ObjId, to: ObjId) -> bool {
    let ok = match &e.label {
        LabelTest::Label(l) => db.has_edge(from, l, to),
        LabelTest::Any => db.out_edges(from).any(|edge| edge.to == to),
        LabelTest::Regex(re) => path_exists(db, from, to, re),
    };
    ok != e.negated
}

/// Enumerate all embeddings of the rule's query part into the instance.
pub fn embeddings(rule: &Rule, db: &Instance) -> Vec<Embedding> {
    // Query nodes in a connectivity-friendly order: repeatedly pick an
    // unplaced node adjacent (via a positive, non-negated query edge) to a
    // placed one; fall back to declaration order.
    let qnodes: Vec<RNodeId> = rule.query_nodes().collect();
    if qnodes.is_empty() {
        // A pure construct rule has the empty premise: it holds once.
        return vec![vec![None; rule.nodes.len()]];
    }
    let positive: Vec<&REdge> = rule
        .edges
        .iter()
        .filter(|e| e.color == Color::Query && !e.negated)
        .collect();
    let negated: Vec<&REdge> = rule
        .edges
        .iter()
        .filter(|e| e.color == Color::Query && e.negated)
        .collect();

    // A query node that is only ever the *target* of negated edges is
    // *existential*: it never binds, and each negated edge into it asserts
    // "the source has no such neighbour" — the GraphLog reading of a
    // crossed edge to an otherwise unconstrained node ("document with no
    // index link"). Sources of negated edges and nodes with any positive
    // edge bind normally, so "no edge between these two bound nodes" stays
    // expressible. Isolated nodes bind too (cartesian semantics).
    //
    // Convention note: several negated edges sharing one existential target
    // are checked *independently* ("no a-neighbour" AND "no b-neighbour"),
    // not jointly ("no single object that is both"). Joint negation needs
    // the target bound — give it a positive edge.
    let existential: HashSet<RNodeId> = qnodes
        .iter()
        .copied()
        .filter(|&q| {
            let incident: Vec<&REdge> = rule
                .edges
                .iter()
                .filter(|e| e.from == q || e.to == q)
                .collect();
            !incident.is_empty()
                && incident
                    .iter()
                    .all(|e| e.negated && e.to == q && e.from != q)
        })
        .collect();
    let qnodes: Vec<RNodeId> = qnodes
        .into_iter()
        .filter(|q| !existential.contains(q))
        .collect();
    if qnodes.is_empty() {
        return Vec::new();
    }

    let mut order: Vec<RNodeId> = Vec::with_capacity(qnodes.len());
    let mut placed: HashSet<RNodeId> = HashSet::new();
    while order.len() < qnodes.len() {
        let next = qnodes
            .iter()
            .find(|&&q| {
                !placed.contains(&q)
                    && positive.iter().any(|e| {
                        (e.from == q && placed.contains(&e.to))
                            || (e.to == q && placed.contains(&e.from))
                    })
            })
            .or_else(|| qnodes.iter().find(|&&q| !placed.contains(&q)))
            .copied()
            .expect("some node remains");
        placed.insert(next);
        order.push(next);
    }

    let mut out: Vec<Embedding> = Vec::new();
    let mut current: Embedding = vec![None; rule.nodes.len()];
    search(
        rule,
        db,
        &order,
        0,
        &positive,
        &negated,
        &mut current,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn search(
    rule: &Rule,
    db: &Instance,
    order: &[RNodeId],
    depth: usize,
    positive: &[&REdge],
    negated: &[&REdge],
    current: &mut Embedding,
    out: &mut Vec<Embedding>,
) {
    if depth == order.len() {
        // All nodes bound: verify negated edges last (they can only be
        // checked once both endpoints are fixed).
        let ok = negated.iter().all(|e| {
            match (current[e.from.index()], current[e.to.index()]) {
                (Some(f), Some(t)) => edge_satisfied(db, e, f, t),
                // A negated edge to an unbound (existential) target means
                // "no such neighbour at all": check existentially. Sources
                // of negated edges always bind (see the existential filter),
                // so (None, Some(_)) cannot occur.
                (Some(f), None) => !exists_any_target(db, e, f, rule),
                (None, _) => true,
            }
        });
        if ok {
            out.push(current.clone());
        }
        return;
    }
    let q = order[depth];
    let node = rule.node(q);

    // Candidates: through a bound neighbour when possible, else type index.
    let mut from_neighbour: Option<Vec<ObjId>> = None;
    for e in positive {
        if e.to == q {
            if let Some(src) = current[e.from.index()] {
                let mut cands: Vec<ObjId> = match &e.label {
                    LabelTest::Label(l) => db.successors_via(src, l).collect(),
                    LabelTest::Any => db.out_edges(src).map(|edge| edge.to).collect(),
                    LabelTest::Regex(re) => path_targets(db, src, re),
                };
                // Parallel edges reach the same object more than once; an
                // embedding binds objects, so duplicates would double-count.
                cands.sort();
                cands.dedup();
                from_neighbour = Some(cands);
                break;
            }
        }
        if e.from == q {
            if let Some(dst) = current[e.to.index()] {
                let mut cands: Vec<ObjId> = match &e.label {
                    LabelTest::Label(l) => db.predecessors_via(dst, l).collect(),
                    LabelTest::Any => db.in_edges(dst).map(|edge| edge.from).collect(),
                    // Reverse regex enumeration is not indexed; fall back to
                    // the type scan below.
                    LabelTest::Regex(_) => continue,
                };
                cands.sort();
                cands.dedup();
                from_neighbour = Some(cands);
                break;
            }
        }
    }
    let candidates: Vec<ObjId> = match from_neighbour {
        Some(c) => c,
        None => match &node.test {
            crate::rule::TypeTest::Type(t) => db.objects_of_type(t),
            crate::rule::TypeTest::Any => db.objects().map(|(id, _)| id).collect(),
        },
    };

    'cand: for cand in candidates {
        let obj = db.object(cand);
        if !node.test.matches(&obj.ty) {
            continue;
        }
        if !node.constraints.iter().all(|c| c.holds(obj)) {
            continue;
        }
        // Check all positive edges whose endpoints are now both bound.
        current[q.index()] = Some(cand);
        for e in positive {
            if let (Some(f), Some(t)) = (current[e.from.index()], current[e.to.index()]) {
                if (e.from == q || e.to == q) && !edge_satisfied(db, e, f, t) {
                    current[q.index()] = None;
                    continue 'cand;
                }
            }
        }
        search(rule, db, order, depth + 1, positive, negated, current, out);
        current[q.index()] = None;
    }
}

/// For a negated edge with an unbound target: does `from` have any matching
/// neighbour that satisfies the target node's tests?
fn exists_any_target(db: &Instance, e: &REdge, from: ObjId, rule: &Rule) -> bool {
    let target_node = rule.node(e.to);
    let targets: Vec<ObjId> = match &e.label {
        LabelTest::Label(l) => db.successors_via(from, l).collect(),
        LabelTest::Any => db.out_edges(from).map(|edge| edge.to).collect(),
        LabelTest::Regex(re) => path_targets(db, from, re),
    };
    targets.into_iter().any(|t| {
        let obj = db.object(t);
        target_node.test.matches(&obj.ty) && target_node.constraints.iter().all(|c| c.holds(obj))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Object;
    use crate::rule::{CmpOp, PathRep, RuleBuilder};

    /// restaurants r0 (2 menus), r1 (no menu), r2 (1 menu); hotels h0.
    fn city_db() -> Instance {
        let mut db = Instance::new();
        let r0 = db.add_object(Object::new("restaurant"));
        let r1 = db.add_object(Object::new("restaurant"));
        let r2 = db.add_object(Object::new("restaurant"));
        db.add_attr(r0, "category", "italian");
        db.add_attr(r1, "category", "french");
        db.add_attr(r2, "category", "italian");
        let m0 = db.add_object(Object::new("menu"));
        let m1 = db.add_object(Object::new("menu"));
        let m2 = db.add_object(Object::new("menu"));
        db.add_attr(m0, "price", "20");
        db.add_attr(m1, "price", "45");
        db.add_attr(m2, "price", "32");
        db.add_edge(r0, "offers", m0);
        db.add_edge(r0, "offers", m1);
        db.add_edge(r2, "offers", m2);
        let h0 = db.add_object(Object::new("hotel"));
        db.add_edge(r0, "near", h0);
        db
    }

    #[test]
    fn single_node_embeddings() {
        let db = city_db();
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .build()
            .unwrap();
        assert_eq!(embeddings(&rule, &db).len(), 3);
        let rule = RuleBuilder::new().query_node("x", "*").build().unwrap();
        assert_eq!(embeddings(&rule, &db).len(), 7);
    }

    #[test]
    fn edge_patterns() {
        let db = city_db();
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("m", "menu")
            .query_edge("r", "offers", "m")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(embeddings(&rule, &db).len(), 3); // r0×2 + r2×1
    }

    #[test]
    fn constraints_filter() {
        let db = city_db();
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .constraint("category", CmpOp::Eq, "italian")
            .query_node("m", "menu")
            .constraint("price", CmpOp::Lt, "40")
            .query_edge("r", "offers", "m")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(embeddings(&rule, &db).len(), 2); // (r0,m0), (r2,m2)
    }

    #[test]
    fn negated_edge_with_existential_target() {
        let db = city_db();
        // Restaurants with no 'near' hotel at all: the hotel node is only
        // the target of a negated edge, so it is existential.
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("h", "hotel")
            .negated_edge("r", "near", "h")
            .unwrap()
            .build()
            .unwrap();
        // r1 and r2 have no near edge; r0 is near h0.
        assert_eq!(embeddings(&rule, &db).len(), 2);
    }

    #[test]
    fn negated_edge_between_bound_nodes() {
        let mut db = city_db();
        // Give the hotel a positive role so it binds: a second hotel and a
        // 'near' edge from r2.
        let h1 = db.add_object(Object::new("hotel"));
        db.add_edge(ObjId(2), "near", h1);
        // Pairs (restaurant, hotel) connected by *some* edge but not a
        // 'rates' edge: h binds via the positive wildcard edge.
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("h", "hotel")
            .query_edge("r", "*", "h")
            .unwrap()
            .negated_edge("r", "rates", "h")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(embeddings(&rule, &db).len(), 2); // (r0,h0) and (r2,h1)
    }

    #[test]
    fn negated_edge_with_unbound_endpoint() {
        let db = city_db();
        // Restaurants that offer no menu at all — r1 only. The menu node
        // participates in nothing else, so it stays unbound.
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("m", "menu")
            .negated_edge("r", "offers", "m")
            .unwrap()
            .build()
            .unwrap();
        // Drop the free menu node from the match space by filtering
        // embeddings where it bound: with homomorphism semantics the plain
        // build would bind m to every menu. The convention: a node used
        // *only* by negated edges is existential. Verify that behaviour.
        rule.check().unwrap();
        let embs = embeddings(&rule, &db);
        let r_ids: std::collections::HashSet<_> = embs.iter().map(|e| e[0].unwrap()).collect();
        assert!(r_ids.contains(&ObjId(1)));
        assert!(!r_ids.contains(&ObjId(0)));
        assert!(!r_ids.contains(&ObjId(2)));
    }

    #[test]
    fn homomorphism_not_injective() {
        let db = city_db();
        let rule = RuleBuilder::new()
            .query_node("a", "restaurant")
            .query_node("b", "restaurant")
            .build()
            .unwrap();
        // 3×3 pairs including (x, x).
        assert_eq!(embeddings(&rule, &db).len(), 9);
    }

    fn chain_db(n: usize) -> Instance {
        let mut db = Instance::new();
        let nodes: Vec<ObjId> = (0..n)
            .map(|i| {
                let o = db.add_object(Object::new("doc"));
                db.add_attr(o, "n", i.to_string());
                o
            })
            .collect();
        for w in nodes.windows(2) {
            db.add_edge(w[0], "link", w[1]);
        }
        db
    }

    #[test]
    fn regular_path_plus() {
        let db = chain_db(5);
        let rule = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .path_edge(
                "a",
                PathRe {
                    labels: vec!["link".into()],
                    rep: PathRep::Plus,
                },
                "b",
            )
            .unwrap()
            .build()
            .unwrap();
        // Transitive closure of a 5-chain: C(5,2) = 10 ordered reachable pairs.
        assert_eq!(embeddings(&rule, &db).len(), 10);
    }

    #[test]
    fn regular_path_star_includes_self() {
        let db = chain_db(3);
        let rule = RuleBuilder::new()
            .query_node("a", "doc")
            .query_node("b", "doc")
            .path_edge(
                "a",
                PathRe {
                    labels: vec!["link".into()],
                    rep: PathRep::Star,
                },
                "b",
            )
            .unwrap()
            .build()
            .unwrap();
        // 3 self pairs + 3 proper pairs.
        assert_eq!(embeddings(&rule, &db).len(), 6);
    }

    #[test]
    fn path_exists_on_cycles_terminates() {
        let mut db = chain_db(3);
        let objs: Vec<ObjId> = db.objects().map(|(i, _)| i).collect();
        db.add_edge(objs[2], "link", objs[0]); // cycle
        let re = PathRe {
            labels: vec!["link".into()],
            rep: PathRep::Plus,
        };
        assert!(path_exists(&db, objs[0], objs[0], &re)); // via the cycle
        let re_other = PathRe {
            labels: vec!["other".into()],
            rep: PathRep::Plus,
        };
        assert!(!path_exists(&db, objs[0], objs[1], &re_other));
    }

    #[test]
    fn label_alternatives() {
        let mut db = Instance::new();
        let a = db.add_object(Object::new("d"));
        let b = db.add_object(Object::new("d"));
        let c = db.add_object(Object::new("d"));
        db.add_edge(a, "x", b);
        db.add_edge(b, "y", c);
        let re = PathRe {
            labels: vec!["x".into(), "y".into()],
            rep: PathRep::Plus,
        };
        assert!(path_exists(&db, a, c, &re));
        let re_x = PathRe {
            labels: vec!["x".into()],
            rep: PathRep::Plus,
        };
        assert!(!path_exists(&db, a, c, &re_x));
    }

    #[test]
    fn parallel_edges_do_not_duplicate_embeddings() {
        let mut db = Instance::new();
        let a = db.add_object(Object::new("a"));
        let b = db.add_object(Object::new("b"));
        db.add_edge(a, "x", b);
        db.add_edge(a, "y", b);
        let rule = RuleBuilder::new()
            .query_node("s", "a")
            .query_node("t", "b")
            .query_edge("s", "*", "t")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(embeddings(&rule, &db).len(), 1);
    }

    #[test]
    fn construct_only_rule_holds_once() {
        let rule = RuleBuilder::new()
            .construct_node("l", "marker")
            .build()
            .unwrap();
        let db = city_db();
        assert_eq!(embeddings(&rule, &db).len(), 1);
        // And through the fixpoint: exactly one marker object appears.
        let mut work = db.clone();
        crate::eval::fixpoint(&[&rule], &mut work, crate::eval::FixpointMode::Naive).unwrap();
        assert_eq!(work.objects_of_type("marker").len(), 1);
    }

    #[test]
    fn wildcard_edge_label() {
        let db = city_db();
        let rule = RuleBuilder::new()
            .query_node("r", "restaurant")
            .query_node("h", "hotel")
            .query_edge("r", "*", "h")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(embeddings(&rule, &db).len(), 1); // r0 -near-> h0
    }
}
