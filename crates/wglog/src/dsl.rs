//! Textual concrete syntax for WG-Log rule graphs.
//!
//! As with XML-GL's GQL DSL, this syntax is the writable projection of a
//! diagram (the interactive editor substitute). Shape:
//!
//! ```text
//! rule {
//!   query {
//!     $r: restaurant where category = "italian" and stars >= "3"
//!     $m: menu
//!     $r -offers-> $m            # thin (query) edge
//!     not $r -closed-> $m        # crossed-out edge
//!     $a -(link|index)+-> $b     # regular path (GraphLog dashed edge)
//!     $x -*-> $y                 # any-label edge
//!   }
//!   construct {
//!     $l: rest-list              # thick (green) node, invented once
//!     $s: summary per $r set name = $r.name set kind = "auto"
//!     $l -member-> $r            # thick edge
//!   }
//! }
//! goal rest-list
//! ```
//!
//! `#` starts a line comment; `,` and `;` are separators. A construct node
//! without `per` is invented once for the whole rule (the single collection
//! node of figure F1); `per $v` makes it one object per binding of `$v`.

use crate::rule::{
    AttrValue, CmpOp, Color, Constraint, LabelTest, PathRe, PathRep, Program, REdge, RNode, Rule,
    TypeTest,
};
use crate::{Result, WgLogError};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Var(String),
    Str(String),
    Colon,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Minus,
    Arrow,
    Plus,
    Star,
    Pipe,
    Dot,
    Op(CmpOp),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("'{s}'"),
            Tok::Var(v) => format!("${v}"),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::Colon => "':'".into(),
            Tok::LBrace => "'{'".into(),
            Tok::RBrace => "'}'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::Minus => "'-'".into(),
            Tok::Arrow => "'->'".into(),
            Tok::Plus => "'+'".into(),
            Tok::Star => "'*'".into(),
            Tok::Pipe => "'|'".into(),
            Tok::Dot => "'.'".into(),
            Tok::Op(op) => format!("'{}'", op.symbol()),
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.')
}

/// Identifier characters for *names* (labels, types): dashes belong to
/// names (`rest-list`) unless followed by `>` or used as an edge dash —
/// resolved by the lexer contextually below.
fn tokenize(src: &str) -> Result<Vec<(Tok, u32, u32)>> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let (mut i, mut line, mut col) = (0usize, 1u32, 1u32);
    let bump = |i: &mut usize, line: &mut u32, col: &mut u32, chars: &[char]| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() || c == ',' || c == ';' {
            bump(&mut i, &mut line, &mut col, &chars);
            continue;
        }
        if c == '#' {
            while i < chars.len() && chars[i] != '\n' {
                bump(&mut i, &mut line, &mut col, &chars);
            }
            continue;
        }
        let (tline, tcol) = (line, col);
        let tok = match c {
            '{' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::LBrace
            }
            '}' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::RBrace
            }
            '(' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::LParen
            }
            ')' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::RParen
            }
            ':' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::Colon
            }
            '|' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::Pipe
            }
            '+' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::Plus
            }
            '*' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::Star
            }
            '.' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::Dot
            }
            '-' => {
                bump(&mut i, &mut line, &mut col, &chars);
                if i < chars.len() && chars[i] == '>' {
                    bump(&mut i, &mut line, &mut col, &chars);
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            '$' => {
                bump(&mut i, &mut line, &mut col, &chars);
                let start = i;
                // Variables stop at '-' (edge arrows) and '.' (attribute
                // projections like `$r.name`).
                while i < chars.len() && is_ident_char(chars[i]) && chars[i] != '.' {
                    bump(&mut i, &mut line, &mut col, &chars);
                }
                if i == start {
                    return Err(WgLogError::Syntax {
                        line,
                        col,
                        msg: "expected a variable name after '$'".into(),
                    });
                }
                Tok::Var(chars[start..i].iter().collect())
            }
            '"' | '\'' => {
                let quote = c;
                bump(&mut i, &mut line, &mut col, &chars);
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(WgLogError::Syntax {
                            line,
                            col,
                            msg: "unterminated string".into(),
                        });
                    }
                    let c = chars[i];
                    bump(&mut i, &mut line, &mut col, &chars);
                    if c == quote {
                        break;
                    }
                    if c == '\\' {
                        if i >= chars.len() {
                            return Err(WgLogError::Syntax {
                                line,
                                col,
                                msg: "unterminated string".into(),
                            });
                        }
                        let e = chars[i];
                        bump(&mut i, &mut line, &mut col, &chars);
                        match e {
                            '"' | '\'' | '\\' => s.push(e),
                            'n' => s.push('\n'),
                            other => {
                                return Err(WgLogError::Syntax {
                                    line,
                                    col,
                                    msg: format!("bad escape '\\{other}'"),
                                })
                            }
                        }
                        continue;
                    }
                    s.push(c);
                }
                Tok::Str(s)
            }
            '=' => {
                bump(&mut i, &mut line, &mut col, &chars);
                Tok::Op(CmpOp::Eq)
            }
            '!' => {
                bump(&mut i, &mut line, &mut col, &chars);
                if i < chars.len() && chars[i] == '=' {
                    bump(&mut i, &mut line, &mut col, &chars);
                    Tok::Op(CmpOp::Ne)
                } else {
                    return Err(WgLogError::Syntax {
                        line,
                        col,
                        msg: "lone '!'".into(),
                    });
                }
            }
            '<' => {
                bump(&mut i, &mut line, &mut col, &chars);
                if i < chars.len() && chars[i] == '=' {
                    bump(&mut i, &mut line, &mut col, &chars);
                    Tok::Op(CmpOp::Le)
                } else {
                    Tok::Op(CmpOp::Lt)
                }
            }
            '>' => {
                bump(&mut i, &mut line, &mut col, &chars);
                if i < chars.len() && chars[i] == '=' {
                    bump(&mut i, &mut line, &mut col, &chars);
                    Tok::Op(CmpOp::Ge)
                } else {
                    Tok::Op(CmpOp::Gt)
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() {
                    let ch = chars[i];
                    if is_ident_char(ch) {
                        bump(&mut i, &mut line, &mut col, &chars);
                    } else if ch == '-' {
                        // Part of the name unless it begins '->' .
                        if i + 1 < chars.len() && chars[i + 1] == '>' {
                            break;
                        }
                        // Or unless the next char cannot continue a name
                        // (e.g. `-(`): then it is an edge dash.
                        if i + 1 < chars.len()
                            && !(chars[i + 1].is_alphanumeric() || chars[i + 1] == '_')
                        {
                            break;
                        }
                        bump(&mut i, &mut line, &mut col, &chars);
                    } else {
                        break;
                    }
                }
                Tok::Ident(chars[start..i].iter().collect())
            }
            other => {
                return Err(WgLogError::Syntax {
                    line,
                    col,
                    msg: format!("unexpected character '{other}'"),
                })
            }
        };
        out.push((tok, tline, tcol));
    }
    Ok(out)
}

/// Parse a WG-Log DSL program and check it for well-formedness.
pub fn parse(src: &str) -> Result<Program> {
    let program = parse_unchecked(src)?;
    program.check()?;
    Ok(program)
}

/// Parse without the well-formedness check — for tools (like the analyzer)
/// that want to see ill-formed programs and report on them.
pub fn parse_unchecked(src: &str) -> Result<Program> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    loop {
        if p.eof() {
            break;
        }
        if p.eat_keyword("goal") {
            program.goal = Some(p.expect_ident()?);
            continue;
        }
        program.rules.push(p.parse_rule()?);
    }
    Ok(program)
}

struct Parser {
    tokens: Vec<(Tok, u32, u32)>,
    pos: usize,
}

impl Parser {
    fn eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Source position of the token about to be consumed.
    fn here(&self) -> gql_ssdm::Span {
        self.tokens
            .get(self.pos)
            .map_or(gql_ssdm::Span::none(), |(_, l, c)| {
                gql_ssdm::Span::new(*l, *c)
            })
    }

    fn err_here(&self, msg: impl Into<String>) -> WgLogError {
        let (line, col) = self
            .tokens
            .get(self.pos)
            .map_or((0, 0), |(_, l, c)| (*l, *c));
        WgLogError::Syntax {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                t.describe(),
                self.peek().map_or("end of input".into(), Tok::describe)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected '{kw}', found {}",
                self.peek().map_or("end of input".into(), Tok::describe)
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err_here(format!(
                "expected a name, found {}",
                other.map_or("end of input".into(), Tok::describe)
            ))),
        }
    }

    fn expect_var(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Var(v)) => {
                let v = v.clone();
                self.pos += 1;
                Ok(v)
            }
            other => Err(self.err_here(format!(
                "expected a $variable, found {}",
                other.map_or("end of input".into(), Tok::describe)
            ))),
        }
    }

    fn parse_rule(&mut self) -> Result<Rule> {
        let span = self.here();
        self.expect_keyword("rule")?;
        self.expect(&Tok::LBrace)?;
        let mut rule = Rule {
            span,
            ..Rule::default()
        };
        self.expect_keyword("query")?;
        self.expect(&Tok::LBrace)?;
        self.parse_section(&mut rule, Color::Query)?;
        self.expect_keyword("construct")?;
        self.expect(&Tok::LBrace)?;
        self.parse_section(&mut rule, Color::Construct)?;
        self.expect(&Tok::RBrace)?;
        Ok(rule)
    }

    fn parse_section(&mut self, rule: &mut Rule, color: Color) -> Result<()> {
        while !self.eat(&Tok::RBrace) {
            let negated = color == Color::Query && self.eat_keyword("not");
            let span = self.here();
            let var = self.expect_var()?;
            if self.eat(&Tok::Colon) {
                if negated {
                    return Err(self.err_here("'not' applies to edges, not node declarations"));
                }
                self.parse_node_decl(rule, color, var, span)?;
            } else if self.peek() == Some(&Tok::Minus) {
                self.parse_edge(rule, color, var, negated)?;
            } else {
                return Err(self.err_here(format!(
                    "expected ':' (node declaration) or '-' (edge) after ${var}"
                )));
            }
        }
        Ok(())
    }

    fn parse_node_decl(
        &mut self,
        rule: &mut Rule,
        color: Color,
        var: String,
        span: gql_ssdm::Span,
    ) -> Result<()> {
        let test = match self.peek() {
            Some(Tok::Star) => {
                self.pos += 1;
                TypeTest::Any
            }
            _ => TypeTest::Type(self.expect_ident()?),
        };
        let mut node = RNode {
            var,
            test,
            color,
            constraints: Vec::new(),
            set_attrs: Vec::new(),
            per: Vec::new(),
            span,
        };
        loop {
            if self.eat_keyword("where") {
                loop {
                    node.constraints.push(self.parse_constraint()?);
                    if !self.eat_keyword("and") {
                        break;
                    }
                }
            } else if self.eat_keyword("per") {
                node.per.push(self.expect_var()?);
            } else if self.eat_keyword("set") {
                let attr = self.expect_ident()?;
                self.expect(&Tok::Op(CmpOp::Eq))?;
                let value = match self.peek() {
                    Some(Tok::Str(s)) => {
                        let s = s.clone();
                        self.pos += 1;
                        AttrValue::Literal(s)
                    }
                    Some(Tok::Var(v)) => {
                        let v = v.clone();
                        self.pos += 1;
                        self.expect(&Tok::Dot)?;
                        let a = self.expect_ident()?;
                        AttrValue::CopyFrom { var: v, attr: a }
                    }
                    other => {
                        return Err(self.err_here(format!(
                            "expected \"literal\" or $var.attr, found {}",
                            other.map_or("end of input".into(), Tok::describe)
                        )))
                    }
                };
                node.set_attrs.push((attr, value));
            } else {
                break;
            }
        }
        rule.nodes.push(node);
        Ok(())
    }

    fn parse_constraint(&mut self) -> Result<Constraint> {
        let attr = self.expect_ident()?;
        let op = match self.peek() {
            Some(Tok::Op(op)) => {
                let op = *op;
                self.pos += 1;
                op
            }
            Some(Tok::Ident(s)) if s == "contains" || s == "starts-with" => {
                let op = CmpOp::from_symbol(s).expect("known symbol");
                self.pos += 1;
                op
            }
            other => {
                return Err(self.err_here(format!(
                    "expected a comparison operator, found {}",
                    other.map_or("end of input".into(), Tok::describe)
                )))
            }
        };
        let value = match self.peek() {
            Some(Tok::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                s
            }
            Some(Tok::Ident(s)) if s.chars().all(|c| c.is_ascii_digit() || c == '.') => {
                let s = s.clone();
                self.pos += 1;
                s
            }
            other => {
                return Err(self.err_here(format!(
                    "expected a value, found {}",
                    other.map_or("end of input".into(), Tok::describe)
                )))
            }
        };
        Ok(Constraint { attr, op, value })
    }

    /// `$a -label-> $b` | `$a -*-> $b` | `$a -(l1|l2)+-> $b`.
    fn parse_edge(
        &mut self,
        rule: &mut Rule,
        color: Color,
        from_var: String,
        negated: bool,
    ) -> Result<()> {
        self.expect(&Tok::Minus)?;
        let label = match self.peek() {
            Some(Tok::Star) => {
                self.pos += 1;
                LabelTest::Any
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let mut labels = vec![self.expect_ident()?];
                while self.eat(&Tok::Pipe) {
                    labels.push(self.expect_ident()?);
                }
                self.expect(&Tok::RParen)?;
                let rep = if self.eat(&Tok::Plus) {
                    PathRep::Plus
                } else if self.eat(&Tok::Star) {
                    PathRep::Star
                } else {
                    PathRep::One
                };
                LabelTest::Regex(PathRe { labels, rep })
            }
            _ => LabelTest::Label(self.expect_ident()?),
        };
        self.expect(&Tok::Arrow)?;
        let to_var = self.expect_var()?;
        let resolve = |p: &Parser, v: &str| {
            rule.by_var(v)
                .ok_or_else(|| p.err_here(format!("unknown variable ${v} (declare nodes first)")))
        };
        let from = resolve(self, &from_var)?;
        let to = resolve(self, &to_var)?;
        rule.edges.push(REdge {
            from,
            to,
            label,
            color,
            negated,
        });
        Ok(())
    }
}

/// Quote a literal for printing, escaping the string syntax.
fn quote(s: &str) -> String {
    format!(
        "\"{}\"",
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    )
}

/// Print a program back to DSL text.
pub fn print(program: &Program) -> String {
    let mut out = String::new();
    for rule in &program.rules {
        out.push_str("rule {\n  query {\n");
        print_section(rule, Color::Query, &mut out);
        out.push_str("  }\n  construct {\n");
        print_section(rule, Color::Construct, &mut out);
        out.push_str("  }\n}\n");
    }
    if let Some(goal) = &program.goal {
        out.push_str(&format!("goal {goal}\n"));
    }
    out
}

fn print_section(rule: &Rule, color: Color, out: &mut String) {
    for n in &rule.nodes {
        if n.color != color {
            continue;
        }
        out.push_str(&format!("    ${}: {}", n.var, n.test));
        for (i, c) in n.constraints.iter().enumerate() {
            out.push_str(if i == 0 { " where " } else { " and " });
            out.push_str(&format!("{} {} {}", c.attr, c.op.symbol(), quote(&c.value)));
        }
        for p in &n.per {
            out.push_str(&format!(" per ${p}"));
        }
        for (attr, value) in &n.set_attrs {
            match value {
                AttrValue::Literal(s) => out.push_str(&format!(" set {attr} = {}", quote(s))),
                AttrValue::CopyFrom { var, attr: a } => {
                    out.push_str(&format!(" set {attr} = ${var}.{a}"))
                }
            }
        }
        out.push('\n');
    }
    for e in &rule.edges {
        if e.color != color {
            continue;
        }
        let from = &rule.node(e.from).var;
        let to = &rule.node(e.to).var;
        let label = match &e.label {
            LabelTest::Label(l) => l.clone(),
            LabelTest::Any => "*".to_string(),
            LabelTest::Regex(re) => {
                let body = format!("({})", re.labels.join("|"));
                match re.rep {
                    PathRep::One => body,
                    PathRep::Plus => format!("{body}+"),
                    PathRep::Star => format!("{body}*"),
                }
            }
        };
        let not = if e.negated { "not " } else { "" };
        out.push_str(&format!("    {not}${from} -{label}-> ${to}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    const F1: &str = r#"
        # restaurants offering menus, collected into one rest-list
        rule {
          query {
            $r: restaurant
            $m: menu
            $r -menu-> $m
          }
          construct {
            $l: rest-list
            $l -member-> $r
          }
        }
        goal rest-list
    "#;

    #[test]
    fn parses_f1() {
        let p = parse(F1).unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.goal.as_deref(), Some("rest-list"));
        let r = &p.rules[0];
        assert_eq!(r.query_nodes().count(), 2);
        assert_eq!(r.construct_nodes().count(), 1);
        assert_eq!(r.edges.len(), 2);
    }

    #[test]
    fn end_to_end_f1() {
        let doc = gql_ssdm::Document::parse_str(
            "<g><restaurant><name>A</name><menu><price>1</price></menu></restaurant>\
             <restaurant><name>B</name></restaurant></g>",
        )
        .unwrap();
        let db = Instance::from_document(&doc);
        let p = parse(F1).unwrap();
        let out = crate::eval::run(&p, &db).unwrap();
        assert_eq!(out.objects_of_type("rest-list").len(), 1);
        let l = out.objects_of_type("rest-list")[0];
        assert_eq!(out.out_edges(l).count(), 1);
    }

    #[test]
    fn constraints_and_sets() {
        let p = parse(
            r#"rule {
                 query { $r: restaurant where category = "italian" and stars >= "3" }
                 construct {
                   $s: summary per $r set name = $r.name set kind = "auto"
                   $s -about-> $r
                 }
               }"#,
        )
        .unwrap();
        let r = &p.rules[0];
        let q = r.node(r.by_var("r").unwrap());
        assert_eq!(q.constraints.len(), 2);
        let s = r.node(r.by_var("s").unwrap());
        assert_eq!(s.per, vec!["r"]);
        assert_eq!(s.set_attrs.len(), 2);
        assert_eq!(
            s.set_attrs[0].1,
            AttrValue::CopyFrom {
                var: "r".into(),
                attr: "name".into()
            }
        );
    }

    #[test]
    fn edges_with_paths_and_negation() {
        let p = parse(
            r#"rule {
                 query {
                   $a: doc
                   $b: doc
                   $a -(link|index)+-> $b
                   not $a -cites-> $b
                   $a -*-> $b
                 }
                 construct { $a -related-> $b }
               }"#,
        )
        .unwrap();
        let r = &p.rules[0];
        assert_eq!(r.edges.len(), 4);
        assert!(matches!(
            &r.edges[0].label,
            LabelTest::Regex(re) if re.labels == vec!["link", "index"] && re.rep == PathRep::Plus
        ));
        assert!(r.edges[1].negated);
        assert_eq!(r.edges[2].label, LabelTest::Any);
        assert_eq!(r.edges[3].color, Color::Construct);
    }

    #[test]
    fn dashed_names_parse() {
        let p =
            parse("rule { query { $r: rest-list } construct { $c: top-ten  $c -member-of-> $r } }")
                .unwrap();
        let r = &p.rules[0];
        assert_eq!(
            r.node(r.by_var("r").unwrap()).test,
            TypeTest::Type("rest-list".into())
        );
        assert!(matches!(&r.edges[0].label, LabelTest::Label(l) if l == "member-of"));
    }

    #[test]
    fn roundtrip_through_printer() {
        for src in [
            F1,
            r#"rule {
                 query {
                   $a: doc where kind = "index"
                   $b: *
                   $a -(link)+-> $b
                   not $b -link-> $a
                 }
                 construct {
                   $root: root-doc per $a set title = $a.title
                   $root -covers-> $b
                 }
               }
               goal root-doc"#,
        ] {
            let p1 = parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
            let text = print(&p1);
            let p2 = parse(&text).unwrap_or_else(|e| panic!("reparse {text}: {e}"));
            assert_eq!(p1, p2, "roundtrip failed:\n{text}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let p1 = parse(
            "rule { query { $r: x where a = 'say \"hi\"' and b = \"back\\\\slash\" } construct { $c: out set note = \"line\\nbreak\" $c -m-> $r } } goal out",
        )
        .unwrap();
        let r = &p1.rules[0];
        let q = r.node(r.by_var("r").unwrap());
        assert_eq!(q.constraints[0].value, "say \"hi\"");
        assert_eq!(q.constraints[1].value, "back\\slash");
        let c = r.node(r.by_var("c").unwrap());
        assert_eq!(c.set_attrs[0].1, AttrValue::Literal("line\nbreak".into()));
        let p2 = parse(&print(&p1)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn errors_are_positioned_and_clear() {
        let err = parse("rule {\n query { $r restaurant }\n construct { } }").unwrap_err();
        match err {
            WgLogError::Syntax { line, msg, .. } => {
                assert_eq!(line, 2);
                assert!(msg.contains("':'"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_programs_rejected() {
        for bad in [
            "",
            "rule { query { } construct { } } goal x", // no nodes at all
            "rule { query { $a: x } construct { $a -l-> $b } }", // unknown $b
            "rule { query { $a: x, $a: y } construct { } }", // dup var
            "rule { query { not $a: x } construct { } }", // not on node
            "goal",                                    // missing goal name
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn multiple_rules_and_recursion() {
        let p = parse(
            r#"
            rule {
              query { $a: doc  $b: doc  $a -link-> $b }
              construct { $a -reach-> $b }
            }
            rule {
              query { $a: doc  $b: doc  $c: doc  $a -reach-> $b  $b -link-> $c }
              construct { $a -reach-> $c }
            }
            goal doc
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        // And it runs.
        let mut db = Instance::new();
        use crate::instance::Object;
        let d: Vec<_> = (0..4).map(|_| db.add_object(Object::new("doc"))).collect();
        db.add_edge(d[0], "link", d[1]);
        db.add_edge(d[1], "link", d[2]);
        db.add_edge(d[2], "link", d[3]);
        let out = crate::eval::run(&p, &db).unwrap();
        assert_eq!(out.edges().iter().filter(|e| e.label == "reach").count(), 6);
    }
}
