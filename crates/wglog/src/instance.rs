//! Complex-object instance graphs and the XML loader.
//!
//! A WG-Log database is a directed labelled graph of typed objects with
//! atomic attributes. The loader maps a semi-structured document onto this
//! model the way the paper's city-guide examples assume:
//!
//! * every element with element children or attributes becomes an object
//!   typed by its tag;
//! * a text-only child element (`<name>Roma</name>`) becomes an attribute
//!   of the parent object rather than a separate object;
//! * containment becomes an edge labelled with the child's tag;
//! * resolved ID/IDREF references become edges labelled with the
//!   referencing attribute's name.

use std::collections::HashMap;

use gql_ssdm::document::NodeKind;
use gql_ssdm::idref::RefGraph;
use gql_ssdm::{Document, NodeId};

/// Index of an object in an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One complex object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    pub ty: String,
    /// Attribute name/value pairs; repeated names allowed (multi-valued).
    pub attrs: Vec<(String, String)>,
}

impl Object {
    pub fn new(ty: impl Into<String>) -> Self {
        Object {
            ty: ty.into(),
            attrs: Vec::new(),
        }
    }

    /// First value of an attribute.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values of an attribute.
    pub fn attr_values<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.attrs
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One labelled edge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    pub from: ObjId,
    pub label: String,
    pub to: ObjId,
}

/// A WG-Log database: typed objects plus labelled edges.
///
/// Edge labels are interned to small integers on insertion, and adjacency
/// is kept *label-indexed*: `(object, label) → successors/predecessors`.
/// The fixpoint joins of the Datalog evaluator and the backtracking
/// embedding search probe edges by `(object, label)` on their innermost
/// loops, so those probes are hash lookups instead of linear scans with
/// string compares.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    objects: Vec<Object>,
    edges: Vec<Edge>,
    /// Outgoing adjacency: object → indexes into `edges`.
    out: Vec<Vec<usize>>,
    /// Incoming adjacency.
    inc: Vec<Vec<usize>>,
    /// Type index: type name → object ids.
    by_type: HashMap<String, Vec<ObjId>>,
    /// Interned edge labels.
    labels: HashMap<String, u32>,
    /// Labelled adjacency: `(from, label) → successors`, insertion order.
    succ: HashMap<(ObjId, u32), Vec<ObjId>>,
    /// Labelled reverse adjacency: `(to, label) → predecessors`.
    pred: HashMap<(ObjId, u32), Vec<ObjId>>,
    /// Fast duplicate check for edges, keyed on interned label ids so a
    /// probe allocates nothing.
    edge_set: std::collections::HashSet<(ObjId, u32, ObjId)>,
}

impl Instance {
    pub fn new() -> Self {
        Self::default()
    }

    fn intern_label(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.labels.get(label) {
            id
        } else {
            let id = self.labels.len() as u32;
            self.labels.insert(label.to_string(), id);
            id
        }
    }

    fn label_id(&self, label: &str) -> Option<u32> {
        self.labels.get(label).copied()
    }

    /// Add an object, returning its id.
    pub fn add_object(&mut self, obj: Object) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.by_type.entry(obj.ty.clone()).or_default().push(id);
        self.objects.push(obj);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Add an edge if not already present; returns whether it was new.
    pub fn add_edge(&mut self, from: ObjId, label: impl Into<String>, to: ObjId) -> bool {
        let label = label.into();
        let lid = self.intern_label(&label);
        if !self.edge_set.insert((from, lid, to)) {
            return false;
        }
        let idx = self.edges.len();
        self.edges.push(Edge { from, label, to });
        self.out[from.index()].push(idx);
        self.inc[to.index()].push(idx);
        self.succ.entry((from, lid)).or_default().push(to);
        self.pred.entry((to, lid)).or_default().push(from);
        true
    }

    /// Append an attribute value to an object.
    pub fn add_attr(&mut self, obj: ObjId, name: impl Into<String>, value: impl Into<String>) {
        self.objects[obj.index()]
            .attrs
            .push((name.into(), value.into()));
    }

    pub fn object(&self, id: ObjId) -> &Object {
        &self.objects[id.index()]
    }

    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub fn objects(&self) -> impl Iterator<Item = (ObjId, &Object)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjId(i as u32), o))
    }

    /// Objects of one type.
    pub fn objects_of_type(&self, ty: &str) -> Vec<ObjId> {
        self.by_type.get(ty).cloned().unwrap_or_default()
    }

    /// All type names present, sorted.
    pub fn type_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.by_type.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    /// Outgoing edges of an object.
    pub fn out_edges(&self, obj: ObjId) -> impl Iterator<Item = &Edge> {
        self.out[obj.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Incoming edges of an object.
    pub fn in_edges(&self, obj: ObjId) -> impl Iterator<Item = &Edge> {
        self.inc[obj.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Whether a specific edge exists: one allocation-free set probe on the
    /// interned-label key — this sits on the innermost loop of embedding
    /// search.
    pub fn has_edge(&self, from: ObjId, label: &str, to: ObjId) -> bool {
        self.label_id(label)
            .is_some_and(|lid| self.edge_set.contains(&(from, lid, to)))
    }

    /// Successors over edges with a given label, in edge-insertion order
    /// (one lookup in the labelled adjacency).
    pub fn successors_via<'a>(
        &'a self,
        obj: ObjId,
        label: &str,
    ) -> impl Iterator<Item = ObjId> + 'a {
        self.label_id(label)
            .and_then(|lid| self.succ.get(&(obj, lid)))
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .copied()
    }

    /// Predecessors over edges with a given label, in edge-insertion order.
    pub fn predecessors_via<'a>(
        &'a self,
        obj: ObjId,
        label: &str,
    ) -> impl Iterator<Item = ObjId> + 'a {
        self.label_id(label)
            .and_then(|lid| self.pred.get(&(obj, lid)))
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .copied()
    }

    // ------------------------------------------------------------------
    // XML loader
    // ------------------------------------------------------------------

    /// Load a document into an instance graph (see module docs for the
    /// mapping rules).
    pub fn from_document(doc: &Document) -> Instance {
        let mut db = Instance::new();
        let refs = RefGraph::extract(doc);
        let mut node_to_obj: HashMap<NodeId, ObjId> = HashMap::new();
        if let Some(root) = doc.root_element() {
            load_element(doc, root, &mut db, &mut node_to_obj);
        }
        // Reference edges, labelled by the referencing attribute name.
        for edge in refs.edges() {
            let (Some(&from), Some(&to)) = (node_to_obj.get(&edge.from), node_to_obj.get(&edge.to))
            else {
                continue;
            };
            // Find the attribute that produced this reference for its label.
            let label = doc
                .attrs(edge.from)
                .find(|(name, v)| {
                    matches!(*name, "ref" | "idref" | "refs" | "idrefs")
                        && v.split_whitespace()
                            .any(|tok| refs.node_by_id(tok) == Some(edge.to))
                })
                .map(|(name, _)| name.to_string())
                .unwrap_or_else(|| "ref".to_string());
            db.add_edge(from, label, to);
        }
        db
    }

    /// Convert (part of) the instance back to a document: objects of
    /// `root_type` become elements under a `wrapper` root, following edges
    /// up to `depth` levels (cycles stopped by depth).
    pub fn to_document(&self, wrapper: &str, root_type: &str, depth: usize) -> Document {
        let mut doc = Document::new();
        let root = doc.add_element(doc.root(), wrapper);
        for id in self.objects_of_type(root_type) {
            let el = self.object_to_element(id, &mut doc, depth);
            doc.append_child(root, el).expect("fresh element");
        }
        doc
    }

    fn object_to_element(&self, id: ObjId, doc: &mut Document, depth: usize) -> NodeId {
        let obj = self.object(id);
        let el = doc.create_element(&obj.ty);
        for (name, value) in &obj.attrs {
            // Multi-valued attributes become repeated child elements;
            // single-valued ones stay compact as children too (lossless
            // round-trip of the loader's text-only-child rule).
            let child = doc.create_element(name);
            let t = doc.create_text(value);
            doc.append_child(child, t).expect("fresh text");
            doc.append_child(el, child).expect("fresh child");
        }
        if depth > 0 {
            for edge in self.out_edges(id) {
                let sub = self.object_to_element(edge.to, doc, depth - 1);
                doc.append_child(el, sub).expect("fresh subtree");
            }
        }
        el
    }
}

/// Is this element "atomic" (text-only, no attributes, no element children)?
fn is_atomic(doc: &Document, node: NodeId) -> bool {
    doc.attr_count(node) == 0
        && doc.child_elements(node).next().is_none()
        && doc
            .children(node)
            .iter()
            .all(|&c| doc.kind(c) != NodeKind::Element)
}

fn load_element(
    doc: &Document,
    node: NodeId,
    db: &mut Instance,
    map: &mut HashMap<NodeId, ObjId>,
) -> ObjId {
    let mut obj = Object::new(doc.name(node).unwrap_or("object"));
    for (name, value) in doc.attrs(node) {
        obj.attrs.push((name.to_string(), value.to_string()));
    }
    // Direct text content becomes a `text` attribute when non-empty.
    let own_text: String = doc
        .children(node)
        .iter()
        .filter(|&&c| doc.kind(c) == NodeKind::Text)
        .map(|&c| doc.text(c).unwrap_or(""))
        .collect();
    if !own_text.trim().is_empty() {
        obj.attrs
            .push(("text".to_string(), own_text.trim().to_string()));
    }
    let id = db.add_object(obj);
    map.insert(node, id);
    let children: Vec<NodeId> = doc.child_elements(node).collect();
    for child in children {
        let tag = doc.name(child).unwrap_or("object").to_string();
        if is_atomic(doc, child) {
            db.add_attr(id, tag, doc.text_content(child).trim().to_string());
        } else {
            let cid = load_element(doc, child, db, map);
            db.add_edge(id, tag, cid);
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guide() -> Document {
        Document::parse_str(
            "<guide>\
               <restaurant id='r1' category='italian'>\
                 <name>Roma</name>\
                 <menu><name>lunch</name><price>20</price><dish>risotto</dish><dish>polenta</dish></menu>\
                 <near ref='h1'/>\
               </restaurant>\
               <hotel id='h1' stars='4'><name>Grand</name></hotel>\
             </guide>",
        )
        .unwrap()
    }

    #[test]
    fn loader_types_and_attrs() {
        let db = Instance::from_document(&guide());
        assert_eq!(db.objects_of_type("restaurant").len(), 1);
        assert_eq!(db.objects_of_type("hotel").len(), 1);
        assert_eq!(db.objects_of_type("menu").len(), 1);
        // Atomic children became attributes, not objects.
        assert!(db.objects_of_type("name").is_empty());
        let r = db.objects_of_type("restaurant")[0];
        assert_eq!(db.object(r).attr("name"), Some("Roma"));
        assert_eq!(db.object(r).attr("category"), Some("italian"));
        let m = db.objects_of_type("menu")[0];
        assert_eq!(db.object(m).attr("price"), Some("20"));
        let dishes: Vec<&str> = db.object(m).attr_values("dish").collect();
        assert_eq!(dishes, vec!["risotto", "polenta"]);
    }

    #[test]
    fn loader_containment_edges() {
        let db = Instance::from_document(&guide());
        let r = db.objects_of_type("restaurant")[0];
        let m = db.objects_of_type("menu")[0];
        assert!(db.has_edge(r, "menu", m));
        assert_eq!(db.successors_via(r, "menu").count(), 1);
    }

    #[test]
    fn loader_reference_edges() {
        let db = Instance::from_document(&guide());
        let r = db.objects_of_type("restaurant")[0];
        let h = db.objects_of_type("hotel")[0];
        let near = db.objects_of_type("near")[0];
        // <near ref='h1'/> is an object (it carries an attribute) with a
        // reference edge to the hotel.
        assert!(db.has_edge(r, "near", near));
        assert!(db.has_edge(near, "ref", h));
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut db = Instance::new();
        let a = db.add_object(Object::new("a"));
        let b = db.add_object(Object::new("b"));
        assert!(db.add_edge(a, "x", b));
        assert!(!db.add_edge(a, "x", b));
        assert_eq!(db.edge_count(), 1);
        assert!(db.add_edge(a, "y", b));
    }

    #[test]
    fn adjacency() {
        let mut db = Instance::new();
        let a = db.add_object(Object::new("a"));
        let b = db.add_object(Object::new("b"));
        let c = db.add_object(Object::new("c"));
        db.add_edge(a, "x", b);
        db.add_edge(a, "x", c);
        db.add_edge(b, "y", c);
        assert_eq!(db.out_edges(a).count(), 2);
        assert_eq!(db.in_edges(c).count(), 2);
        let via: Vec<ObjId> = db.successors_via(a, "x").collect();
        assert_eq!(via, vec![b, c]);
        let back: Vec<ObjId> = db.predecessors_via(c, "x").collect();
        assert_eq!(back, vec![a]);
        let back: Vec<ObjId> = db.predecessors_via(c, "y").collect();
        assert_eq!(back, vec![b]);
        assert_eq!(db.predecessors_via(a, "x").count(), 0);
        assert_eq!(db.successors_via(a, "unknown-label").count(), 0);
    }

    #[test]
    fn to_document_roundtrip_shape() {
        let db = Instance::from_document(&guide());
        let doc = db.to_document("result", "restaurant", 2);
        let xml = doc.to_xml_string();
        assert!(xml.starts_with("<result><restaurant>"), "{xml}");
        assert!(xml.contains("<name>Roma</name>"));
        assert!(xml.contains("<price>20</price>"));
    }

    #[test]
    fn type_names_sorted() {
        let db = Instance::from_document(&guide());
        assert_eq!(
            db.type_names(),
            vec!["guide", "hotel", "menu", "near", "restaurant"]
        );
    }

    #[test]
    fn mixed_text_becomes_text_attr() {
        let doc = Document::parse_str("<p note='x'>hello <b>world</b></p>").unwrap();
        let db = Instance::from_document(&doc);
        let p = db.objects_of_type("p")[0];
        assert_eq!(db.object(p).attr("text"), Some("hello"));
        // <b> is atomic → attribute.
        assert_eq!(db.object(p).attr("b"), Some("world"));
    }
}
